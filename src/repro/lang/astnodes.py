"""The abstract syntax tree of mini-C.

All nodes are frozen dataclasses carrying the 1-based source line for
diagnostics.  Expressions are side-effect free except :class:`Call`, which
the parser only accepts in statement position or as the right-hand side of
an assignment/initialiser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


# --------------------------------------------------------------------- #
# Expressions.                                                          #
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class IntLit:
    """An integer literal."""

    value: int
    line: int = 0


@dataclass(frozen=True, slots=True)
class Var:
    """A scalar variable reference."""

    name: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class ArrayRef:
    """An array element read ``name[index]``."""

    name: str
    index: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Unary:
    """A unary operator application: ``-e`` or ``!e``."""

    op: str
    operand: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Binary:
    """A binary operator application.

    Operators: ``+ - * / % < <= > >= == != && ||``.  The logical
    operators do *not* short-circuit in mini-C.
    """

    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Call:
    """A function call ``name(args)``."""

    name: str
    args: Tuple["Expr", ...]
    line: int = 0


Expr = Union[IntLit, Var, ArrayRef, Unary, Binary, Call]


# --------------------------------------------------------------------- #
# Statements.                                                           #
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class VarDecl:
    """``int x;`` or ``int x = e;`` or ``int a[10];``"""

    name: str
    array_size: Optional[int]
    init: Optional[Expr]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Assign:
    """``x = e;``"""

    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class ArrayAssign:
    """``a[i] = e;``"""

    name: str
    index: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class If:
    """``if (cond) then_body else else_body``"""

    cond: Expr
    then_body: "Block"
    else_body: Optional["Block"]
    line: int = 0


@dataclass(frozen=True, slots=True)
class While:
    """``while (cond) body``"""

    cond: Expr
    body: "Block"
    line: int = 0


@dataclass(frozen=True, slots=True)
class For:
    """``for (init; cond; step) body``; any header part may be missing."""

    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: "Block"
    line: int = 0


@dataclass(frozen=True, slots=True)
class Return:
    """``return;`` or ``return e;``"""

    value: Optional[Expr]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Assert:
    """``assert(cond);`` -- aborts execution when ``cond`` is false.

    The verification client (:mod:`repro.analysis.verify`) classifies each
    assertion as proved, violated, or unknown from the analysis results.
    """

    cond: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class Break:
    """``break;``"""

    line: int = 0


@dataclass(frozen=True, slots=True)
class Continue:
    """``continue;``"""

    line: int = 0


@dataclass(frozen=True, slots=True)
class ExprStmt:
    """An expression evaluated for its effect (a call): ``f(x);``"""

    expr: Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class Block:
    """``{ stmt* }``"""

    stmts: Tuple["Stmt", ...]
    line: int = 0


Stmt = Union[
    VarDecl, Assign, ArrayAssign, If, While, For, Return, Assert, Break,
    Continue, ExprStmt, Block,
]


# --------------------------------------------------------------------- #
# Top level.                                                            #
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class Param:
    """A function parameter (always ``int``)."""

    name: str
    line: int = 0


@dataclass(frozen=True, slots=True)
class FuncDecl:
    """A function definition."""

    name: str
    params: Tuple[Param, ...]
    returns_value: bool
    body: Block
    line: int = 0


@dataclass(frozen=True, slots=True)
class GlobalDecl:
    """A global variable definition (scalar or array)."""

    name: str
    array_size: Optional[int]
    init: Optional[int]
    line: int = 0


@dataclass(frozen=True, slots=True)
class Program:
    """A complete mini-C translation unit."""

    globals: Tuple[GlobalDecl, ...]
    functions: Tuple[FuncDecl, ...]

    def function(self, name: str) -> FuncDecl:
        """Look up a function by name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    @property
    def global_names(self) -> Tuple[str, ...]:
        return tuple(g.name for g in self.globals)
