"""A mini-C front-end: the reproduction's stand-in for CIL.

The paper's experiments analyse C programs parsed by CIL inside Goblint.
This package provides everything needed to run the same *kind* of analyses
on a C-like language:

* :mod:`~repro.lang.lexer` / :mod:`~repro.lang.parser` -- hand-written
  lexer and recursive-descent parser producing a typed AST
  (:mod:`~repro.lang.astnodes`);
* :mod:`~repro.lang.sema` -- name/arity/lvalue checking;
* :mod:`~repro.lang.cfg` -- control-flow graphs with instruction-labelled
  edges, one per function (the program points become the unknowns of the
  analysis equation systems);
* :mod:`~repro.lang.interp` -- a concrete interpreter over the CFGs, used
  by the test-suite to check analysis *soundness* against real runs;
* :mod:`~repro.lang.pretty` -- an AST pretty-printer.

Language summary: ``int`` scalars and fixed-size ``int`` arrays, global
and local variables, functions with parameters and return values,
``if``/``while``/``for``/``break``/``continue``/``return``, the usual
arithmetic/comparison operators.  Deviation from C: ``&&`` and ``||`` do
not short-circuit (both operands are always evaluated); expressions are
side-effect-free except for calls, which only occur as statements or
initialisers of the form ``x = f(...)``.
"""

from repro.lang.astnodes import Program
from repro.lang.cfg import ControlFlowGraph, FunctionCFG, build_cfg
from repro.lang.interp import ExecutionError, Interpreter, run_program
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_program
from repro.lang.sema import SemanticError, check_program
from repro.lang.pretty import pretty_program

__all__ = [
    "Program",
    "ControlFlowGraph",
    "FunctionCFG",
    "build_cfg",
    "ExecutionError",
    "Interpreter",
    "run_program",
    "LexError",
    "tokenize",
    "ParseError",
    "parse_program",
    "SemanticError",
    "check_program",
    "pretty_program",
    "compile_program",
]


def compile_program(source: str) -> "ControlFlowGraph":
    """Parse, check and lower ``source`` to control-flow graphs."""
    program = parse_program(source)
    check_program(program)
    return build_cfg(program)
