"""An AST pretty-printer producing valid mini-C source.

``parse(pretty(parse(s)))`` is the identity on ASTs (modulo line numbers),
a round-trip property the test-suite exercises.
"""

from __future__ import annotations

from typing import List

from repro.lang import astnodes as ast

_INDENT = "    "


def pretty_expr(expr: ast.Expr) -> str:
    """Render an expression with full parenthesisation of sub-terms."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        return f"{expr.name}[{pretty_expr(expr.index)}]"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}({pretty_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise AssertionError(f"unexpected expression {expr!r}")


def _stmt_lines(stmt: ast.Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, ast.VarDecl):
        if stmt.array_size is not None:
            return [f"{pad}int {stmt.name}[{stmt.array_size}];"]
        if stmt.init is not None:
            return [f"{pad}int {stmt.name} = {pretty_expr(stmt.init)};"]
        return [f"{pad}int {stmt.name};"]
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{stmt.name} = {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.ArrayAssign):
        return [
            f"{pad}{stmt.name}[{pretty_expr(stmt.index)}] = "
            f"{pretty_expr(stmt.value)};"
        ]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({pretty_expr(stmt.cond)}) {{"]
        lines += _block_lines(stmt.then_body, depth + 1)
        if stmt.else_body is not None:
            lines.append(f"{pad}}} else {{")
            lines += _block_lines(stmt.else_body, depth + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({pretty_expr(stmt.cond)}) {{"]
        lines += _block_lines(stmt.body, depth + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.For):
        init = _inline_stmt(stmt.init) if stmt.init is not None else ""
        cond = pretty_expr(stmt.cond) if stmt.cond is not None else ""
        step = _inline_stmt(stmt.step) if stmt.step is not None else ""
        lines = [f"{pad}for ({init}; {cond}; {step}) {{"]
        lines += _block_lines(stmt.body, depth + 1)
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is not None:
            return [f"{pad}return {pretty_expr(stmt.value)};"]
        return [f"{pad}return;"]
    if isinstance(stmt, ast.Assert):
        return [f"{pad}assert({pretty_expr(stmt.cond)});"]
    if isinstance(stmt, ast.Break):
        return [f"{pad}break;"]
    if isinstance(stmt, ast.Continue):
        return [f"{pad}continue;"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{pretty_expr(stmt.expr)};"]
    if isinstance(stmt, ast.Block):
        return [f"{pad}{{"] + _block_lines(stmt, depth + 1) + [f"{pad}}}"]
    raise AssertionError(f"unexpected statement {stmt!r}")


def _inline_stmt(stmt: ast.Stmt) -> str:
    """Render a for-header statement without indentation or semicolon."""
    if isinstance(stmt, ast.VarDecl) and stmt.array_size is None:
        if stmt.init is not None:
            return f"int {stmt.name} = {pretty_expr(stmt.init)}"
        return f"int {stmt.name}"
    if isinstance(stmt, ast.Assign):
        return f"{stmt.name} = {pretty_expr(stmt.value)}"
    if isinstance(stmt, ast.ArrayAssign):
        return (
            f"{stmt.name}[{pretty_expr(stmt.index)}] = {pretty_expr(stmt.value)}"
        )
    if isinstance(stmt, ast.ExprStmt):
        return pretty_expr(stmt.expr)
    raise AssertionError(f"cannot inline {stmt!r}")


def _block_lines(block: ast.Block, depth: int) -> List[str]:
    lines: List[str] = []
    for stmt in block.stmts:
        lines += _stmt_lines(stmt, depth)
    return lines


def pretty_program(program: ast.Program) -> str:
    """Render a full translation unit."""
    lines: List[str] = []
    for g in program.globals:
        if g.array_size is not None:
            lines.append(f"int {g.name}[{g.array_size}];")
        elif g.init is not None:
            lines.append(f"int {g.name} = {g.init};")
        else:
            lines.append(f"int {g.name};")
    if program.globals:
        lines.append("")
    for fn in program.functions:
        ret = "int" if fn.returns_value else "void"
        params = ", ".join(f"int {p.name}" for p in fn.params)
        lines.append(f"{ret} {fn.name}({params}) {{")
        lines += _block_lines(fn.body, 1)
        lines.append("}")
        lines.append("")
    return "\n".join(lines)
