"""Structural diff of two mini-C control-flow graphs.

The incremental re-solver (:mod:`repro.incremental`) needs to know, for
two versions of a program, (a) which program points of the old version
correspond to which points of the new one, and (b) which points of the
new version have a *changed equation* -- the dirty set whose influence
closure gets destabilized in the warm start.

Matching works per function and purely structurally:

* Each node gets a **local signature**: entry/exit role plus the
  renderings of its incoming and outgoing edge instructions (source
  indices excluded -- the signature must be stable under the index
  shifts a single edit causes).
* The node lists of both versions are aligned by longest-common-
  subsequence over the signature sequences
  (:class:`difflib.SequenceMatcher`).  CFG construction is deterministic
  in statement order, so a single-statement edit shifts a contiguous
  suffix of indices and the LCS recovers everything around it.
* A matched node is **dirty** when its in-edge set -- pairs of (matched
  source, instruction) -- differs between the versions: the right-hand
  side of its dataflow equation is the join over exactly those edges.
  Unmatched new nodes carry no transferred state and are discovered
  fresh by the solver; their matched successors are dirty by the source
  comparison.

Function-level conservatism: when a function's interface or variable
layout changes (parameters, locals, arrays -- which determine its
environment lattice), *no* state can be transferred for it, and every
call site of it in other functions is marked dirty.  The same holds for
added functions.  Changed global initialisers are reported so the caller
can dirty the program entry point, whose equation seeds them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Dict, List, Set

from repro.lang.cfg import (
    AssertInstr,
    CallInstr,
    ControlFlowGraph,
    FunctionCFG,
    Guard,
    Node,
    Nop,
    SetLocal,
    StoreArray,
)
from repro.lang.pretty import pretty_expr


def instr_signature(instr) -> str:
    """A stable, line-number-free rendering of an edge instruction."""
    if isinstance(instr, SetLocal):
        return f"set {instr.target} = {pretty_expr(instr.expr)}"
    if isinstance(instr, StoreArray):
        return (
            f"store {instr.name}[{pretty_expr(instr.index)}] = "
            f"{pretty_expr(instr.value)}"
        )
    if isinstance(instr, Guard):
        return f"guard[{instr.assume}] {pretty_expr(instr.cond)}"
    if isinstance(instr, AssertInstr):
        return f"assert {pretty_expr(instr.cond)}"
    if isinstance(instr, CallInstr):
        args = ", ".join(pretty_expr(a) for a in instr.args)
        target = instr.target if instr.target is not None else "_"
        return f"call {target} = {instr.func}({args})"
    if isinstance(instr, Nop):
        return "nop"
    raise AssertionError(f"unexpected instruction {instr!r}")


def _node_signature(fn: FunctionCFG, node: Node) -> str:
    role = "entry" if node == fn.entry else ("exit" if node == fn.exit else "mid")
    ins = sorted(instr_signature(e.instr) for e in fn.in_edges(node))
    outs = sorted(instr_signature(e.instr) for e in fn.out_edges(node))
    return f"{role}|in:{';'.join(ins)}|out:{';'.join(outs)}"


@dataclass
class FunctionDiff:
    """Node matching and dirtiness for one function present in both versions."""

    name: str
    #: Old node -> new node for matched program points.
    node_map: Dict[Node, Node] = field(default_factory=dict)
    #: New-version nodes whose equation changed.
    dirty: Set[Node] = field(default_factory=set)
    #: New-version nodes without an old counterpart.
    added: Set[Node] = field(default_factory=set)
    #: Old-version nodes without a new counterpart.
    removed: Set[Node] = field(default_factory=set)


@dataclass
class CfgDiff:
    """The full program diff consumed by the incremental re-solver."""

    #: Per-function diffs for transferable functions.
    functions: Dict[str, FunctionDiff] = field(default_factory=dict)
    #: Old node -> new node across all transferable functions.
    node_map: Dict[Node, Node] = field(default_factory=dict)
    #: New-version nodes whose equation changed (union over functions,
    #: plus call sites of dropped/added functions).
    dirty_nodes: Set[Node] = field(default_factory=set)
    #: Functions whose state cannot transfer (interface/layout changed).
    dropped_functions: Set[str] = field(default_factory=set)
    #: Functions new in the second version.
    added_functions: Set[str] = field(default_factory=set)
    #: Functions removed in the second version.
    removed_functions: Set[str] = field(default_factory=set)
    #: Globals whose initialiser changed, or that were added/removed.
    changed_globals: Set[str] = field(default_factory=set)

    @property
    def is_identical(self) -> bool:
        """No dirty equations and no structural changes at all."""
        return not (
            self.dirty_nodes
            or self.dropped_functions
            or self.added_functions
            or self.removed_functions
            or self.changed_globals
            or any(f.added or f.removed for f in self.functions.values())
        )


def diff_function(old: FunctionCFG, new: FunctionCFG) -> FunctionDiff:
    """Match the nodes of two versions of one function."""
    diff = FunctionDiff(name=new.name)
    old_nodes: List[Node] = list(old.nodes)
    new_nodes: List[Node] = list(new.nodes)
    old_sigs = [_node_signature(old, n) for n in old_nodes]
    new_sigs = [_node_signature(new, n) for n in new_nodes]
    matcher = SequenceMatcher(a=old_sigs, b=new_sigs, autojunk=False)
    for block in matcher.get_matching_blocks():
        for offset in range(block.size):
            diff.node_map[old_nodes[block.a + offset]] = new_nodes[
                block.b + offset
            ]
    # Entry and exit always correspond: their signatures include adjacent
    # edge instructions, so an edit next to them would otherwise unmatch
    # the one pair of nodes that is positionally unambiguous (and whose
    # loss prunes entry seeding / exit summaries from transferred state).
    matched_new = set(diff.node_map.values())
    for old_n, new_n in ((old.entry, new.entry), (old.exit, new.exit)):
        if old_n not in diff.node_map and new_n not in matched_new:
            diff.node_map[old_n] = new_n
            matched_new.add(new_n)
    diff.added = set(new_nodes) - matched_new
    diff.removed = set(old_nodes) - set(diff.node_map)

    # Reverse map to compare in-edge sources in new-version terms.
    reverse = {v: u for u, v in diff.node_map.items()}
    for v in new_nodes:
        if v not in reverse:
            continue
        u = reverse[v]
        old_in = set()
        transferable = True
        for e in old.in_edges(u):
            src = diff.node_map.get(e.src)
            if src is None:
                transferable = False
                break
            old_in.add((src, instr_signature(e.instr)))
        new_in = {(e.src, instr_signature(e.instr)) for e in new.in_edges(v)}
        if not transferable or old_in != new_in:
            diff.dirty.add(v)
    return diff


def _layout(fn: FunctionCFG) -> tuple:
    return (
        fn.params,
        fn.returns_value,
        tuple(sorted(fn.locals)),
        tuple(sorted(fn.arrays.items())),
    )


def diff_cfg(old: ControlFlowGraph, new: ControlFlowGraph) -> CfgDiff:
    """Diff two whole programs at the CFG level."""
    diff = CfgDiff()
    old_fns = set(old.functions)
    new_fns = set(new.functions)
    diff.added_functions = new_fns - old_fns
    diff.removed_functions = old_fns - new_fns

    for name in sorted(old_fns & new_fns):
        old_fn = old.functions[name]
        new_fn = new.functions[name]
        if _layout(old_fn) != _layout(new_fn):
            # The function's environment lattice changed: nothing about
            # its abstract states is comparable across the versions.
            diff.dropped_functions.add(name)
            continue
        fd = diff_function(old_fn, new_fn)
        diff.functions[name] = fd
        diff.node_map.update(fd.node_map)
        diff.dirty_nodes.update(fd.dirty)

    # Call sites of functions whose analysis must restart from scratch:
    # the caller's equation reads the callee's exit state, which carries
    # no transferred value any more.
    untrusted = diff.dropped_functions | diff.added_functions
    if untrusted:
        for name, fd in diff.functions.items():
            fn = new.functions[name]
            for edge in fn.edges:
                if isinstance(edge.instr, CallInstr) and edge.instr.func in untrusted:
                    diff.dirty_nodes.add(edge.dst)

    # Globals: changed initialisers (or presence) re-seed at the entry.
    old_globals = dict(old.global_scalars)
    new_globals = dict(new.global_scalars)
    for g in set(old_globals) | set(new_globals):
        if old_globals.get(g) != new_globals.get(g):
            diff.changed_globals.add(g)
    for g in set(old.global_arrays) ^ set(new.global_arrays):
        diff.changed_globals.add(g)
    return diff
