"""A hand-written lexer for mini-C.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
integer literals, identifiers/keywords and the punctuation listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import List

from repro.lang.tokens import KEYWORDS, PUNCT1, PUNCT2, Token, TokenKind


class LexError(Exception):
    """Raised on malformed input, with position information."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source``, appending a terminal EOF token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        # Whitespace.
        if ch in " \t\r\n":
            advance()
            continue
        # Comments.
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance()
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        # Integer literals.
        if ch.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance()
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexError(
                    f"malformed number {source[start:i + 1]!r}", line, col
                )
            tokens.append(
                Token(TokenKind.INT_LIT, source[start:i], start_line, start_col)
            )
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance()
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        # Two-character punctuation (longest match first).
        two = source[i : i + 2]
        if two in PUNCT2:
            tokens.append(Token(TokenKind.PUNCT, two, line, col))
            advance(2)
            continue
        # Single-character punctuation.
        if ch in PUNCT1:
            tokens.append(Token(TokenKind.PUNCT, ch, line, col))
            advance()
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)

    tokens.append(Token(TokenKind.EOF, "", line, col))
    return tokens
