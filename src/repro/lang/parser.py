"""A recursive-descent parser for mini-C.

Grammar (EBNF, ignoring whitespace/comments)::

    program     = { global | function } ;
    global      = "int" IDENT [ "[" INT "]" | "=" [ "-" ] INT ] ";" ;
    function    = ( "int" | "void" ) IDENT "(" params ")" block ;
    params      = [ "int" IDENT { "," "int" IDENT } ] ;
    block       = "{" { stmt } "}" ;
    stmt        = vardecl | assign | if | while | for
                | "return" [ expr ] ";" | "break" ";" | "continue" ";"
                | call ";" | block ;
    vardecl     = "int" IDENT [ "[" INT "]" | "=" expr ] ";" ;
    assign      = IDENT ( "=" expr | "[" expr "]" "=" expr ) ";" ;
    if          = "if" "(" expr ")" stmt [ "else" stmt ] ;
    while       = "while" "(" expr ")" stmt ;
    for         = "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" stmt ;
    expr        = or ;
    or          = and { "||" and } ;
    and         = cmp { "&&" cmp } ;
    cmp         = add [ ( "<" | "<=" | ">" | ">=" | "==" | "!=" ) add ] ;
    add         = mul { ( "+" | "-" ) mul } ;
    mul         = unary { ( "*" | "/" | "%" ) unary } ;
    unary       = ( "-" | "!" ) unary | primary ;
    primary     = INT | IDENT [ "(" args ")" | "[" expr "]" ] | "(" expr ")" ;

A parsed ``if``/``while``/``for`` body that is a single statement is
normalised to a one-statement :class:`~repro.lang.astnodes.Block`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import astnodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind


class ParseError(Exception):
    """Raised on syntax errors, with position information."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.col}: {message}")
        self.token = token


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- #
    # Token helpers.                                                #
    # ------------------------------------------------------------- #

    def peek(self, ahead: int = 0) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self._pos += 1
        return tok

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok.text!r}", tok)
        return self.next()

    def expect_keyword(self, word: str) -> Token:
        tok = self.peek()
        if not tok.is_keyword(word):
            raise ParseError(f"expected {word!r}, found {tok.text!r}", tok)
        return self.next()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok)
        return self.next()

    def expect_int(self) -> int:
        tok = self.peek()
        if tok.kind is not TokenKind.INT_LIT:
            raise ParseError(f"expected integer, found {tok.text!r}", tok)
        self.next()
        return int(tok.text)

    # ------------------------------------------------------------- #
    # Top level.                                                    #
    # ------------------------------------------------------------- #

    def program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FuncDecl] = []
        while self.peek().kind is not TokenKind.EOF:
            tok = self.peek()
            if not (tok.is_keyword("int") or tok.is_keyword("void")):
                raise ParseError(
                    f"expected declaration, found {tok.text!r}", tok
                )
            if self.peek(2).is_punct("("):
                functions.append(self.function())
            else:
                globals_.append(self.global_decl())
        return ast.Program(tuple(globals_), tuple(functions))

    def global_decl(self) -> ast.GlobalDecl:
        self.expect_keyword("int")
        name = self.expect_ident()
        array_size: Optional[int] = None
        init: Optional[int] = None
        if self.peek().is_punct("["):
            self.next()
            array_size = self.expect_int()
            self.expect_punct("]")
        elif self.peek().is_punct("="):
            self.next()
            negative = False
            if self.peek().is_punct("-"):
                self.next()
                negative = True
            value = self.expect_int()
            init = -value if negative else value
        self.expect_punct(";")
        return ast.GlobalDecl(name.text, array_size, init, name.line)

    def function(self) -> ast.FuncDecl:
        ret = self.next()
        returns_value = ret.is_keyword("int")
        if not returns_value and not ret.is_keyword("void"):
            raise ParseError("expected 'int' or 'void'", ret)
        name = self.expect_ident()
        self.expect_punct("(")
        params: List[ast.Param] = []
        if not self.peek().is_punct(")"):
            while True:
                self.expect_keyword("int")
                p = self.expect_ident()
                params.append(ast.Param(p.text, p.line))
                if self.peek().is_punct(","):
                    self.next()
                    continue
                break
        self.expect_punct(")")
        body = self.block()
        return ast.FuncDecl(
            name.text, tuple(params), returns_value, body, name.line
        )

    # ------------------------------------------------------------- #
    # Statements.                                                   #
    # ------------------------------------------------------------- #

    def block(self) -> ast.Block:
        open_ = self.expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self.peek().is_punct("}"):
            if self.peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", self.peek())
            stmts.append(self.statement())
        self.expect_punct("}")
        return ast.Block(tuple(stmts), open_.line)

    def statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.is_punct("{"):
            return self.block()
        if tok.is_keyword("int"):
            return self.var_decl()
        if tok.is_keyword("if"):
            return self.if_stmt()
        if tok.is_keyword("while"):
            return self.while_stmt()
        if tok.is_keyword("for"):
            return self.for_stmt()
        if tok.is_keyword("return"):
            self.next()
            value: Optional[ast.Expr] = None
            if not self.peek().is_punct(";"):
                value = self.expr()
            self.expect_punct(";")
            return ast.Return(value, tok.line)
        if tok.is_keyword("assert"):
            self.next()
            self.expect_punct("(")
            cond = self.expr()
            self.expect_punct(")")
            self.expect_punct(";")
            return ast.Assert(cond, tok.line)
        if tok.is_keyword("break"):
            self.next()
            self.expect_punct(";")
            return ast.Break(tok.line)
        if tok.is_keyword("continue"):
            self.next()
            self.expect_punct(";")
            return ast.Continue(tok.line)
        stmt = self.simple_statement()
        self.expect_punct(";")
        return stmt

    def simple_statement(self) -> ast.Stmt:
        """An assignment or call, without the trailing semicolon."""
        tok = self.peek()
        if tok.kind is TokenKind.IDENT:
            if self.peek(1).is_punct("="):
                self.next()
                self.next()
                return ast.Assign(tok.text, self.expr(), tok.line)
            if self.peek(1).is_punct("["):
                # Could be `a[i] = e` -- scan for the matching `]` + `=`.
                save = self._pos
                self.next()
                self.next()
                index = self.expr()
                self.expect_punct("]")
                if self.peek().is_punct("="):
                    self.next()
                    return ast.ArrayAssign(tok.text, index, self.expr(), tok.line)
                self._pos = save
            if self.peek(1).is_punct("("):
                call = self.expr()
                if not isinstance(call, ast.Call):
                    raise ParseError("expected call statement", tok)
                return ast.ExprStmt(call, tok.line)
        raise ParseError(f"expected statement, found {tok.text!r}", tok)

    def var_decl(self) -> ast.VarDecl:
        self.expect_keyword("int")
        name = self.expect_ident()
        array_size: Optional[int] = None
        init: Optional[ast.Expr] = None
        if self.peek().is_punct("["):
            self.next()
            array_size = self.expect_int()
            self.expect_punct("]")
        elif self.peek().is_punct("="):
            self.next()
            init = self.expr()
        self.expect_punct(";")
        return ast.VarDecl(name.text, array_size, init, name.line)

    def if_stmt(self) -> ast.If:
        tok = self.expect_keyword("if")
        self.expect_punct("(")
        cond = self.expr()
        self.expect_punct(")")
        then_body = self.as_block(self.statement())
        else_body: Optional[ast.Block] = None
        if self.peek().is_keyword("else"):
            self.next()
            else_body = self.as_block(self.statement())
        return ast.If(cond, then_body, else_body, tok.line)

    def while_stmt(self) -> ast.While:
        tok = self.expect_keyword("while")
        self.expect_punct("(")
        cond = self.expr()
        self.expect_punct(")")
        return ast.While(cond, self.as_block(self.statement()), tok.line)

    def for_stmt(self) -> ast.For:
        tok = self.expect_keyword("for")
        self.expect_punct("(")
        init: Optional[ast.Stmt] = None
        if not self.peek().is_punct(";"):
            if self.peek().is_keyword("int"):
                # Reuse var_decl, which consumes the semicolon itself.
                init = self.var_decl()
            else:
                init = self.simple_statement()
                self.expect_punct(";")
        else:
            self.expect_punct(";")
        cond: Optional[ast.Expr] = None
        if not self.peek().is_punct(";"):
            cond = self.expr()
        self.expect_punct(";")
        step: Optional[ast.Stmt] = None
        if not self.peek().is_punct(")"):
            step = self.simple_statement()
        self.expect_punct(")")
        return ast.For(init, cond, step, self.as_block(self.statement()), tok.line)

    @staticmethod
    def as_block(stmt: ast.Stmt) -> ast.Block:
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block((stmt,), getattr(stmt, "line", 0))

    # ------------------------------------------------------------- #
    # Expressions (precedence climbing).                            #
    # ------------------------------------------------------------- #

    def expr(self) -> ast.Expr:
        return self.or_expr()

    def or_expr(self) -> ast.Expr:
        left = self.and_expr()
        while self.peek().is_punct("||"):
            tok = self.next()
            left = ast.Binary("||", left, self.and_expr(), tok.line)
        return left

    def and_expr(self) -> ast.Expr:
        left = self.cmp_expr()
        while self.peek().is_punct("&&"):
            tok = self.next()
            left = ast.Binary("&&", left, self.cmp_expr(), tok.line)
        return left

    def cmp_expr(self) -> ast.Expr:
        left = self.add_expr()
        tok = self.peek()
        for op in ("<=", ">=", "==", "!=", "<", ">"):
            if tok.is_punct(op):
                self.next()
                return ast.Binary(op, left, self.add_expr(), tok.line)
        return left

    def add_expr(self) -> ast.Expr:
        left = self.mul_expr()
        while self.peek().is_punct("+") or self.peek().is_punct("-"):
            tok = self.next()
            left = ast.Binary(tok.text, left, self.mul_expr(), tok.line)
        return left

    def mul_expr(self) -> ast.Expr:
        left = self.unary_expr()
        while (
            self.peek().is_punct("*")
            or self.peek().is_punct("/")
            or self.peek().is_punct("%")
        ):
            tok = self.next()
            left = ast.Binary(tok.text, left, self.unary_expr(), tok.line)
        return left

    def unary_expr(self) -> ast.Expr:
        tok = self.peek()
        if tok.is_punct("-") or tok.is_punct("!"):
            self.next()
            return ast.Unary(tok.text, self.unary_expr(), tok.line)
        return self.primary()

    def primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT_LIT:
            self.next()
            return ast.IntLit(int(tok.text), tok.line)
        if tok.kind is TokenKind.IDENT:
            self.next()
            if self.peek().is_punct("("):
                self.next()
                args: List[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    while True:
                        args.append(self.expr())
                        if self.peek().is_punct(","):
                            self.next()
                            continue
                        break
                self.expect_punct(")")
                return ast.Call(tok.text, tuple(args), tok.line)
            if self.peek().is_punct("["):
                self.next()
                index = self.expr()
                self.expect_punct("]")
                return ast.ArrayRef(tok.text, index, tok.line)
            return ast.Var(tok.text, tok.line)
        if tok.is_punct("("):
            self.next()
            inner = self.expr()
            self.expect_punct(")")
            return inner
        raise ParseError(f"expected expression, found {tok.text!r}", tok)


def parse_program(source: str) -> ast.Program:
    """Parse a mini-C translation unit from ``source``."""
    parser = _Parser(tokenize(source))
    return parser.program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single expression (testing convenience)."""
    parser = _Parser(tokenize(source))
    expr = parser.expr()
    if parser.peek().kind is not TokenKind.EOF:
        raise ParseError("trailing input after expression", parser.peek())
    return expr
