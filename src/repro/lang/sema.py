"""Semantic checks for mini-C.

Beyond name resolution, the checker enforces the structural restrictions
the CFG construction and the analyses rely on:

* calls appear only in statement position (``f(x);``) or as the entire
  right-hand side of an assignment or initialiser (``y = f(x);``);
* scalars and arrays are used consistently;
* ``void`` functions are not used for their value, and functions are
  called with the right arity;
* ``break``/``continue`` occur only inside loops;
* identifiers starting with ``__`` are reserved for the implementation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang import astnodes as ast


class SemanticError(Exception):
    """Raised on any semantic violation, with the offending source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class _Scope:
    """A lexical scope mapping names to 'scalar' or 'array'."""

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, str] = {}

    def declare(self, name: str, kind: str, line: int) -> None:
        if name in self.names:
            raise SemanticError(f"duplicate declaration of {name!r}", line)
        self.names[name] = kind

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.functions: Dict[str, ast.FuncDecl] = {}

    def run(self) -> None:
        top = _Scope()
        for g in self.program.globals:
            self._check_name(g.name, g.line)
            kind = "array" if g.array_size is not None else "scalar"
            if g.array_size is not None and g.array_size <= 0:
                raise SemanticError(
                    f"array {g.name!r} must have positive size", g.line
                )
            top.declare(g.name, kind, g.line)
        for fn in self.program.functions:
            self._check_name(fn.name, fn.line)
            if fn.name in self.functions:
                raise SemanticError(
                    f"duplicate function {fn.name!r}", fn.line
                )
            if top.lookup(fn.name) is not None:
                raise SemanticError(
                    f"function {fn.name!r} shadows a global", fn.line
                )
            self.functions[fn.name] = fn
        for fn in self.program.functions:
            self._check_function(fn, top)

    def _check_name(self, name: str, line: int) -> None:
        if name.startswith("__"):
            raise SemanticError(
                f"identifier {name!r} is reserved (double underscore)", line
            )

    def _check_function(self, fn: ast.FuncDecl, top: _Scope) -> None:
        scope = _Scope(top)
        for p in fn.params:
            self._check_name(p.name, p.line)
            scope.declare(p.name, "scalar", p.line)
        self._check_block(fn.body, scope, fn, loop_depth=0)

    def _check_block(
        self, block: ast.Block, scope: _Scope, fn: ast.FuncDecl, loop_depth: int
    ) -> None:
        inner = _Scope(scope)
        for stmt in block.stmts:
            self._check_stmt(stmt, inner, fn, loop_depth)

    def _check_stmt(
        self, stmt: ast.Stmt, scope: _Scope, fn: ast.FuncDecl, loop_depth: int
    ) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._check_name(stmt.name, stmt.line)
            if stmt.array_size is not None:
                if stmt.array_size <= 0:
                    raise SemanticError(
                        f"array {stmt.name!r} must have positive size",
                        stmt.line,
                    )
                scope.declare(stmt.name, "array", stmt.line)
            else:
                if stmt.init is not None:
                    self._check_rhs(stmt.init, scope, stmt.line)
                scope.declare(stmt.name, "scalar", stmt.line)
        elif isinstance(stmt, ast.Assign):
            kind = scope.lookup(stmt.name)
            if kind is None:
                raise SemanticError(
                    f"assignment to undeclared {stmt.name!r}", stmt.line
                )
            if kind != "scalar":
                raise SemanticError(
                    f"cannot assign to array {stmt.name!r} without index",
                    stmt.line,
                )
            self._check_rhs(stmt.value, scope, stmt.line)
        elif isinstance(stmt, ast.ArrayAssign):
            kind = scope.lookup(stmt.name)
            if kind is None:
                raise SemanticError(
                    f"assignment to undeclared {stmt.name!r}", stmt.line
                )
            if kind != "array":
                raise SemanticError(
                    f"{stmt.name!r} is not an array", stmt.line
                )
            self._check_expr(stmt.index, scope, stmt.line)
            self._check_rhs(stmt.value, scope, stmt.line)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond, scope, stmt.line)
            self._check_block(stmt.then_body, scope, fn, loop_depth)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope, fn, loop_depth)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond, scope, stmt.line)
            self._check_block(stmt.body, scope, fn, loop_depth + 1)
        elif isinstance(stmt, ast.For):
            header = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, header, fn, loop_depth)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, header, stmt.line)
            if stmt.step is not None:
                self._check_stmt(stmt.step, header, fn, loop_depth + 1)
            self._check_block(stmt.body, header, fn, loop_depth + 1)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if not fn.returns_value:
                    raise SemanticError(
                        f"void function {fn.name!r} returns a value",
                        stmt.line,
                    )
                # A call may be the entire returned expression.
                self._check_rhs(stmt.value, scope, stmt.line)
            elif fn.returns_value:
                raise SemanticError(
                    f"function {fn.name!r} must return a value", stmt.line
                )
        elif isinstance(stmt, ast.Assert):
            self._check_expr(stmt.cond, scope, stmt.line)
        elif isinstance(stmt, ast.Break):
            if loop_depth == 0:
                raise SemanticError("break outside loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if loop_depth == 0:
                raise SemanticError("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.Call):
                raise SemanticError(
                    "only calls may be used as expression statements",
                    stmt.line,
                )
            self._check_call(stmt.expr, scope, need_value=False)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope, fn, loop_depth)
        else:  # pragma: no cover - exhaustiveness guard
            raise SemanticError(f"unknown statement {stmt!r}", 0)

    def _check_rhs(self, expr: ast.Expr, scope: _Scope, line: int) -> None:
        """The right-hand side of an assignment: a call or a pure expression."""
        if isinstance(expr, ast.Call):
            self._check_call(expr, scope, need_value=True)
        else:
            self._check_expr(expr, scope, line)

    def _check_call(self, call: ast.Call, scope: _Scope, need_value: bool) -> None:
        fn = self.functions.get(call.name)
        if fn is None:
            raise SemanticError(f"call to undefined {call.name!r}", call.line)
        if len(call.args) != len(fn.params):
            raise SemanticError(
                f"{call.name!r} expects {len(fn.params)} argument(s), "
                f"got {len(call.args)}",
                call.line,
            )
        if need_value and not fn.returns_value:
            raise SemanticError(
                f"void function {call.name!r} used for its value", call.line
            )
        for arg in call.args:
            self._check_expr(arg, scope, call.line)

    def _check_expr(self, expr: ast.Expr, scope: _Scope, line: int) -> None:
        """A pure expression: no calls allowed anywhere inside."""
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.Var):
            kind = scope.lookup(expr.name)
            if kind is None:
                raise SemanticError(f"undeclared variable {expr.name!r}", expr.line)
            if kind != "scalar":
                raise SemanticError(
                    f"array {expr.name!r} used without index", expr.line
                )
            return
        if isinstance(expr, ast.ArrayRef):
            kind = scope.lookup(expr.name)
            if kind is None:
                raise SemanticError(f"undeclared array {expr.name!r}", expr.line)
            if kind != "array":
                raise SemanticError(f"{expr.name!r} is not an array", expr.line)
            self._check_expr(expr.index, scope, expr.line)
            return
        if isinstance(expr, ast.Unary):
            self._check_expr(expr.operand, scope, expr.line)
            return
        if isinstance(expr, ast.Binary):
            self._check_expr(expr.left, scope, expr.line)
            self._check_expr(expr.right, scope, expr.line)
            return
        if isinstance(expr, ast.Call):
            raise SemanticError(
                "calls may only appear as statements or as the entire "
                "right-hand side of an assignment",
                expr.line,
            )
        raise SemanticError(f"unknown expression {expr!r}", line)  # pragma: no cover


def check_program(program: ast.Program) -> None:
    """Run all semantic checks; raise :class:`SemanticError` on violation."""
    _Checker(program).run()
