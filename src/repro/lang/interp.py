"""A concrete interpreter for mini-C, executing the control-flow graphs.

Running the *same* CFGs the analyses consume gives the test-suite an
oracle: every concrete run must be covered by the abstract results
(soundness).  The interpreter can record, for every program point it
passes, a snapshot of the local and global stores; the property tests
check these snapshots against the interval analysis.

Arithmetic follows C for ``int`` expressions: division truncates toward
zero, the remainder takes the dividend's sign, division by zero raises
:class:`ExecutionError`.  Deviations from C shared with the analyses:
``&&``/``||`` evaluate both operands; uninitialised storage reads as 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.lang import astnodes as ast
from repro.lang.cfg import (
    AssertInstr,
    CallInstr,
    ControlFlowGraph,
    Edge,
    Guard,
    Node,
    Nop,
    RETURN_SLOT,
    SetLocal,
    StoreArray,
)


class ExecutionError(Exception):
    """Raised on runtime errors (division by zero, bad index, fuel...)."""


@dataclass
class Observation:
    """A program point passed during execution, with store snapshots."""

    node: Node
    locals: Dict[str, int]
    globals: Dict[str, int]


@dataclass
class RunResult:
    """Outcome of a program run."""

    ret: int
    globals: Dict[str, int]
    global_arrays: Dict[str, List[int]]
    steps: int
    observations: List[Observation] = field(default_factory=list)


def trunc_div(a: int, b: int) -> int:
    """C-style integer division (truncation toward zero)."""
    if b == 0:
        raise ExecutionError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b > 0) else -q


def c_rem(a: int, b: int) -> int:
    """C-style remainder (sign follows the dividend)."""
    return a - trunc_div(a, b) * b


class Interpreter:
    """Executes a :class:`ControlFlowGraph` starting from a function."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        fuel: int = 1_000_000,
        record: bool = False,
        max_observations: int = 50_000,
    ) -> None:
        """Create an interpreter.

        :param cfg: the program's control-flow graphs.
        :param fuel: maximum number of edges to traverse before aborting
            (guards against non-terminating inputs).
        :param record: whether to snapshot the stores at every program
            point (for soundness testing).
        :param max_observations: cap on recorded snapshots.
        """
        self.cfg = cfg
        self.fuel = fuel
        self.record = record
        self.max_observations = max_observations

    def run(self, entry: str = "main", args: Sequence[int] = ()) -> RunResult:
        """Execute ``entry(*args)`` and return the result."""
        self._steps = 0
        self._observations: List[Observation] = []
        self._globals: Dict[str, int] = dict(self.cfg.global_scalars)
        self._global_arrays: Dict[str, List[int]] = {
            name: [0] * size for name, size in self.cfg.global_arrays.items()
        }
        ret = self._call(entry, list(args))
        return RunResult(
            ret=ret,
            globals=self._globals,
            global_arrays=self._global_arrays,
            steps=self._steps,
            observations=self._observations,
        )

    # ----------------------------------------------------------------- #
    # Execution.                                                        #
    # ----------------------------------------------------------------- #

    def _call(self, name: str, args: List[int]) -> int:
        try:
            fn = self.cfg.functions[name]
        except KeyError:
            raise ExecutionError(f"undefined function {name!r}") from None
        if len(args) != len(fn.params):
            raise ExecutionError(
                f"{name!r} expects {len(fn.params)} argument(s)"
            )
        local_scalars: Dict[str, int] = {v: 0 for v in fn.locals}
        local_arrays: Dict[str, List[int]] = {
            arr: [0] * size for arr, size in fn.arrays.items()
        }
        for param, value in zip(fn.params, args):
            local_scalars[param] = value
        node = fn.entry
        self._observe(node, local_scalars)
        while node != fn.exit:
            edge = self._pick_edge(fn.out_edges(node), local_scalars, local_arrays)
            self._execute(edge.instr, local_scalars, local_arrays)
            node = edge.dst
            self._steps += 1
            if self._steps > self.fuel:
                raise ExecutionError("out of fuel (non-terminating input?)")
            self._observe(node, local_scalars)
        return local_scalars[RETURN_SLOT]

    def _observe(self, node: Node, local_scalars: Dict[str, int]) -> None:
        if self.record and len(self._observations) < self.max_observations:
            self._observations.append(
                Observation(node, dict(local_scalars), dict(self._globals))
            )

    def _pick_edge(
        self,
        edges: List[Edge],
        scalars: Dict[str, int],
        arrays: Dict[str, List[int]],
    ) -> Edge:
        if not edges:
            raise ExecutionError("stuck: no outgoing edge")
        for edge in edges:
            if isinstance(edge.instr, Guard):
                value = self._eval(edge.instr.cond, scalars, arrays)
                if bool(value) == edge.instr.assume:
                    return edge
            else:
                return edge
        raise ExecutionError("stuck: no guard matched")

    def _execute(
        self,
        instr,
        scalars: Dict[str, int],
        arrays: Dict[str, List[int]],
    ) -> None:
        if isinstance(instr, Nop) or isinstance(instr, Guard):
            return
        if isinstance(instr, AssertInstr):
            if not self._eval(instr.cond, scalars, arrays):
                raise ExecutionError(
                    f"assertion failed at line {instr.line}"
                )
            return
        if isinstance(instr, SetLocal):
            value = self._eval(instr.expr, scalars, arrays)
            self._store_scalar(instr.target, value, scalars)
            return
        if isinstance(instr, StoreArray):
            index = self._eval(instr.index, scalars, arrays)
            value = self._eval(instr.value, scalars, arrays)
            self._store_array(instr.name, index, value, arrays)
            return
        if isinstance(instr, CallInstr):
            args = [self._eval(a, scalars, arrays) for a in instr.args]
            result = self._call(instr.func, args)
            if instr.target is not None:
                self._store_scalar(instr.target, result, scalars)
            return
        raise AssertionError(f"unexpected instruction {instr!r}")

    def _store_scalar(
        self, name: str, value: int, scalars: Dict[str, int]
    ) -> None:
        if name in scalars:
            scalars[name] = value
        elif name in self._globals:
            self._globals[name] = value
        else:
            raise ExecutionError(f"store to undeclared {name!r}")

    def _store_array(
        self, name: str, index: int, value: int, arrays: Dict[str, List[int]]
    ) -> None:
        table = arrays.get(name)
        if table is None:
            table = self._global_arrays.get(name)
        if table is None:
            raise ExecutionError(f"store to undeclared array {name!r}")
        if not 0 <= index < len(table):
            raise ExecutionError(
                f"index {index} out of bounds for {name!r}[{len(table)}]"
            )
        table[index] = value

    # ----------------------------------------------------------------- #
    # Expression evaluation.                                            #
    # ----------------------------------------------------------------- #

    def _eval(
        self, expr: ast.Expr, scalars: Dict[str, int], arrays: Dict[str, List[int]]
    ) -> int:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Var):
            if expr.name in scalars:
                return scalars[expr.name]
            if expr.name in self._globals:
                return self._globals[expr.name]
            raise ExecutionError(f"read of undeclared {expr.name!r}")
        if isinstance(expr, ast.ArrayRef):
            index = self._eval(expr.index, scalars, arrays)
            table = arrays.get(expr.name)
            if table is None:
                table = self._global_arrays.get(expr.name)
            if table is None:
                raise ExecutionError(f"read of undeclared array {expr.name!r}")
            if not 0 <= index < len(table):
                raise ExecutionError(
                    f"index {index} out of bounds for {expr.name!r}[{len(table)}]"
                )
            return table[index]
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, scalars, arrays)
            if expr.op == "-":
                return -value
            if expr.op == "!":
                return 0 if value else 1
            raise AssertionError(f"unexpected unary {expr.op!r}")
        if isinstance(expr, ast.Binary):
            left = self._eval(expr.left, scalars, arrays)
            right = self._eval(expr.right, scalars, arrays)
            return _binop(expr.op, left, right)
        if isinstance(expr, ast.Call):
            raise ExecutionError("nested calls are not part of mini-C")
        raise AssertionError(f"unexpected expression {expr!r}")


def _binop(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return trunc_div(a, b)
    if op == "%":
        return c_rem(a, b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise AssertionError(f"unexpected operator {op!r}")


def run_program(
    source: str,
    entry: str = "main",
    args: Sequence[int] = (),
    fuel: int = 1_000_000,
    record: bool = False,
) -> RunResult:
    """Compile and execute ``source`` in one call."""
    from repro.lang import compile_program

    cfg = compile_program(source)
    return Interpreter(cfg, fuel=fuel, record=record).run(entry, args)
