"""Token definitions for the mini-C lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """All token categories of mini-C."""

    INT_LIT = auto()
    IDENT = auto()
    KEYWORD = auto()
    PUNCT = auto()
    EOF = auto()


#: Reserved words.
KEYWORDS = frozenset(
    {
        "int",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "assert",
        "break",
        "continue",
    }
)

#: Multi-character punctuation, longest-match first.
PUNCT2 = ("<=", ">=", "==", "!=", "&&", "||")
PUNCT1 = "+-*/%<>=!(){}[];,"


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.name}({self.text!r})@{self.line}:{self.col}"
