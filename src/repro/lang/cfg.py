"""Control-flow-graph construction for mini-C.

Each function is lowered to a graph whose *nodes* are program points and
whose *edges* carry primitive instructions:

* :class:`SetLocal` -- assignment of a pure expression to a scalar;
* :class:`StoreArray` -- assignment into an array cell;
* :class:`Guard` -- a branch condition assumed true or false;
* :class:`CallInstr` -- a function call, optionally binding the return
  value to a scalar;
* :class:`Nop` -- a skip edge (joins, loop back-edges).

Scoped local declarations are resolved by *renaming*: every distinct local
gets a unique name (``x``, ``x$1``, ...), so the per-function environment
of the analyses is a flat map.  The special local ``__ret__`` holds the
return value; it is initialised to ``0`` together with all other locals
(mini-C defines uninitialised storage to be zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.lang import astnodes as ast

#: The distinguished local holding a function's return value.
RETURN_SLOT = "__ret__"


@dataclass(frozen=True, slots=True)
class Node:
    """A program point: function name plus index (entry is index 0)."""

    fn: str
    index: int
    line: int = field(default=0, compare=False)

    def __repr__(self) -> str:
        return f"{self.fn}:{self.index}"


# --------------------------------------------------------------------- #
# Edge instructions.                                                    #
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class SetLocal:
    """``target = expr`` where ``expr`` is call-free."""

    target: str
    expr: ast.Expr


@dataclass(frozen=True, slots=True)
class StoreArray:
    """``name[index] = value`` with call-free operands."""

    name: str
    index: ast.Expr
    value: ast.Expr


@dataclass(frozen=True, slots=True)
class Guard:
    """A branch: control passes only if ``cond`` evaluates to
    truthy (``assume=True``) or falsy (``assume=False``)."""

    cond: ast.Expr
    assume: bool


@dataclass(frozen=True, slots=True)
class AssertInstr:
    """``assert(cond)``: execution continues only when ``cond`` holds;
    failing runs abort.  Analyses treat it like a true-guard and the
    verification client checks whether ``cond`` is provably true."""

    cond: ast.Expr
    line: int = 0


@dataclass(frozen=True, slots=True)
class CallInstr:
    """``target = func(args)`` (or plain ``func(args)`` when target is
    ``None``); arguments are call-free."""

    target: Optional[str]
    func: str
    args: Tuple[ast.Expr, ...]


@dataclass(frozen=True, slots=True)
class Nop:
    """A skip edge."""


Instr = object  # SetLocal | StoreArray | Guard | CallInstr | Nop


@dataclass(frozen=True, slots=True)
class Edge:
    """A CFG edge ``src --instr--> dst``."""

    src: Node
    instr: Instr
    dst: Node


@dataclass
class FunctionCFG:
    """The control-flow graph of one function."""

    name: str
    params: Tuple[str, ...]
    returns_value: bool
    entry: Node
    exit: Node
    nodes: List[Node]
    edges: List[Edge]
    #: All scalar locals (renamed), including params and ``__ret__``.
    locals: Tuple[str, ...]
    #: Local arrays: renamed name -> declared size.
    arrays: Dict[str, int]

    def out_edges(self, node: Node) -> List[Edge]:
        """Edges leaving ``node`` (in construction order)."""
        return self._out.get(node, [])

    def in_edges(self, node: Node) -> List[Edge]:
        """Edges entering ``node`` (in construction order)."""
        return self._in.get(node, [])

    def finalize(self) -> None:
        """Build the adjacency indexes (called by the builder)."""
        self._out: Dict[Node, List[Edge]] = {}
        self._in: Dict[Node, List[Edge]] = {}
        for edge in self.edges:
            self._out.setdefault(edge.src, []).append(edge)
            self._in.setdefault(edge.dst, []).append(edge)


@dataclass
class ControlFlowGraph:
    """All functions of a program plus the global-variable table."""

    program: ast.Program
    functions: Dict[str, FunctionCFG]
    #: Global scalars: name -> initial value.
    global_scalars: Dict[str, int]
    #: Global arrays: name -> size.
    global_arrays: Dict[str, int]

    def total_nodes(self) -> int:
        """Number of program points across all functions."""
        return sum(len(f.nodes) for f in self.functions.values())


# --------------------------------------------------------------------- #
# Lowering.                                                             #
# --------------------------------------------------------------------- #

class _FnBuilder:
    def __init__(self, fn: ast.FuncDecl, global_names: set) -> None:
        self.fn = fn
        self.global_names = global_names
        self.counter = 0
        self.nodes: List[Node] = []
        self.edges: List[Edge] = []
        self.locals: List[str] = []
        self.arrays: Dict[str, int] = {}
        self.rename_counts: Dict[str, int] = {}
        # (break target, continue target) stack.
        self.loop_stack: List[Tuple[Node, Node]] = []

    # -- graph primitives ------------------------------------------- #

    def new_node(self, line: int = 0) -> Node:
        node = Node(self.fn.name, self.counter, line)
        self.counter += 1
        self.nodes.append(node)
        return node

    def edge(self, src: Node, instr: Instr, dst: Node) -> None:
        self.edges.append(Edge(src, instr, dst))

    # -- renaming ----------------------------------------------------- #

    def fresh_local(self, name: str) -> str:
        count = self.rename_counts.get(name, 0)
        self.rename_counts[name] = count + 1
        unique = name if count == 0 else f"{name}${count}"
        return unique

    def rename_expr(self, expr: ast.Expr, env: Dict[str, str]) -> ast.Expr:
        if isinstance(expr, ast.IntLit):
            return expr
        if isinstance(expr, ast.Var):
            return replace(expr, name=env.get(expr.name, expr.name))
        if isinstance(expr, ast.ArrayRef):
            return replace(
                expr,
                name=env.get(expr.name, expr.name),
                index=self.rename_expr(expr.index, env),
            )
        if isinstance(expr, ast.Unary):
            return replace(expr, operand=self.rename_expr(expr.operand, env))
        if isinstance(expr, ast.Binary):
            return replace(
                expr,
                left=self.rename_expr(expr.left, env),
                right=self.rename_expr(expr.right, env),
            )
        if isinstance(expr, ast.Call):
            return replace(
                expr,
                args=tuple(self.rename_expr(a, env) for a in expr.args),
            )
        raise AssertionError(f"unexpected expression {expr!r}")

    # -- lowering ------------------------------------------------------ #

    def build(self) -> FunctionCFG:
        entry = self.new_node(self.fn.line)
        exit_node = Node(self.fn.name, -1, self.fn.line)
        self.nodes.append(exit_node)
        env: Dict[str, str] = {}
        for p in self.fn.params:
            env[p.name] = p.name
            self.locals.append(p.name)
        self.locals.append(RETURN_SLOT)
        end = self.lower_block(self.fn.body, entry, exit_node, dict(env))
        # Falling off the end: return (with __ret__ still 0).
        self.edge(end, Nop(), exit_node)
        cfg = FunctionCFG(
            name=self.fn.name,
            params=tuple(p.name for p in self.fn.params),
            returns_value=self.fn.returns_value,
            entry=entry,
            exit=exit_node,
            nodes=self.nodes,
            edges=self.edges,
            locals=tuple(self.locals),
            arrays=dict(self.arrays),
        )
        cfg.finalize()
        return cfg

    def lower_block(
        self, block: ast.Block, cur: Node, exit_node: Node, env: Dict[str, str]
    ) -> Node:
        inner = dict(env)
        for stmt in block.stmts:
            cur = self.lower_stmt(stmt, cur, exit_node, inner)
        return cur

    def lower_stmt(
        self, stmt: ast.Stmt, cur: Node, exit_node: Node, env: Dict[str, str]
    ) -> Node:
        if isinstance(stmt, ast.VarDecl):
            unique = self.fresh_local(stmt.name)
            if stmt.array_size is not None:
                self.arrays[unique] = stmt.array_size
                env[stmt.name] = unique
                return cur
            self.locals.append(unique)
            # Bind the initialiser *before* entering the name into scope:
            # ``int x = x + 1;`` refers to the outer/global x, as in C
            # up to the point of declaration.
            init = stmt.init if stmt.init is not None else ast.IntLit(0, stmt.line)
            nxt = self.new_node(stmt.line)
            if isinstance(init, ast.Call):
                renamed_args = tuple(self.rename_expr(a, env) for a in init.args)
                self.edge(cur, CallInstr(unique, init.name, renamed_args), nxt)
            else:
                self.edge(cur, SetLocal(unique, self.rename_expr(init, env)), nxt)
            env[stmt.name] = unique
            return nxt
        if isinstance(stmt, ast.Assign):
            target = env.get(stmt.name, stmt.name)
            nxt = self.new_node(stmt.line)
            if isinstance(stmt.value, ast.Call):
                renamed_args = tuple(
                    self.rename_expr(a, env) for a in stmt.value.args
                )
                self.edge(
                    cur, CallInstr(target, stmt.value.name, renamed_args), nxt
                )
            else:
                self.edge(
                    cur, SetLocal(target, self.rename_expr(stmt.value, env)), nxt
                )
            return nxt
        if isinstance(stmt, ast.ArrayAssign):
            name = env.get(stmt.name, stmt.name)
            nxt = self.new_node(stmt.line)
            self.edge(
                cur,
                StoreArray(
                    name,
                    self.rename_expr(stmt.index, env),
                    self.rename_expr(stmt.value, env),
                ),
                nxt,
            )
            return nxt
        if isinstance(stmt, ast.If):
            cond = self.rename_expr(stmt.cond, env)
            then_start = self.new_node(stmt.line)
            self.edge(cur, Guard(cond, True), then_start)
            then_end = self.lower_block(stmt.then_body, then_start, exit_node, env)
            join = self.new_node(stmt.line)
            if stmt.else_body is not None:
                else_start = self.new_node(stmt.else_body.line)
                self.edge(cur, Guard(cond, False), else_start)
                else_end = self.lower_block(
                    stmt.else_body, else_start, exit_node, env
                )
                self.edge(else_end, Nop(), join)
            else:
                self.edge(cur, Guard(cond, False), join)
            self.edge(then_end, Nop(), join)
            return join
        if isinstance(stmt, ast.While):
            head = self.new_node(stmt.line)
            self.edge(cur, Nop(), head)
            cond = self.rename_expr(stmt.cond, env)
            body_start = self.new_node(stmt.line)
            after = self.new_node(stmt.line)
            self.edge(head, Guard(cond, True), body_start)
            self.edge(head, Guard(cond, False), after)
            self.loop_stack.append((after, head))
            body_end = self.lower_block(stmt.body, body_start, exit_node, env)
            self.loop_stack.pop()
            self.edge(body_end, Nop(), head)
            return after
        if isinstance(stmt, ast.For):
            header_env = dict(env)
            if stmt.init is not None:
                cur = self.lower_stmt(stmt.init, cur, exit_node, header_env)
            head = self.new_node(stmt.line)
            self.edge(cur, Nop(), head)
            body_start = self.new_node(stmt.line)
            after = self.new_node(stmt.line)
            if stmt.cond is not None:
                cond = self.rename_expr(stmt.cond, header_env)
                self.edge(head, Guard(cond, True), body_start)
                self.edge(head, Guard(cond, False), after)
            else:
                self.edge(head, Nop(), body_start)
            step_node = self.new_node(stmt.line)
            self.loop_stack.append((after, step_node))
            body_end = self.lower_block(stmt.body, body_start, exit_node, header_env)
            self.loop_stack.pop()
            self.edge(body_end, Nop(), step_node)
            if stmt.step is not None:
                step_end = self.lower_stmt(
                    stmt.step, step_node, exit_node, header_env
                )
            else:
                step_end = step_node
            self.edge(step_end, Nop(), head)
            return after
        if isinstance(stmt, ast.Assert):
            nxt = self.new_node(stmt.line)
            self.edge(
                cur,
                AssertInstr(self.rename_expr(stmt.cond, env), stmt.line),
                nxt,
            )
            return nxt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                mid = self.new_node(stmt.line)
                if isinstance(stmt.value, ast.Call):
                    renamed_args = tuple(
                        self.rename_expr(a, env) for a in stmt.value.args
                    )
                    self.edge(
                        cur,
                        CallInstr(RETURN_SLOT, stmt.value.name, renamed_args),
                        mid,
                    )
                else:
                    self.edge(
                        cur,
                        SetLocal(
                            RETURN_SLOT, self.rename_expr(stmt.value, env)
                        ),
                        mid,
                    )
                self.edge(mid, Nop(), exit_node)
            else:
                self.edge(cur, Nop(), exit_node)
            # Dangling node for any (unreachable) code after the return.
            return self.new_node(stmt.line)
        if isinstance(stmt, ast.Break):
            break_target, _ = self.loop_stack[-1]
            self.edge(cur, Nop(), break_target)
            return self.new_node(stmt.line)
        if isinstance(stmt, ast.Continue):
            _, continue_target = self.loop_stack[-1]
            self.edge(cur, Nop(), continue_target)
            return self.new_node(stmt.line)
        if isinstance(stmt, ast.ExprStmt):
            call = stmt.expr
            assert isinstance(call, ast.Call)
            nxt = self.new_node(stmt.line)
            renamed_args = tuple(self.rename_expr(a, env) for a in call.args)
            self.edge(cur, CallInstr(None, call.name, renamed_args), nxt)
            return nxt
        if isinstance(stmt, ast.Block):
            return self.lower_block(stmt, cur, exit_node, env)
        raise AssertionError(f"unexpected statement {stmt!r}")


def build_cfg(program: ast.Program) -> ControlFlowGraph:
    """Lower a checked program to control-flow graphs."""
    global_names = set(program.global_names)
    functions: Dict[str, FunctionCFG] = {}
    for fn in program.functions:
        functions[fn.name] = _FnBuilder(fn, global_names).build()
    global_scalars: Dict[str, int] = {}
    global_arrays: Dict[str, int] = {}
    for g in program.globals:
        if g.array_size is not None:
            global_arrays[g.name] = g.array_size
        else:
            global_scalars[g.name] = g.init if g.init is not None else 0
    return ControlFlowGraph(
        program=program,
        functions=functions,
        global_scalars=global_scalars,
        global_arrays=global_arrays,
    )
