"""repro -- a reproduction of Apinis, Seidl & Vojdani (PLDI 2013).

*How to Combine Widening and Narrowing for Non-monotonic Systems of
Equations.*

The package is organised in layers:

* :mod:`repro.lattices` -- complete lattices with widening/narrowing;
* :mod:`repro.eqs` -- (side-effecting) systems of pure equations;
* :mod:`repro.solvers` -- the generic solvers RR, W, SRR, SW, RLD, SLR and
  SLR+, parameterised by a binary update operator, including the paper's
  combined widening/narrowing operator ``warrow``;
* :mod:`repro.lang` -- a mini-C front-end (lexer, parser, CFG, concrete
  interpreter), the stand-in for CIL;
* :mod:`repro.analysis` -- abstract interpretation of mini-C compiled to
  equation systems: intraprocedural, context-sensitive interprocedural,
  and flow-insensitive globals via side effects;
* :mod:`repro.bench` -- the workloads and harnesses regenerating the
  paper's Figure 7 and Table 1.

Quick start::

    from repro.lattices import NatInf
    from repro.eqs import DictSystem
    from repro.solvers import WarrowCombine, solve_sw

    nat = NatInf()
    system = DictSystem(nat, {
        "x1": (lambda get: min(get("x1") + 1, get("x2") + 1), ["x1", "x2"]),
        "x2": (lambda get: min(get("x2") + 1, get("x1") + 1), ["x1", "x2"]),
    })
    result = solve_sw(system, WarrowCombine(nat))
    assert result["x1"] == float("inf")
"""

__version__ = "1.0.0"

__all__ = ["lattices", "eqs", "solvers", "lang", "analysis", "bench"]
