"""Solver instrumentation: evaluation counts, update counts, divergence guard.

The complexity statements of Theorems 1 and 2 are phrased in terms of the
number of right-hand-side evaluations, so every solver in this package
counts them.  The same counter doubles as a divergence guard: the paper
*proves* that round-robin and plain worklist iteration with the combined
operator may diverge (Examples 1 and 2), and the test-suite demonstrates
exactly that by catching :class:`DivergenceError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional


class DivergenceError(Exception):
    """Raised when a solver run is aborted before reaching quiescence.

    Carries the partial ``sigma``, the statistics, and the unknown whose
    evaluation tripped the abort, so callers can *salvage* the
    accumulated work instead of discarding it: tests inspect the
    oscillating iteration (the tables of Examples 1-2), and the
    supervision layer (:mod:`repro.supervise`) escalates the offending
    unknowns and resumes from the partial state.

    Subclasses distinguish the budget guard from the supervision
    watchdogs (:class:`repro.supervise.watchdog.WatchdogError`).
    """

    def __init__(
        self,
        message: str,
        sigma: Optional[dict] = None,
        stats: Optional["SolverStats"] = None,
        unknown: Optional[Hashable] = None,
    ) -> None:
        super().__init__(message)
        #: Partial mapping accumulated up to the abort (salvageable work).
        self.sigma = sigma if sigma is not None else {}
        #: Counters of the aborted run.
        self.stats = stats
        #: The unknown whose evaluation tripped the abort, if known.
        self.unknown = unknown


@dataclass
class SolverStats:
    """Counters accumulated during one solver run."""

    #: Total number of right-hand-side evaluations.
    evaluations: int = 0
    #: Number of evaluations whose combined value changed the mapping.
    updates: int = 0
    #: Committed updates that grew the value (widening direction, or an
    #: incomparable move -- anything that is not a shrink).
    widen_updates: int = 0
    #: Committed updates that strictly shrank the value (narrowing
    #: direction under the combined operator).
    narrow_updates: int = 0
    #: Per-unknown direction reversals (widen -> narrow or back), summed
    #: over the run.  The narrow-to-widen half of these is the paper's
    #: Section 4 divergence symptom; the batch/bench layer records the
    #: counter per job so regressions in solver behaviour show up as
    #: corpus-level drift.
    direction_switches: int = 0
    #: Region restarts performed by the restarting solvers (SLR3, TDR):
    #: each counts one downward reversal at a widening point whose
    #: dependent over-widened region was discarded and destabilised.
    #: Always 0 for non-restarting solvers.
    restarts: int = 0
    #: Per-unknown evaluation counts.
    per_unknown: Dict[Hashable, int] = field(default_factory=dict)
    #: Largest size reached by the worklist / queue (where applicable).
    max_queue: int = 0
    #: Number of distinct unknowns touched (== len(dom) for local solvers).
    unknowns: int = 0
    #: RHS memoization cache hits (0 unless memoization is enabled).
    memo_hits: int = 0
    #: RHS memoization cache misses (0 unless memoization is enabled).
    memo_misses: int = 0
    #: Canonical spec string of the update strategy the run was driven
    #: by (empty when the operator carries no spec, e.g. when it was
    #: constructed directly instead of via the strategy registry).
    strategy: str = ""

    def count_eval(self, x: Hashable) -> None:
        """Record one evaluation of the right-hand side of ``x``."""
        self.evaluations += 1
        self.per_unknown[x] = self.per_unknown.get(x, 0) + 1

    def count_update(self) -> None:
        """Record one changed value."""
        self.updates += 1

    def observe_queue(self, size: int) -> None:
        """Record the current queue size."""
        if size > self.max_queue:
            self.max_queue = size


@dataclass
class SolverResult:
    """The outcome of a solver run: the mapping plus instrumentation.

    For local solvers, ``sigma``'s key set is the encountered domain
    ``dom``; for global solvers it is the full unknown set.
    """

    sigma: dict
    stats: SolverStats

    def __getitem__(self, x):
        return self.sigma[x]

    def __contains__(self, x) -> bool:
        return x in self.sigma

    @property
    def dom(self) -> set:
        """The set of unknowns with a computed value."""
        return set(self.sigma)


class Budget:
    """An evaluation budget shared by a solver run."""

    def __init__(self, stats: SolverStats, max_evals: Optional[int]) -> None:
        self._stats = stats
        self._max = max_evals

    def charge(self, x: Hashable, sigma: dict) -> None:
        """Count one evaluation of ``x``; raise on budget exhaustion."""
        self._stats.count_eval(x)
        if self._max is not None and self._stats.evaluations > self._max:
            raise DivergenceError(
                f"exceeded {self._max} right-hand-side evaluations "
                f"(likely divergence)",
                dict(sigma),
                self._stats,
                unknown=x,
            )
