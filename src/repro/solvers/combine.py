"""Binary update operators, including the paper's combined operator.

A *generic* solver performs update steps ``sigma[x] <- sigma[x] (op) f_x(sigma)``
for some binary operator ``op`` ("box" in the paper).  Instantiating ``op``
differently yields ordinary solving (override), post-solving (join),
pre-solving (meet), accelerated ascending iteration (widen), accelerated
descending iteration (narrow) -- and, centrally, the paper's novel combined
widening/narrowing operator, which we spell ``warrow``::

    a warrow b  =  a narrow b   if b <= a
                   a widen b    otherwise

Operators are modelled as callables ``op(x, old, new) -> combined`` that also
receive the unknown ``x``; stateless operators ignore it, while the
per-unknown book-keeping variants (delayed widening, the k-bounded
termination safeguard from the end of Section 4) key their state on it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable

from repro.lattices.base import Lattice


class Combine(ABC):
    """A binary update operator with optional per-unknown state."""

    #: Whether ``(a op b) op b == a op b`` holds for all a, b.  Solvers may
    #: exploit idempotence; the combined operator is *not* idempotent.
    idempotent: bool = False

    #: The resolved :class:`~repro.strategies.spec.StrategySpec` this
    #: operator was built from, when it came out of the strategy registry
    #: (``None`` for directly constructed operators).  Carried across
    #: :meth:`fresh` so engines can stamp the strategy into their stats.
    spec = None

    @abstractmethod
    def __call__(self, x: Hashable, old, new):
        """Combine the ``old`` value of ``x`` with the ``new`` contribution."""

    def reset(self) -> None:
        """Clear any per-unknown state (called at the start of a solve)."""

    def fresh(self) -> "Combine":
        """Return an equivalent operator with cleared, *unshared* state.

        Stateless operators may return ``self``; every operator with
        per-unknown state must return a **new instance** -- two solver
        runs handed the same operator object (e.g. by the service's
        thread pool) must never share ``_grow_counts``/``_switches``
        maps.  Subclasses with constructor state override :meth:`_clone`;
        this wrapper carries the ``spec`` attribute across.
        """
        clone = self._clone()
        if clone is not self:
            clone.spec = self.spec
        return clone

    def _clone(self) -> "Combine":
        """A new equivalent instance with cleared state (see :meth:`fresh`)."""
        return self

    # ----------------------------------------------------------------- #
    # Serializable per-unknown state (incremental/checkpoint resume).    #
    # ----------------------------------------------------------------- #

    def state_parts(self) -> Dict[str, Dict[Hashable, object]]:
        """The operator's per-unknown state as ``field -> {unknown: scalar}``.

        Scalars must be JSON-able (ints or short strings); the nested
        export/import over wrapper operators lives in
        :mod:`repro.strategies.state`.  Stateless operators return ``{}``.
        """
        return {}

    def load_state_parts(
        self, parts: Dict[str, Dict[Hashable, object]]
    ) -> None:
        """Restore state exported by :meth:`state_parts` (missing keys
        reset to empty)."""

    def children(self) -> Dict[str, "Combine"]:
        """Named member operators of a wrapper strategy (``{}`` for leaves)."""
        return {}


class OverrideCombine(Combine):
    """``a op b = b``: plain (unaccelerated) solving for exact solutions."""

    idempotent = True

    def __call__(self, x, old, new):
        return new


class JoinCombine(Combine):
    """``op = join``: solutions are *post* solutions (sigma[x] >= f_x(sigma))."""

    idempotent = True

    def __init__(self, lattice: Lattice) -> None:
        self.lattice = lattice

    def __call__(self, x, old, new):
        return self.lattice.join(old, new)


class MeetCombine(Combine):
    """``op = meet``: solutions are *pre* solutions (sigma[x] <= f_x(sigma))."""

    idempotent = True

    def __init__(self, lattice: Lattice) -> None:
        self.lattice = lattice

    def __call__(self, x, old, new):
        return self.lattice.meet(old, new)


class WidenCombine(Combine):
    """``op = widen``: the ascending (widening) phase of classic two-phase
    solving.

    The optional per-unknown *delay* uses plain join for the first
    ``delay`` growing updates of each unknown before accelerating --
    standard practice in production analyzers, and the fair setting when
    comparing against a delayed combined operator.
    """

    def __init__(self, lattice: Lattice, delay: int = 0) -> None:
        self.lattice = lattice
        self.delay = delay
        self._grow_counts: Dict[Hashable, int] = {}

    def reset(self) -> None:
        self._grow_counts.clear()

    def _clone(self) -> "WidenCombine":
        return type(self)(self.lattice, self.delay)

    def state_parts(self):
        return {"grow": dict(self._grow_counts)}

    def load_state_parts(self, parts) -> None:
        self._grow_counts = dict(parts.get("grow", {}))

    def __call__(self, x, old, new):
        if self.delay and not self.lattice.leq(new, old):
            seen = self._grow_counts.get(x, 0)
            if seen < self.delay:
                self._grow_counts[x] = seen + 1
                return self.lattice.join(old, new)
        return self.lattice.widen(old, new)


class NarrowCombine(Combine):
    """``op = narrow``: the descending phase; only sound on post solutions
    of monotonic systems.

    Following the definition of narrowing, the new contribution is first
    met with the old value so that the pre-condition ``b <= a`` of the
    operator holds even when the iteration is (unsoundly) applied to
    non-monotonic systems; on monotone descending iterations the meet is
    the identity.
    """

    def __init__(self, lattice: Lattice) -> None:
        self.lattice = lattice

    def __call__(self, x, old, new):
        clipped = new if self.lattice.leq(new, old) else self.lattice.meet(old, new)
        return self.lattice.narrow(old, clipped)


class WarrowCombine(Combine):
    """The paper's combined operator (Section 3).

    ``a warrow b`` narrows while the new contribution shrinks and widens
    while it grows.  An optional *delay* makes the growing branch behave
    like plain join for the first ``delay`` updates of each unknown -- a
    standard precision knob that keeps all the paper's guarantees (after
    finitely many joins, widening takes over).
    """

    def __init__(self, lattice: Lattice, delay: int = 0) -> None:
        self.lattice = lattice
        self.delay = delay
        self._grow_counts: Dict[Hashable, int] = {}

    def reset(self) -> None:
        self._grow_counts.clear()

    def _clone(self) -> "WarrowCombine":
        return type(self)(self.lattice, self.delay)

    def state_parts(self):
        return {"grow": dict(self._grow_counts)}

    def load_state_parts(self, parts) -> None:
        self._grow_counts = dict(parts.get("grow", {}))

    def __call__(self, x, old, new):
        if self.lattice.leq(new, old):
            return self.lattice.narrow(old, new)
        if self.delay:
            seen = self._grow_counts.get(x, 0)
            if seen < self.delay:
                self._grow_counts[x] = seen + 1
                return self.lattice.join(old, new)
        return self.lattice.widen(old, new)


class BoundedWarrowCombine(Combine):
    """The termination safeguard sketched at the end of Section 4.

    For non-monotonic systems even the structured solvers may not
    terminate, because an unknown can switch from narrowing back to
    widening infinitely often.  This operator counts, per unknown, how
    often that switch happens; past the threshold ``k`` the narrowing
    branch degrades to ``a op b = a`` (no further improvement), after which
    the unknown's value can only grow by widening and hence stabilises.

    The result is still a post solution: in the degraded branch the new
    contribution satisfies ``b <= a``, so keeping ``a`` preserves
    ``sigma[x] >= f_x(sigma)``.
    """

    def __init__(self, lattice: Lattice, k: int = 2) -> None:
        if k < 0:
            raise ValueError("threshold k must be non-negative")
        self.lattice = lattice
        self.k = k
        self._switches: Dict[Hashable, int] = {}
        self._mode: Dict[Hashable, str] = {}

    def reset(self) -> None:
        self._switches.clear()
        self._mode.clear()

    def _clone(self) -> "BoundedWarrowCombine":
        return type(self)(self.lattice, self.k)

    def state_parts(self):
        return {"switches": dict(self._switches), "mode": dict(self._mode)}

    def load_state_parts(self, parts) -> None:
        self._switches = dict(parts.get("switches", {}))
        self._mode = dict(parts.get("mode", {}))

    def __call__(self, x, old, new):
        if self.lattice.leq(new, old):
            if self._switches.get(x, 0) >= self.k:
                return old
            result = self.lattice.narrow(old, new)
            # Only a *strict* improvement arms the switch detector: a
            # stable re-evaluation (new == old) is not narrowing and must
            # not burn the budget when growth resumes later.
            if not self.lattice.equal(result, old):
                self._mode[x] = "narrow"
            return result
        if self._mode.get(x) == "narrow":
            self._switches[x] = self._switches.get(x, 0) + 1
        self._mode[x] = "widen"
        return self.lattice.widen(old, new)


class BoundedNarrowCombine(Combine):
    """Widen on growth; narrow on shrink, at most ``cap`` times per unknown.

    The degraded member of the supervision layer's escalation ladder
    (:mod:`repro.supervise.escalate`): each unknown may take up to
    ``cap`` strictly improving narrow steps, after which a shrinking
    contribution keeps the old value -- sound, because ``b <= a`` in that
    branch, so keeping ``a`` preserves ``sigma[x] >= f_x(sigma)``.  With
    ``cap=0`` this is ascending-only iteration (⌴ → ▽, the Goblint
    ``NarrowOption`` with narrowing off): the paper's Theorem 1/2 regime
    where termination needs no monotonicity at all.
    """

    def __init__(self, lattice: Lattice, cap: int = 0) -> None:
        if cap < 0:
            raise ValueError("narrow cap must be non-negative")
        self.lattice = lattice
        self.cap = cap
        self._descents: Dict[Hashable, int] = {}

    def reset(self) -> None:
        self._descents.clear()

    def _clone(self) -> "BoundedNarrowCombine":
        return type(self)(self.lattice, self.cap)

    def state_parts(self):
        return {"descents": dict(self._descents)}

    def load_state_parts(self, parts) -> None:
        self._descents = dict(parts.get("descents", {}))

    def __call__(self, x, old, new):
        if self.lattice.leq(new, old):
            if self._descents.get(x, 0) >= self.cap:
                return old
            result = self.lattice.narrow(old, new)
            if not self.lattice.equal(result, old):
                self._descents[x] = self._descents.get(x, 0) + 1
            return result
        return self.lattice.widen(old, new)


class BoundedJoinNarrowCombine(Combine):
    """Join on growth; narrow on shrink, frozen after ``bound`` switches.

    The non-accelerated member of the selective widening-point operator
    (:class:`~repro.solvers.wpoints.SelectiveWarrowCombine`): values grow
    by plain join -- so no precision is lost at harmless merge points --
    but may still shrink when an accelerated neighbour narrows.
    Unrestricted, that combination re-creates the oscillations of the
    paper's Examples 1--2 through the non-points, so the Section 4
    safeguard applies: after ``bound`` narrow-to-grow switches per
    unknown, narrowing is given up and only bounded join growth remains.
    """

    def __init__(self, lattice: Lattice, bound: int = 3) -> None:
        if bound < 0:
            raise ValueError("switch bound must be non-negative")
        self.lattice = lattice
        self.bound = bound
        self._switches: Dict[Hashable, int] = {}
        self._mode: Dict[Hashable, str] = {}

    def reset(self) -> None:
        self._switches.clear()
        self._mode.clear()

    def _clone(self) -> "BoundedJoinNarrowCombine":
        return type(self)(self.lattice, self.bound)

    def state_parts(self):
        return {"switches": dict(self._switches), "mode": dict(self._mode)}

    def load_state_parts(self, parts) -> None:
        self._switches = dict(parts.get("switches", {}))
        self._mode = dict(parts.get("mode", {}))

    def __call__(self, x, old, new):
        if self.lattice.leq(new, old):
            if self._switches.get(x, 0) >= self.bound:
                return old
            result = self.lattice.narrow(old, new)
            # Stable re-evaluations must not arm the detector.
            if not self.lattice.equal(result, old):
                self._mode[x] = "narrow"
            return result
        if self._mode.get(x) == "narrow":
            self._switches[x] = self._switches.get(x, 0) + 1
        self._mode[x] = "grow"
        return self.lattice.join(old, new)


def warrow(lattice: Lattice, a, b):
    """One-shot application of the combined operator (stateless form)."""
    if lattice.leq(b, a):
        return lattice.narrow(a, b)
    return lattice.widen(a, b)
