"""The local solver RLD of Hofmann, Karbyshev and Seidl (Fig. 5).

RLD is reproduced faithfully, including the property the paper criticises:
``eval`` recursively solves *every* looked-up unknown, so one evaluation of
a right-hand side may observe values from several different intermediate
mappings.  Right-hand sides are therefore not executed atomically, and RLD
enhanced with an arbitrary update operator is **not** a generic solver: it
may terminate with a mapping that is not an ``op``-solution.  The paper's
solver SLR (:mod:`repro.solvers.slr`) repairs exactly this; the test-suite
contains a side-by-side demonstration.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.eqs.system import PureSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.stats import Budget, SolverResult, SolverStats


def solve_rld(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
) -> SolverResult:
    """Run RLD for the interesting unknown ``x0``.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator.
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence.
    :returns: the mapping over all encountered unknowns.
    """
    op.reset()
    lat = system.lattice
    sigma: dict = {}
    infl: dict = {}
    stable: set = set()
    stats = SolverStats()
    budget = Budget(stats, max_evals)

    def value_of(y):
        if y not in sigma:
            sigma[y] = system.init(y)
        return sigma[y]

    # ``infl`` maps an unknown to an insertion-ordered set (a dict with
    # ``None`` values) so that destabilised unknowns are re-solved in the
    # order their dependencies were recorded -- keeping runs deterministic
    # regardless of string-hash randomisation.
    def solve(x) -> None:
        if x in stable:
            return
        stable.add(x)
        value_of(x)
        budget.charge(x, sigma)
        tmp = op(x, sigma[x], system.rhs(x)(make_eval(x)))
        if not lat.equal(tmp, sigma[x]):
            work = list(infl.get(x, ()))
            sigma[x] = tmp
            stats.count_update()
            infl[x] = {}
            stable.difference_update(work)
            for y in work:
                solve(y)

    def make_eval(x):
        def eval_(y):
            solve(y)
            infl.setdefault(y, {})[x] = None
            return value_of(y)

        return eval_

    call_with_deep_stack(lambda: solve(x0))
    stats.unknowns = len(sigma)
    return SolverResult(sigma, stats)
