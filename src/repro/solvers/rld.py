"""The local solver RLD of Hofmann, Karbyshev and Seidl (Fig. 5).

RLD is reproduced faithfully, including the property the paper criticises:
``eval`` recursively solves *every* looked-up unknown, so one evaluation of
a right-hand side may observe values from several different intermediate
mappings.  Right-hand sides are therefore not executed atomically, and RLD
enhanced with an arbitrary update operator is **not** a generic solver: it
may terminate with a mapping that is not an ``op``-solution.  The paper's
solver SLR (:mod:`repro.solvers.slr`) repairs exactly this; the test-suite
contains a side-by-side demonstration.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.eqs.system import PureSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "rld",
    scope="local",
    generic=False,
    aliases=("hofmann",),
    paper_ref="Fig. 5",
    summary="Hofmann et al. local solver; not generic (non-atomic evals)",
)
def solve_rld(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    *,
    observers=(),
) -> SolverResult:
    """Run RLD for the interesting unknown ``x0``.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator.
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence.
    :param observers: extra event-bus observers for this run.
    :returns: the mapping over all encountered unknowns.
    """
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    sigma = eng.sigma

    # The engine's ``infl`` holds insertion-ordered sets (dicts with
    # ``None`` values) so that destabilised unknowns are re-solved in the
    # order their dependencies were recorded -- keeping runs deterministic
    # regardless of string-hash randomisation.
    def solve(x) -> None:
        if x in eng.stable:
            return
        eng.stable.add(x)
        eng.value_of(x)
        old = sigma[x]
        tmp = op(x, old, eng.eval_rhs(x, eng.demand_solving_eval(x, solve)))
        if eng.commit(x, tmp):
            for y in eng.destabilize_ordered(x):
                solve(y)

    call_with_deep_stack(lambda: solve(x0))
    eng.finish(unknowns=len(sigma))
    return SolverResult(sigma, eng.stats)
