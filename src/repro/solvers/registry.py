"""The solver registry: name-based lookup with capability metadata.

Every ``solve_*`` function registers itself with :func:`register_solver`,
so downstream layers (the CLI, the intra-/interprocedural analyses and
the benchmark harness) select solvers by *string* instead of importing a
specific function::

    from repro.solvers.registry import get_solver

    spec = get_solver("slr")            # -> SolverSpec, callable
    result = spec(system, op, "x0")

Capability metadata makes mis-selection a loud error instead of a wrong
answer: :func:`get_solver` can require a scope (``"global"`` whole-system
solvers vs ``"local"`` demand-driven ones), side-effect support,
genericity in the paper's sense, or memoization support, and raises
:class:`SolverCapabilityError` on a mismatch.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple


class UnknownSolverError(LookupError):
    """Raised when no solver is registered under the requested name."""


class SolverCapabilityError(ValueError):
    """Raised when the named solver lacks a required capability."""


@dataclass(frozen=True)
class SolverSpec:
    """One registered solver and its capabilities.

    Instances are callable and delegate to the underlying ``solve_*``
    function, so ``get_solver(name)(...)`` is a drop-in for a direct
    import.
    """

    #: Canonical registry name (lower-case).
    name: str
    #: The underlying ``solve_*`` function.
    fn: Callable
    #: ``"global"`` (iterates a finite system) or ``"local"``
    #: (demand-driven from an interesting unknown ``x0``).
    scope: str
    #: Whether the solver accepts side-effecting systems (``SLR+``).
    side_effecting: bool = False
    #: Whether the solver takes a :class:`Combine` operator (the Kleene
    #: and two-phase baselines fix their operators internally).
    takes_op: bool = True
    #: Whether the solver is *generic* in the paper's sense: upon
    #: termination the result is an ``op``-solution for any operator.
    generic: bool = True
    #: Whether the solver supports the engine's RHS memoization cache
    #: (requires atomic evaluations and a side-effect-free system).
    memoizable: bool = False
    #: Whether the solver *restarts*: on a downward reversal at a
    #: widening point it discards and destabilizes the dependent
    #: over-widened region (SLR3, TDR).  Restarting solvers report fired
    #: restarts in ``stats.restarts``.
    restarting: bool = False
    #: Whether the solver consumes a linear ``order`` of the unknowns.
    takes_order: bool = False
    #: Whether the solver can run under the supervision layer
    #: (:mod:`repro.supervise`): it must accept ``observers=`` and drive
    #: all evaluations through the engine, so watchdogs, checkpoints and
    #: fault salvage see every event.  All engine-based solvers qualify.
    supervisable: bool = True
    #: Alternate lookup names.
    aliases: Tuple[str, ...] = ()
    #: Paper reference, e.g. ``"Fig. 6"``.
    paper_ref: str = ""
    #: One-line description for listings.
    summary: str = ""

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)

    @property
    def supports_warm_start(self) -> bool:
        """Whether a warm-start strategy is registered for this solver.

        Warm starts resume iteration from a restored
        :class:`~repro.incremental.state.SolverState`; see
        :func:`get_warm_start`.
        """
        _ensure_warm_loaded()
        return self.name in _WARM


_REGISTRY: Dict[str, SolverSpec] = {}
_CANONICAL: List[str] = []
#: Warm-start strategies, registered by :mod:`repro.incremental`.
_WARM: Dict[str, Callable] = {}


def _normalize(name: str) -> str:
    return name.strip().lower().replace("_", "-")


def register_solver(
    name: str,
    *,
    scope: str,
    side_effecting: bool = False,
    takes_op: bool = True,
    generic: bool = True,
    memoizable: bool = False,
    restarting: bool = False,
    takes_order: bool = False,
    supervisable: bool = True,
    aliases: Tuple[str, ...] = (),
    paper_ref: str = "",
    summary: str = "",
) -> Callable:
    """Class decorator for ``solve_*`` functions: add them to the registry."""
    if scope not in ("global", "local"):
        raise ValueError(f"scope must be 'global' or 'local', got {scope!r}")

    def decorate(fn: Callable) -> Callable:
        spec = SolverSpec(
            name=_normalize(name),
            fn=fn,
            scope=scope,
            side_effecting=side_effecting,
            takes_op=takes_op,
            generic=generic,
            memoizable=memoizable,
            restarting=restarting,
            takes_order=takes_order,
            supervisable=supervisable,
            aliases=tuple(_normalize(a) for a in aliases),
            paper_ref=paper_ref,
            summary=summary,
        )
        for key in (spec.name, *spec.aliases):
            existing = _REGISTRY.get(key)
            if existing is not None and existing.fn is not fn:
                raise ValueError(
                    f"solver name {key!r} already registered "
                    f"for {existing.fn.__name__}"
                )
            _REGISTRY[key] = spec
        if spec.name not in _CANONICAL:
            _CANONICAL.append(spec.name)
        return fn

    return decorate


def _ensure_loaded() -> None:
    # Registration happens on import of the solver modules; importing the
    # package pulls in all of them.  The import is deferred to avoid a
    # cycle (the solver modules import this module for the decorator).
    if not _REGISTRY:
        import repro.solvers  # noqa: F401


def _ensure_warm_loaded() -> None:
    # Warm-start strategies live in repro.incremental, which imports the
    # solver modules; defer the import for the same cycle reason.
    if not _WARM:
        import repro.incremental  # noqa: F401


def register_warm_start(name: str, fn: Callable) -> None:
    """Register the warm-start strategy for the solver named ``name``.

    Called by :mod:`repro.incremental` for SW/SLR/SLR+; custom solvers
    with resumable state can register their own.
    """
    _WARM[_normalize(name)] = fn


def _suggest(name: str, predicate: Callable[[SolverSpec], bool]) -> str:
    """A ``"; nearest supported alternative: ..."`` suffix for errors.

    Ranks the solvers satisfying ``predicate`` by name similarity to the
    requested ``name`` (so ``slr`` without side effects suggests
    ``slr+`` before ``rld``); empty when nothing qualifies.
    """
    candidates = [s.name for s in all_specs() if predicate(s)]
    if not candidates:
        return ""
    ranked = sorted(
        candidates,
        key=lambda n: (
            -difflib.SequenceMatcher(None, _normalize(name), n).ratio(),
            n,
        ),
    )
    suffix = f"; nearest supported alternative: {ranked[0]!r}"
    if len(ranked) > 1:
        others = ", ".join(repr(n) for n in ranked[1:4])
        suffix += f" (also: {others})"
    return suffix


def get_warm_start(name: str) -> Callable:
    """The warm-start strategy of the named solver.

    :raises SolverCapabilityError: when the solver exists but has no
        registered warm-start strategy.
    """
    spec = get_solver(name)
    _ensure_warm_loaded()
    fn = _WARM.get(spec.name)
    if fn is None:
        raise SolverCapabilityError(
            f"solver {spec.name!r} does not support warm starts"
            + _suggest(spec.name, lambda s: s.supports_warm_start)
        )
    return fn


def get_solver(
    name: str,
    *,
    scope: Optional[str] = None,
    side_effecting: Optional[bool] = None,
    generic: Optional[bool] = None,
    memoize: Optional[bool] = None,
    supervisable: Optional[bool] = None,
    takes_op: Optional[bool] = None,
) -> SolverSpec:
    """Look up a solver by name, optionally enforcing capabilities.

    :param name: a registry name or alias, case-insensitive (``"slr"``,
        ``"SLR+"``, ``"sw"``...).
    :param scope: require ``"global"`` or ``"local"``.
    :param side_effecting: require (or reject) side-effecting support.
    :param generic: require genericity in the paper's sense.
    :param memoize: when ``True``, require RHS-memoization support.
    :param supervisable: when ``True``, require support for the
        supervision layer (watchdog observers, checkpointing, salvage).
    :param takes_op: when ``True``, require the solver to accept a
        :class:`Combine` operator (a resolved ``--op`` strategy spec is
        meaningless to the fixed-operator baselines).
    :raises UnknownSolverError: for unregistered names.
    :raises SolverCapabilityError: when a requirement is not met.
    """
    _ensure_loaded()
    spec = _REGISTRY.get(_normalize(name))
    if spec is None:
        known = ", ".join(sorted(_CANONICAL))
        raise UnknownSolverError(
            f"unknown solver {name!r}; registered solvers: {known}"
        )
    if scope is not None and spec.scope != scope:
        raise SolverCapabilityError(
            f"solver {spec.name!r} is {spec.scope}, but a {scope} solver "
            f"is required"
            + _suggest(spec.name, lambda s: s.scope == scope)
        )
    if side_effecting is not None and spec.side_effecting != side_effecting:
        detail = "does not support" if side_effecting else "requires"
        raise SolverCapabilityError(
            f"solver {spec.name!r} {detail} side-effecting systems"
            + _suggest(
                spec.name, lambda s: s.side_effecting == side_effecting
            )
        )
    if generic is not None and spec.generic != generic:
        raise SolverCapabilityError(
            f"solver {spec.name!r} is "
            f"{'not ' if generic else ''}a generic solver"
            + _suggest(spec.name, lambda s: s.generic == generic)
        )
    if memoize and not spec.memoizable:
        raise SolverCapabilityError(
            f"solver {spec.name!r} does not support RHS memoization "
            f"(it needs atomic, side-effect-free evaluations)"
            + _suggest(spec.name, lambda s: s.memoizable)
        )
    if supervisable and not spec.supervisable:
        raise SolverCapabilityError(
            f"solver {spec.name!r} cannot run under supervision "
            f"(it must accept observers and evaluate through the engine)"
            + _suggest(spec.name, lambda s: s.supervisable)
        )
    if takes_op and not spec.takes_op:
        raise SolverCapabilityError(
            f"solver {spec.name!r} fixes its update operator internally "
            f"and cannot run a combine strategy"
            + _suggest(spec.name, lambda s: s.takes_op)
        )
    return spec


def resolve_solver(solve, **requirements) -> Callable:
    """Accept either a solver callable or a registry name.

    Callables pass through untouched (the historic API); strings are
    resolved via :func:`get_solver` with the given capability
    ``requirements``.
    """
    if callable(solve):
        return solve
    return get_solver(solve, **requirements)


def solver_names() -> List[str]:
    """Canonical names of all registered solvers, in registration order."""
    _ensure_loaded()
    return list(_CANONICAL)


def all_specs() -> List[SolverSpec]:
    """All registered solver specs, in registration order."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in _CANONICAL]


def capability_listing() -> List[dict]:
    """Machine-readable capability records for every registered solver.

    One plain-data dict per solver, in registration order -- the payload
    behind ``repro solvers --json`` and the analysis service's
    ``solvers`` operation, which advertises (and validates) solver
    choices to remote clients.  Keys are stable API: downstream tooling
    may rely on them.
    """
    return [
        {
            "name": spec.name,
            "aliases": list(spec.aliases),
            "scope": spec.scope,
            "side_effecting": spec.side_effecting,
            "takes_op": spec.takes_op,
            "generic": spec.generic,
            "memoizable": spec.memoizable,
            "restarting": spec.restarting,
            "takes_order": spec.takes_order,
            "supports_warm_start": spec.supports_warm_start,
            "supervisable": spec.supervisable,
            "paper_ref": spec.paper_ref,
            "summary": spec.summary,
        }
        for spec in all_specs()
    ]
