"""Variable orderings for the structured solvers.

Theorem 1 and 2 hold for *any* linear order of the unknowns, but the order
has a large impact on the number of evaluations (as the paper notes,
following Bourdoncle): the linear order should evaluate innermost loops
before iterating on outer loops.

Two orders are provided:

* :func:`dfs_priority_order` -- the order SLR induces dynamically: unknowns
  in depth-first discovery order from the roots, *reversed*, so that
  later-discovered (deeper) unknowns come first.  This is the default used
  by the benchmarks.
* :func:`weak_topological_order` -- Bourdoncle's hierarchical weak
  topological ordering, flattened.  Components (loops) are nested; within
  a flattened WTO every loop body is contiguous and follows its head.

Both operate on an explicit dependency graph ``deps: x -> iterable of
unknowns read by f_x``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Sequence


def dfs_priority_order(
    roots: Sequence[Hashable],
    deps: Callable[[Hashable], Iterable[Hashable]],
) -> List[Hashable]:
    """Return unknowns in reversed depth-first discovery order.

    This mimics the keys SLR assigns (``key[y] = -count`` at discovery):
    the first root receives the largest priority, transitively reachable
    unknowns smaller ones.  Reversing puts the deepest unknowns first,
    which is where the structured solvers start iterating.
    """
    seen: set = set()
    discovery: List[Hashable] = []
    # Iterative DFS preserving the recursive discovery order.
    for root in roots:
        if root in seen:
            continue
        seen.add(root)
        discovery.append(root)
        stack: List[tuple] = [(root, iter(list(deps(root))))]
        while stack:
            _, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    discovery.append(child)
                    stack.append((child, iter(list(deps(child)))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
    return list(reversed(discovery))


def weak_topological_order(
    roots: Sequence[Hashable],
    deps: Callable[[Hashable], Iterable[Hashable]],
) -> List[Hashable]:
    """Return a flattened weak topological ordering (Bourdoncle 1993).

    The dependency graph is traversed in the *influence* direction (from an
    unknown to the unknowns it influences is the propagation direction; we
    receive ``deps`` and invert it).  The hierarchical order is computed by
    Bourdoncle's recursive-strongly-connected-components algorithm and then
    flattened; loop heads precede their bodies, nested components are
    contiguous.
    """
    # Collect the reachable universe and build successor lists in the
    # propagation direction: y -> x whenever y in deps(x).
    universe: List[Hashable] = []
    seen: set = set()
    stack = list(roots)
    while stack:
        x = stack.pop()
        if x in seen:
            continue
        seen.add(x)
        universe.append(x)
        stack.extend(deps(x))
    succ: Dict[Hashable, List[Hashable]] = {x: [] for x in universe}
    for x in universe:
        for y in deps(x):
            if y in succ:
                succ[y].append(x)

    # Bourdoncle's algorithm (iterative rendition of the recursive
    # partition construction based on Tarjan's SCC algorithm).
    dfn: Dict[Hashable, int] = {x: 0 for x in universe}
    num = 0
    partition: List[object] = []
    path: List[Hashable] = []

    def visit(vertex: Hashable, out: List[object]) -> int:
        nonlocal num
        path.append(vertex)
        num += 1
        head = num
        dfn[vertex] = num
        loop = False
        for w in succ[vertex]:
            if dfn[w] == 0:
                min_ = visit(w, out)
            else:
                min_ = dfn[w]
            if min_ <= head:
                head = min_
                loop = True
        if head == dfn[vertex]:
            dfn[vertex] = _INFTY
            element = path.pop()
            if loop:
                while element != vertex:
                    dfn[element] = 0
                    element = path.pop()
                out.insert(0, _component(vertex))
            else:
                out.insert(0, vertex)
        return head

    def _component(vertex: Hashable) -> list:
        comp: List[object] = []
        for w in succ[vertex]:
            if dfn[w] == 0:
                visit(w, comp)
        return [vertex, comp]

    # Traversal starts at the *sources* of the propagation graph (unknowns
    # without dependencies -- program entries and constants); any strongly
    # connected leftovers (dependency cycles without an entry) are visited
    # afterwards in universe order.
    starts = [x for x in universe if not list(deps(x))]
    starts += [x for x in universe if x not in set(starts)]

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(universe) + 1000))
    try:
        for start in starts:
            if dfn.get(start, _INFTY) == 0:
                part: List[object] = []
                visit(start, part)
                partition.extend(part)
    finally:
        sys.setrecursionlimit(old_limit)

    flat: List[Hashable] = []

    def flatten(items) -> None:
        for item in items:
            if isinstance(item, list):
                flatten(item)
            else:
                flat.append(item)

    flatten(partition)
    # Include any unreachable unknowns at the end, for robustness.
    flat_set = set(flat)
    flat.extend(x for x in universe if x not in flat_set)
    return flat


_INFTY = float("inf")
