"""Post-solution improvement by narrowing iteration (the paper's Fact 1).

    "Assume that all right-hand sides of the system S of equations over a
    lattice D are monotonic and that sigma_0 is a post solution of S, and
    narrow is a narrowing operator.  Then the sequence of mappings
    produced by a generic narrow-solver is defined and decreasing."

This module packages that observation as a utility: given *any* post
solution (e.g. produced by a widening-only pass, or supplied by an
oracle), run a generic solver instantiated with the narrowing operator to
improve it.  The result is still a post solution for monotone systems.

This is the classical second phase as a standalone tool; the paper's
contribution is precisely that the combined operator makes a separate
improvement pass unnecessary (and extends to non-monotonic systems where
this utility's precondition fails).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence, Union

from repro.eqs.system import DictSystem, FiniteSystem
from repro.solvers.combine import NarrowCombine
from repro.solvers.registry import resolve_solver
from repro.solvers.stats import SolverResult


def improve_post_solution(
    system: FiniteSystem,
    post_solution: Mapping,
    solve: Union[str, Callable] = "sw",
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
) -> SolverResult:
    """Improve ``post_solution`` by an accelerated descending iteration.

    :param system: a finite equation system with *monotone* right-hand
        sides (the caller's obligation -- Fact 1's precondition).
    :param post_solution: a mapping with ``post_solution[x] >=
        f_x(post_solution)`` for all unknowns.
    :param solve: any generic solver, as a callable or a registry name
        (default: structured worklist).
    :returns: a solver result whose mapping is point-wise below the input
        and still a post solution.
    """
    solve = resolve_solver(solve, scope="global", generic=True)
    seeded = DictSystem(
        system.lattice,
        {
            x: (system.rhs(x), list(system.deps(x)))
            for x in system.unknowns
        },
        init={x: post_solution[x] for x in system.unknowns},
    )
    return solve(
        seeded, NarrowCombine(system.lattice), order=order, max_evals=max_evals
    )
