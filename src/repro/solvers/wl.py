"""The generic worklist solver W (Fig. 2 of the paper).

Maintains a set of unknowns whose equations may be violated.  In contrast
to round-robin, W needs the static dependency sets ``deps(x)`` so that a
change of ``y`` can re-schedule the influenced set ``infl(y)``.  Note that
the paper's formulation re-schedules the updated unknown itself as well --
the precaution needed for update operators that are not right-idempotent,
such as the combined operator.

The paper's Example 2 shows that W with a LIFO discipline and the combined
operator may diverge on a finite monotonic system; SW (Fig. 4,
:mod:`repro.solvers.sw`) repairs this with a priority queue.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "wl",
    scope="global",
    memoizable=True,
    takes_order=True,
    aliases=("w", "worklist"),
    paper_ref="Fig. 2",
    summary="classic worklist iteration over static dependency sets",
)
def solve_wl(
    system: FiniteSystem,
    op: Combine,
    order: Optional[Sequence] = None,
    discipline: str = "lifo",
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
) -> SolverResult:
    """Solve ``system`` by worklist iteration with update operator ``op``.

    :param system: a finite equation system with static dependency sets.
    :param op: the binary update operator.
    :param order: initial worklist contents (default: declaration order).
    :param discipline: ``"lifo"`` (stack, the paper's Example 2 setting) or
        ``"fifo"`` (queue).
    :param max_evals: evaluation budget; exceeding it raises
        :class:`~repro.solvers.stats.DivergenceError`.
    :param observers: extra event-bus observers for this run.
    :param memoize: skip re-evaluations whose dependencies are unchanged.
    """
    if discipline not in ("lifo", "fifo"):
        raise ValueError(f"unknown worklist discipline {discipline!r}")
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    xs = list(order) if order is not None else list(system.unknowns)
    sigma = eng.seed_finite(system.unknowns)
    infl = system.infl()

    def get(y):
        return sigma[y]

    work = deque(xs)
    member = set(xs)
    eng.observe_queue(len(work))
    while work:
        x = work.pop() if discipline == "lifo" else work.popleft()
        member.discard(x)
        old = sigma[x]
        if eng.commit(x, op(x, old, eng.eval_rhs(x, get))):
            # Influenced unknowns are pushed so that under LIFO the updated
            # unknown itself is re-evaluated first (infl lists start with
            # the unknown itself, hence the reversal).  This matches the
            # discipline of the paper's Example 2.
            pushed = infl.get(x, [x])
            for z in reversed(pushed):
                if z not in member:
                    member.add(z)
                    work.append(z)
            eng.bus.emit_destabilize(x, pushed)
            eng.observe_queue(len(work))
    eng.finish(unknowns=len(sigma))
    return SolverResult(sigma, eng.stats)
