"""The classic two-phase widening/narrowing baseline (Cousot & Cousot).

Phase 1 runs an accelerated ascending iteration with ``op = widen`` until a
post solution is reached; phase 2 then tries to improve it by a descending
iteration with ``op = narrow``.  This is the approach the paper's combined
operator is measured against (Fig. 7).

Two well-known caveats, both of which the paper's Sections 1 and 3
emphasise, are surfaced by this implementation:

* the narrowing phase is only guaranteed to produce a (still sound)
  decreasing sequence when all right-hand sides are *monotonic*; for
  non-monotonic systems intermediate evaluations may grow again, in which
  case we clip against the phase-1 value (the standard engineering fix) --
  and record that the assumption was violated in the result statistics;
* precision lost in phase 1 may be unrecoverable no matter how long
  phase 2 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import NarrowCombine, WidenCombine
from repro.solvers.stats import Budget, SolverResult, SolverStats
from repro.solvers.sw import PriorityWorklist


@dataclass
class TwoPhaseResult(SolverResult):
    """Result of two-phase solving, with phase-specific accounting."""

    widen_evaluations: int = 0
    narrow_evaluations: int = 0
    #: Whether some narrowing-phase evaluation produced a value that was
    #: not below the current one (a monotonicity violation).
    monotonicity_violated: bool = False


def solve_twophase(
    system: FiniteSystem,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    narrow_rounds: Optional[int] = None,
) -> TwoPhaseResult:
    """Solve by a widening phase followed by a separate narrowing phase.

    Both phases use structured worklist iteration (so that the comparison
    against the combined operator in the benchmarks isolates the effect of
    the *operator*, not of the iteration strategy).

    :param system: a finite equation system.
    :param order: linear order for the priority queues.
    :param max_evals: total evaluation budget across both phases.
    :param narrow_rounds: optional bound on narrowing sweeps (descending
        iterations always stabilise for proper narrowing operators, but a
        bound is customary in production analyzers).
    """
    xs = list(order) if order is not None else list(system.unknowns)
    key = {x: i for i, x in enumerate(xs)}
    sigma = {x: system.init(x) for x in system.unknowns}
    infl = system.infl()
    stats = SolverStats(unknowns=len(sigma))
    budget = Budget(stats, max_evals)
    lat = system.lattice

    def get(y):
        return sigma[y]

    # ---------------- Phase 1: ascending iteration with widening. -------- #
    widen_op = WidenCombine(lat)
    queue = PriorityWorklist(key.__getitem__)
    for x in xs:
        queue.add(x)
    while queue:
        stats.observe_queue(len(queue))
        x = queue.extract_min()
        budget.charge(x, sigma)
        new = widen_op(x, sigma[x], system.rhs(x)(get))
        if not lat.equal(sigma[x], new):
            sigma[x] = new
            stats.count_update()
            queue.add(x)
            for z in infl.get(x, [x]):
                queue.add(z)
    widen_evals = stats.evaluations

    # ---------------- Phase 2: descending iteration with narrowing. ------ #
    narrow_op = NarrowCombine(lat)
    violated = False
    rounds = 0
    changed = True
    while changed and (narrow_rounds is None or rounds < narrow_rounds):
        changed = False
        rounds += 1
        for x in xs:
            budget.charge(x, sigma)
            contribution = system.rhs(x)(get)
            if not lat.leq(contribution, sigma[x]):
                violated = True
            new = narrow_op(x, sigma[x], contribution)
            if not lat.equal(sigma[x], new):
                sigma[x] = new
                stats.count_update()
                changed = True

    return TwoPhaseResult(
        sigma=sigma,
        stats=stats,
        widen_evaluations=widen_evals,
        narrow_evaluations=stats.evaluations - widen_evals,
        monotonicity_violated=violated,
    )
