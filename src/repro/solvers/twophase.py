"""The classic two-phase widening/narrowing baseline (Cousot & Cousot).

Phase 1 runs an accelerated ascending iteration with ``op = widen`` until a
post solution is reached; phase 2 then tries to improve it by a descending
iteration with ``op = narrow``.  This is the approach the paper's combined
operator is measured against (Fig. 7).

Two well-known caveats, both of which the paper's Sections 1 and 3
emphasise, are surfaced by this implementation:

* the narrowing phase is only guaranteed to produce a (still sound)
  decreasing sequence when all right-hand sides are *monotonic*; for
  non-monotonic systems intermediate evaluations may grow again, in which
  case we clip against the phase-1 value (the standard engineering fix) --
  and record that the assumption was violated in the result statistics;
* precision lost in phase 1 may be unrecoverable no matter how long
  phase 2 runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import NarrowCombine, WidenCombine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@dataclass
class TwoPhaseResult(SolverResult):
    """Result of two-phase solving, with phase-specific accounting."""

    widen_evaluations: int = 0
    narrow_evaluations: int = 0
    #: Whether some narrowing-phase evaluation produced a value that was
    #: not below the current one (a monotonicity violation).
    monotonicity_violated: bool = False


@register_solver(
    "twophase",
    scope="global",
    takes_op=False,
    generic=False,
    takes_order=True,
    aliases=("two-phase", "wn"),
    paper_ref="Fig. 7 baseline",
    summary="widening phase then narrowing phase (Cousot & Cousot)",
)
def solve_twophase(
    system: FiniteSystem,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    narrow_rounds: Optional[int] = None,
    *,
    observers=(),
) -> TwoPhaseResult:
    """Solve by a widening phase followed by a separate narrowing phase.

    Both phases use structured worklist iteration (so that the comparison
    against the combined operator in the benchmarks isolates the effect of
    the *operator*, not of the iteration strategy).

    :param system: a finite equation system.
    :param order: linear order for the priority queues.
    :param max_evals: total evaluation budget across both phases.
    :param narrow_rounds: optional bound on narrowing sweeps (descending
        iterations always stabilise for proper narrowing operators, but a
        bound is customary in production analyzers).
    """
    xs = list(order) if order is not None else list(system.unknowns)
    key = {x: i for i, x in enumerate(xs)}
    eng = SolverEngine(system, max_evals=max_evals, observers=observers)
    sigma = eng.seed_finite(system.unknowns)
    infl = system.infl()
    lat = eng.lattice

    def get(y):
        return sigma[y]

    # ---------------- Phase 1: ascending iteration with widening. -------- #
    widen_op = WidenCombine(lat)
    queue = eng.make_queue(key.__getitem__)
    for x in xs:
        queue.add(x)
    while queue:
        x = queue.extract_min()
        new = widen_op(x, sigma[x], eng.eval_rhs(x, get))
        if eng.commit(x, new):
            work = infl.get(x, [x])
            queue.add(x)
            for z in work:
                queue.add(z)
            eng.bus.emit_destabilize(x, work)
    widen_evals = eng.stats.evaluations

    # ---------------- Phase 2: descending iteration with narrowing. ------ #
    narrow_op = NarrowCombine(lat)
    violated = False
    rounds = 0
    changed = True
    while changed and (narrow_rounds is None or rounds < narrow_rounds):
        changed = False
        rounds += 1
        for x in xs:
            contribution = eng.eval_rhs(x, get)
            if not lat.leq(contribution, sigma[x]):
                violated = True
            if eng.commit(x, narrow_op(x, sigma[x], contribution)):
                changed = True

    stats = eng.finish(unknowns=len(sigma))
    return TwoPhaseResult(
        sigma=sigma,
        stats=stats,
        widen_evaluations=widen_evals,
        narrow_evaluations=stats.evaluations - widen_evals,
        monotonicity_violated=violated,
    )
