"""The structured worklist solver SW (Fig. 4 of the paper).

Like the classic worklist solver W, but the pending unknowns live in a
*priority queue* ordered by a fixed linear order on the unknowns, and every
round extracts the unknown with the least index.  On a change of ``x``,
``x`` itself and all influenced unknowns are (re-)inserted.

Theorem 2: for monotonic systems over a complete lattice, SW instantiated
with the combined operator terminates for every initial mapping; with
``op = join`` on lattices of ascending-chain height ``h`` it performs at
most ``h * N`` evaluations where ``N = sum_i (2 + |deps(x_i)|)``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.engine.worklist import PriorityWorklist  # noqa: F401  (re-export)
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "sw",
    scope="global",
    memoizable=True,
    takes_order=True,
    aliases=("structured-worklist",),
    paper_ref="Fig. 4",
    summary="structured (priority-queue) worklist; Theorem 2 guarantees",
)
def solve_sw(
    system: FiniteSystem,
    op: Combine,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
) -> SolverResult:
    """Solve ``system`` by structured (priority-queue) worklist iteration.

    :param system: a finite equation system with static dependency sets.
    :param op: the binary update operator.
    :param order: the linear order ``x_1 ... x_n`` defining priorities
        (default: declaration order).
    :param max_evals: evaluation budget guarding against divergence.
    :param observers: extra event-bus observers for this run.
    :param memoize: skip re-evaluations whose dependencies are unchanged.
    """
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    xs = list(order) if order is not None else list(system.unknowns)
    key = {x: i for i, x in enumerate(xs)}
    sigma = eng.seed_finite(system.unknowns)
    infl = system.infl()

    def get(y):
        return sigma[y]

    queue = eng.make_queue(key.__getitem__)
    for x in xs:
        queue.add(x)
    while queue:
        x = queue.extract_min()
        old = sigma[x]
        if eng.commit(x, op(x, old, eng.eval_rhs(x, get))):
            work = infl.get(x, [x])
            queue.add(x)
            for z in work:
                queue.add(z)
            eng.bus.emit_destabilize(x, work)
    eng.finish(unknowns=len(sigma))
    return SolverResult(sigma, eng.stats)
