"""The structured worklist solver SW (Fig. 4 of the paper).

Like the classic worklist solver W, but the pending unknowns live in a
*priority queue* ordered by a fixed linear order on the unknowns, and every
round extracts the unknown with the least index.  On a change of ``x``,
``x`` itself and all influenced unknowns are (re-)inserted.

Theorem 2: for monotonic systems over a complete lattice, SW instantiated
with the combined operator terminates for every initial mapping; with
``op = join`` on lattices of ascending-chain height ``h`` it performs at
most ``h * N`` evaluations where ``N = sum_i (2 + |deps(x_i)|)``.
"""

from __future__ import annotations

import heapq
from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import Combine
from repro.solvers.stats import Budget, SolverResult, SolverStats


class PriorityWorklist:
    """A priority queue of unknowns with set semantics (paper's ``add``).

    ``add`` inserts an element or leaves the queue unchanged if present;
    ``extract_min`` removes and returns the unknown with the least key.
    """

    def __init__(self, key_of) -> None:
        self._key_of = key_of
        self._heap: list = []
        self._present: set = set()

    def __len__(self) -> int:
        return len(self._present)

    def __bool__(self) -> bool:
        return bool(self._present)

    def add(self, x) -> None:
        """Insert ``x`` unless it is already enqueued."""
        if x not in self._present:
            self._present.add(x)
            heapq.heappush(self._heap, (self._key_of(x), len(self._heap), x))

    def extract_min(self):
        """Remove and return the unknown with the smallest key."""
        while self._heap:
            _, _, x = heapq.heappop(self._heap)
            if x in self._present:
                self._present.discard(x)
                return x
        raise IndexError("extract_min from an empty worklist")

    def min_key(self):
        """The smallest key currently enqueued."""
        while self._heap and self._heap[0][2] not in self._present:
            heapq.heappop(self._heap)
        if not self._heap:
            raise IndexError("min_key of an empty worklist")
        return self._heap[0][0]


def solve_sw(
    system: FiniteSystem,
    op: Combine,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
) -> SolverResult:
    """Solve ``system`` by structured (priority-queue) worklist iteration.

    :param system: a finite equation system with static dependency sets.
    :param op: the binary update operator.
    :param order: the linear order ``x_1 ... x_n`` defining priorities
        (default: declaration order).
    :param max_evals: evaluation budget guarding against divergence.
    """
    op.reset()
    xs = list(order) if order is not None else list(system.unknowns)
    key = {x: i for i, x in enumerate(xs)}
    sigma = {x: system.init(x) for x in system.unknowns}
    infl = system.infl()
    stats = SolverStats(unknowns=len(sigma))
    budget = Budget(stats, max_evals)
    lat = system.lattice

    def get(y):
        return sigma[y]

    queue = PriorityWorklist(key.__getitem__)
    for x in xs:
        queue.add(x)
    while queue:
        stats.observe_queue(len(queue))
        x = queue.extract_min()
        budget.charge(x, sigma)
        new = op(x, sigma[x], system.rhs(x)(get))
        if not lat.equal(sigma[x], new):
            sigma[x] = new
            stats.count_update()
            queue.add(x)
            for z in infl.get(x, [x]):
                queue.add(z)
    return SolverResult(sigma, stats)
