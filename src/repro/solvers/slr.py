"""The structured local recursive solver SLR (Fig. 6) -- the paper's main
algorithmic contribution.

SLR differs from RLD in exactly the ways needed to make it a *generic*
local solver with a termination guarantee:

* ``eval x y`` recursively solves ``y`` only when ``y`` is *fresh* (not yet
  in ``dom``), so one right-hand-side evaluation never changes the values
  of previously encountered unknowns -- evaluations are (conceptually)
  atomic;
* every unknown receives a priority ``key`` at initialisation, strictly
  smaller than all earlier keys (``key[y] = -count``), so the interesting
  unknown ``x0`` carries the largest key;
* destabilised unknowns are not re-solved immediately but collected in a
  global priority queue ``Q``; ``solve x`` drains ``Q`` of all unknowns
  with keys at most ``key[x]`` -- innermost (later-discovered) unknowns
  first;
* ``infl[x]`` always contains ``x`` itself, the precaution for
  non-right-idempotent operators such as the combined operator.

Theorem 3: SLR returns a partial ``op``-solution whenever it terminates,
and with the combined operator it terminates whenever the system is
monotonic and only finitely many unknowns are encountered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.eqs.system import PureSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.stats import Budget, SolverResult, SolverStats
from repro.solvers.sw import PriorityWorklist


@dataclass
class LocalResult(SolverResult):
    """Result of a local solve: the partial mapping over ``dom``.

    ``infl`` and ``keys`` are exposed for inspection and for the
    partial-solution invariants checked by the test-suite.
    """

    infl: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    keys: Dict[Hashable, int] = field(default_factory=dict)


def solve_slr(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
) -> LocalResult:
    """Run SLR for the interesting unknown ``x0``.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator (typically
        :class:`~repro.solvers.combine.WarrowCombine`).
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence (the
        guarantee of Theorem 3 only covers monotonic systems).
    :returns: a partial ``op``-solution whose domain contains ``x0`` and is
        closed under dynamic dependencies.
    """
    op.reset()
    lat = system.lattice
    sigma: dict = {}
    infl: Dict[Hashable, Set[Hashable]] = {}
    key: Dict[Hashable, int] = {}
    stable: set = set()
    dom: set = set()
    count = 0
    queue = PriorityWorklist(lambda x: key[x])
    stats = SolverStats()
    budget = Budget(stats, max_evals)

    def init(y) -> None:
        nonlocal count
        dom.add(y)
        key[y] = -count
        count += 1
        infl[y] = {y}
        sigma[y] = system.init(y)

    def solve(x) -> None:
        if x in stable:
            return
        stable.add(x)
        budget.charge(x, sigma)
        tmp = op(x, sigma[x], system.rhs(x)(make_eval(x)))
        if not lat.equal(tmp, sigma[x]):
            work = infl[x]
            for y in work:
                queue.add(y)
            sigma[x] = tmp
            stats.count_update()
            infl[x] = {x}
            stable.difference_update(work)
        while queue and queue.min_key() <= key[x]:
            stats.observe_queue(len(queue))
            solve(queue.extract_min())

    def make_eval(x):
        def eval_(y):
            if y not in dom:
                init(y)
                solve(y)
            infl[y].add(x)
            return sigma[y]

        return eval_

    def run() -> None:
        init(x0)
        solve(x0)

    call_with_deep_stack(run)
    stats.unknowns = len(dom)
    return LocalResult(sigma=sigma, stats=stats, infl=infl, keys=key)
