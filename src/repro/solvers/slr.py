"""The structured local recursive solver SLR (Fig. 6) -- the paper's main
algorithmic contribution.

SLR differs from RLD in exactly the ways needed to make it a *generic*
local solver with a termination guarantee:

* ``eval x y`` recursively solves ``y`` only when ``y`` is *fresh* (not yet
  in ``dom``), so one right-hand-side evaluation never changes the values
  of previously encountered unknowns -- evaluations are (conceptually)
  atomic;
* every unknown receives a priority ``key`` at initialisation, strictly
  smaller than all earlier keys (``key[y] = -count``), so the interesting
  unknown ``x0`` carries the largest key;
* destabilised unknowns are not re-solved immediately but collected in a
  global priority queue ``Q``; ``solve x`` drains ``Q`` of all unknowns
  with keys at most ``key[x]`` -- innermost (later-discovered) unknowns
  first;
* ``infl[x]`` always contains ``x`` itself, the precaution for
  non-right-idempotent operators such as the combined operator.

Theorem 3: SLR returns a partial ``op``-solution whenever it terminates,
and with the combined operator it terminates whenever the system is
monotonic and only finitely many unknowns are encountered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.eqs.system import PureSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@dataclass
class LocalResult(SolverResult):
    """Result of a local solve: the partial mapping over ``dom``.

    ``infl`` and ``keys`` are exposed for inspection and for the
    partial-solution invariants checked by the test-suite.
    """

    infl: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    keys: Dict[Hashable, int] = field(default_factory=dict)


@register_solver(
    "slr",
    scope="local",
    memoizable=True,
    aliases=("structured-local-recursive",),
    paper_ref="Fig. 6",
    summary="structured local recursive solving; Theorem 3 guarantees",
)
def solve_slr(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
) -> LocalResult:
    """Run SLR for the interesting unknown ``x0``.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator (typically
        :class:`~repro.solvers.combine.WarrowCombine`).
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence (the
        guarantee of Theorem 3 only covers monotonic systems).
    :param observers: extra event-bus observers for this run.
    :param memoize: skip re-evaluations whose dependencies are unchanged
        (sound for SLR because evaluations are atomic).
    :returns: a partial ``op``-solution whose domain contains ``x0`` and is
        closed under dynamic dependencies.
    """
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    sigma, keys = eng.sigma, eng.keys
    queue = eng.make_queue(lambda x: keys[x])

    def solve(x) -> None:
        if x in eng.stable:
            return
        eng.stable.add(x)
        old = sigma[x]
        tmp = op(x, old, eng.eval_rhs(x, eng.fresh_solving_eval(x, solve)))
        if eng.commit(x, tmp):
            eng.destabilize(x, queue)
        while queue and queue.min_key() <= keys[x]:
            solve(queue.extract_min())

    def run() -> None:
        eng.init_unknown(x0)
        solve(x0)

    call_with_deep_stack(run)
    eng.finish()
    return LocalResult(
        sigma=sigma, stats=eng.stats, infl=eng.infl, keys=keys
    )
