"""Deep-recursion execution support for the local solvers.

RLD, SLR and SLR+ are recursive by nature: ``solve`` re-enters itself
through ``eval`` callbacks inside user right-hand sides.  Python's default
interpreter stack cannot host tens of thousands of such frames -- raising
``sys.setrecursionlimit`` is not enough because right-hand sides routinely
pass through C frames (``max``, ``min``, comprehensions) which consume the
native stack.  The helper below therefore runs a solver body in a dedicated
thread with a large native stack.
"""

from __future__ import annotations

import sys
import threading
from typing import Callable, TypeVar

T = TypeVar("T")

#: Native stack size for solver threads (bytes).
_STACK_BYTES = 512 * 1024 * 1024

#: Python-level recursion limit inside solver threads.
_RECURSION_LIMIT = 1_000_000


def call_with_deep_stack(fn: Callable[[], T]) -> T:
    """Run ``fn`` on a thread with a large native stack and return its result.

    Exceptions raised by ``fn`` (including solver divergence guards)
    propagate to the caller unchanged.
    """
    outcome: dict = {}

    def runner() -> None:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcome["error"] = exc
        finally:
            sys.setrecursionlimit(old_limit)

    old_size = threading.stack_size()
    try:
        threading.stack_size(_STACK_BYTES)
        thread = threading.Thread(target=runner, name="repro-solver")
        thread.start()
    finally:
        threading.stack_size(old_size)
    thread.join()
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]
