"""Widening-point selection: accelerate only where cycles close.

Applying widening (or the combined operator) at *every* unknown loses
precision at harmless join points.  The classic optimisation (Bourdoncle)
accelerates only at a set ``W`` of unknowns that cuts every dependency
cycle -- loop heads, in CFG terms.  All other unknowns are combined with
plain join, which cannot diverge because every infinite ascending chain
must pass through an accelerated unknown.

The paper notes that its approach is "complementary to such techniques
and can, possibly, be combined with these"; this module is exactly that
combination: :class:`SelectiveCombine` applies the combined operator at
the widening points and join elsewhere.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Set

from repro.lattices.base import Lattice
from repro.solvers.combine import Combine, JoinCombine, WarrowCombine


def widening_points(
    roots: Iterable[Hashable],
    deps: Callable[[Hashable], Iterable[Hashable]],
) -> Set[Hashable]:
    """A set of unknowns cutting every dependency cycle.

    Computed as the back-edge targets of an iterative depth-first search
    over the *dependency* graph (edges ``x -> deps(x)``): an unknown that
    is looked up again while still on the DFS stack heads a cycle.  The
    result is a feedback-vertex heuristic, not a minimum set -- exactly
    the loop-head selection used in practice.
    """
    points: Set[Hashable] = set()
    visited: Set[Hashable] = set()
    on_stack: Set[Hashable] = set()

    for root in roots:
        if root in visited:
            continue
        # Iterative DFS with explicit enter/exit events.
        stack: List[tuple] = [("enter", root)]
        while stack:
            action, node = stack.pop()
            if action == "exit":
                on_stack.discard(node)
                continue
            if node in on_stack:
                continue
            if node in visited:
                continue
            visited.add(node)
            on_stack.add(node)
            stack.append(("exit", node))
            for dep in deps(node):
                if dep in on_stack:
                    points.add(dep)
                elif dep not in visited:
                    stack.append(("enter", dep))
    return points


class SelectiveCombine(Combine):
    """Accelerate at selected unknowns only; plain join elsewhere.

    For monotone systems whose every dependency cycle passes through a
    selected unknown, termination of the structured solvers is preserved:
    between two accelerated updates, the join-combined unknowns can only
    re-evaluate finitely often.
    """

    def __init__(
        self,
        lattice: Lattice,
        points: Set[Hashable],
        accelerated: Combine = None,
        otherwise: Combine = None,
    ) -> None:
        """Create the selective operator.

        :param points: the unknowns to accelerate (e.g. from
            :func:`widening_points`).
        :param accelerated: operator at the points (default: the combined
            operator).
        :param otherwise: operator elsewhere (default: join).
        """
        self.lattice = lattice
        self.points = set(points)
        self.accelerated = (
            accelerated if accelerated is not None else WarrowCombine(lattice)
        )
        self.otherwise = (
            otherwise if otherwise is not None else JoinCombine(lattice)
        )

    def reset(self) -> None:
        self.accelerated.reset()
        self.otherwise.reset()

    def _clone(self) -> "SelectiveCombine":
        return SelectiveCombine(
            self.lattice,
            self.points,
            accelerated=self.accelerated.fresh(),
            otherwise=self.otherwise.fresh(),
        )

    def children(self):
        return {"accelerated": self.accelerated, "otherwise": self.otherwise}

    def __call__(self, x, old, new):
        if x in self.points:
            return self.accelerated(x, old, new)
        return self.otherwise(x, old, new)


class SelectiveWarrowCombine(SelectiveCombine):
    """Combined operator at widening points, join-or-narrow elsewhere.

    Plain join at non-points would freeze over-approximations that flow in
    from a point before it narrows, so the non-accelerated branch also
    shrinks: values grow by join and shrink by narrowing.  Unrestricted,
    that combination re-creates the oscillations of the paper's
    Examples 1--2 *through the non-points* (a narrow at a non-point can
    re-trigger growth around the cycle forever) -- the empirical
    confirmation lives in the test-suite.  Worse, the joins at non-points
    can in turn drive unbounded narrow-to-widen switching at the
    *accelerated* points themselves -- the termination theorems of
    Section 4 hold only when the combined operator governs every unknown.
    We therefore apply the paper's Section 4 safeguard on both sides:
    after ``switch_bound`` narrow-to-grow switches per unknown, narrowing
    is given up, leaving only bounded join/widening growth.
    """

    def __init__(
        self,
        lattice: Lattice,
        points: Set[Hashable],
        delay: int = 0,
        switch_bound: int = 3,
    ) -> None:
        from repro.solvers.combine import (
            BoundedJoinNarrowCombine,
            BoundedWarrowCombine,
        )

        self.delay = delay
        self.switch_bound = switch_bound
        accelerated: Combine
        if delay:
            accelerated = WarrowCombine(lattice, delay=delay)
        else:
            accelerated = BoundedWarrowCombine(lattice, k=switch_bound)
        super().__init__(
            lattice,
            points,
            accelerated=accelerated,
            otherwise=BoundedJoinNarrowCombine(lattice, bound=switch_bound),
        )

    def _clone(self) -> "SelectiveWarrowCombine":
        return type(self)(
            self.lattice, self.points, self.delay, self.switch_bound
        )
