"""Restarting and localized structured solvers: SLR2, SLR3 and TDR.

The source paper's direct successor ("Efficiently intertwining widening
and narrowing", Amato, Scozzari, Seidl, Apinis, Vojdani) refines SLR in
two steps, both reproduced here on top of the shared engine:

* **SLR2** applies the combined operator only at *widening points* and
  plain override everywhere else, so narrowing is localized: a non-point
  tracks its right-hand side exactly and all acceleration (and all
  precision loss) concentrates where cycles actually close.  Widening
  points are detected *dynamically*, exactly as in Goblint's ``TD3``: an
  unknown looked up while its own right-hand side is still being
  evaluated heads a dependency cycle.  Side-effect targets that receive
  a changed re-contribution are marked too -- side effects close the
  interprocedural cycles the ``infl`` recursion cannot see.
* **SLR3** adds *restarting*: when the value at a widening point takes a
  downward reversal (the first shrink after growth), every unknown that
  transitively read the over-widened value was computed against garbage
  that plain narrowing can never repair -- finite-but-too-large bounds
  survive descending iteration.  SLR3 discards that dependent region
  (:meth:`~repro.solvers.engine.SolverEngine.restart_region`, which
  reuses the incremental layer's destabilization closure) and re-solves
  it against the narrowed value.  Each widening point restarts at most
  once per run, so the extra work is bounded by one re-solve of each
  region.
* **TDR** is the restarting variant of the top-down baseline: plain TD
  iteration plus the same dynamic widening-point detection and the same
  restart-on-reversal rule.  Like TD it is *not* generic in the paper's
  sense (evaluations are not atomic).

Termination: localized solving relies on every dependency cycle passing
through a detected widening point.  Three detections cooperate: in-flight
lookups (a cycle closed through the recursive descent), accesses against
the priority order (priority keys strictly decrease along demand edges,
so every cycle contains at least one read of an older unknown -- this is
the successor paper's argument, and it catches cycles whose closing edge
only materializes during a later re-evaluation), and changed side-effect
re-contributions (interprocedural cycles the ``infl`` recursion cannot
see).  The engine's evaluation-budget guard stays on as a safety net,
the same discipline Goblint applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Set

from repro.eqs.side import SideEffectingSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.slr_side import SideEffectError, SideResult
from repro.solvers.stats import SolverResult


@dataclass
class RestartResult(SideResult):
    """Result of an SLR2/SLR3 run.

    Extends :class:`~repro.solvers.slr_side.SideResult` with the
    dynamically detected widening points (``wpoints``) and, for SLR3,
    the points whose downward reversal triggered a region restart
    (``restarted``).  ``stats.restarts`` counts the restarts.
    """

    wpoints: Set[Hashable] = field(default_factory=set)
    restarted: Set[Hashable] = field(default_factory=set)


def _solve_localized(
    system: SideEffectingSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int],
    track_contributions: bool,
    protect: Optional[set],
    observers,
    *,
    restart: bool,
) -> RestartResult:
    """The shared SLR2/SLR3 loop; ``restart`` switches SLR3 behaviour on."""
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    lat = eng.lattice
    sigma, keys, dom, stable = eng.sigma, eng.keys, eng.dom, eng.stable
    infl = eng.infl
    contribs: dict = {}
    contributors: dict = {}
    accumulated: set = set(protect) if protect else set()
    #: Dynamically detected widening points -- the only unknowns combined
    #: through ``op``; everything else is plain override.
    wpoints: Set[Hashable] = set()
    #: Widening points already restarted this run (SLR3 restarts once).
    restarted: Set[Hashable] = set()
    #: Unknowns whose right-hand side is being evaluated right now; a
    #: lookup that hits this set closes a cycle at the looked-up unknown.
    #: Solver-local (a set, not the engine's in-flight *list*) so the
    #: membership test on the lookup hot path is O(1).
    evaluating: Set[Hashable] = set()
    # Expose the resumable bookkeeping for mid-run snapshots
    # (repro.incremental.state.capture_engine reads these) and for the
    # engine's restart primitive (which drops stale contributions).
    eng.aux.update(
        contribs=contribs,
        contributors=contributors,
        accumulated=accumulated,
        wpoints=wpoints,
    )
    queue = eng.make_queue(lambda x: keys[x])

    def init(y) -> None:
        eng.init_unknown(y)
        contributors.setdefault(y, set())

    def destabilize_and_queue(y) -> None:
        stable.discard(y)
        queue.add(y)

    def solve(x) -> None:
        if x in stable:
            return
        stable.add(x)
        side = make_side(x)
        rhs = system.rhs(x)
        evaluating.add(x)
        try:
            own = eng.eval_rhs(x, make_eval(x), lambda get: rhs(get, side))
        finally:
            evaluating.discard(x)
        total = own
        if track_contributions:
            for z in contributors.get(x, ()):
                total = lat.join(total, contribs[(z, x)])
        elif x in accumulated:
            total = lat.join(total, sigma[x])
        old = sigma[x]
        # The localization: ⌴ at widening points, plain override
        # elsewhere -- a non-point simply tracks its right-hand side.
        new = op(x, old, total) if x in wpoints else total
        # The direction *before* this commit: a downward reversal is a
        # shrink whose predecessor move grew (False = grew).
        grew_before = eng._direction.get(x) is False
        if eng.commit(x, new):
            if (
                restart
                and x in wpoints
                and x not in restarted
                and grew_before
                and lat.leq(new, old)
            ):
                restarted.add(x)
                eng.restart_region(x, queue)
            else:
                eng.destabilize(x, queue)
        while queue and queue.min_key() <= keys[x]:
            solve(queue.extract_min())

    def make_eval(x):
        def eval_(y):
            if y not in dom:
                init(y)
                solve(y)
            elif y in evaluating or keys[y] >= keys[x]:
                # ``y`` heads a dependency cycle: either its own
                # evaluation (transitively) looked itself up, or the
                # access runs against the priority order (``y`` was
                # initialized before ``x``, yet ``x`` reads it).  Keys
                # strictly decrease along demand edges, so every cycle
                # contains at least one against-order access -- marking
                # those is what guarantees each cycle a widening point
                # even when its closing edge only materializes during a
                # later re-evaluation (e.g. a call edge whose source
                # environment was still bottom on the first descent).
                wpoints.add(y)
            infl[y].add(x)
            return sigma[y]

        return eval_

    def _side_accumulate(x, y, d) -> None:
        """Classical side-effect handling: fold ``d`` into the target."""
        fresh = y not in dom
        if fresh:
            init(y)
        else:
            # An accumulated target only ever grows; without acceleration
            # a side-effect cycle through it would diverge.
            wpoints.add(y)
        accumulated.add(y)
        joined = lat.join(sigma[y], d)
        new = op(y, sigma[y], joined) if y in wpoints else joined
        if eng.commit(y, new):
            if fresh:
                solve(y)
            else:
                eng.destabilize(y, queue)

    def make_side(x):
        effected: set = set()

        def side(y, d) -> None:
            if y == x:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects itself"
                )
            if y in effected:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects {y!r} twice "
                    f"in one evaluation"
                )
            effected.add(y)
            if not track_contributions:
                _side_accumulate(x, y, d)
                return
            pair = (x, y)
            old = contribs.get(pair, lat.bottom)
            changed = not lat.equal(old, d)
            if changed:
                contribs[pair] = d
            if y not in dom:
                init(y)
                contributors[y] = {x}
                solve(y)
            else:
                contributors.setdefault(y, set()).add(x)
                if changed:
                    # A changed re-contribution closes a cycle through
                    # the side effect (the ``infl`` recursion cannot see
                    # it); accelerate the target from now on.
                    wpoints.add(y)
                    destabilize_and_queue(y)

        return side

    def run() -> None:
        init(x0)
        solve(x0)
        # Drain any work the final evaluation may have left behind (side
        # effects can enqueue unknowns while the top-level value is stable).
        while queue:
            solve(queue.extract_min())

    call_with_deep_stack(run)
    eng.finish()
    return RestartResult(
        sigma=sigma,
        stats=eng.stats,
        infl=infl,
        keys=keys,
        contribs=contribs,
        contributors=contributors,
        accumulated=accumulated,
        wpoints=wpoints,
        restarted=restarted,
    )


@register_solver(
    "slr2",
    scope="local",
    side_effecting=True,
    aliases=("slr-localized",),
    paper_ref="successor paper, SLR2",
    summary="SLR with ⌴ only at dynamic widening points; localized narrowing",
)
def solve_slr2(
    system: SideEffectingSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    track_contributions: bool = True,
    protect: Optional[set] = None,
    *,
    observers=(),
) -> RestartResult:
    """Run SLR2 for the interesting unknown ``x0``.

    The signature mirrors :func:`~repro.solvers.slr_side.solve_slr_side`
    (SLR2 subsumes SLR+'s side-effect handling), so it is a drop-in
    through the registry for every caller of ``slr+``.

    :returns: a partial post solution over the encountered unknowns: at
        quiescence a non-point satisfies ``sigma[x] = f_x(sigma)``
        exactly, a widening point ``sigma[x] ⊒ f_x(sigma)``.
    """
    return _solve_localized(
        system,
        op,
        x0,
        max_evals,
        track_contributions,
        protect,
        observers,
        restart=False,
    )


@register_solver(
    "slr3",
    scope="local",
    side_effecting=True,
    restarting=True,
    aliases=("slr-restart",),
    paper_ref="successor paper, SLR3",
    summary="SLR2 plus restarting of over-widened regions on reversal",
)
def solve_slr3(
    system: SideEffectingSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    track_contributions: bool = True,
    protect: Optional[set] = None,
    *,
    observers=(),
) -> RestartResult:
    """Run SLR3 (restarting SLR2) for the interesting unknown ``x0``.

    On the first downward reversal at each widening point the dependent
    region -- everything that transitively read the over-widened value,
    computed by the same influence closure the incremental layer uses
    for destabilization -- is reset to its initial values and re-solved
    against the narrowed value.  ``result.stats.restarts`` counts the
    fired restarts; ``result.restarted`` names the points.
    """
    return _solve_localized(
        system,
        op,
        x0,
        max_evals,
        track_contributions,
        protect,
        observers,
        restart=True,
    )


@register_solver(
    "tdr",
    scope="local",
    generic=False,
    restarting=True,
    aliases=("td-restart",),
    paper_ref="successor paper applied to [22]",
    summary="restarting top-down baseline; not generic",
)
def solve_tdr(
    system,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    *,
    observers=(),
) -> SolverResult:
    """Run the restarting top-down solver for the interesting unknown ``x0``.

    TD iteration (local iteration to stabilisation, recursive demand
    solving) with the restart rule of SLR3 grafted on: a downward
    reversal at a dynamically detected widening point discards and
    destabilizes the dependent region once per point and run.  Inherits
    TD's non-genericity -- evaluations are not atomic.
    """
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    lat = eng.lattice
    sigma, infl, stable = eng.sigma, eng.infl, eng.stable
    called: Set[Hashable] = set()
    wpoints: Set[Hashable] = set()
    restarted: Set[Hashable] = set()
    eng.aux.update(wpoints=wpoints)

    def destabilize(y) -> None:
        work = list(infl.get(y, ()))
        infl[y] = {}
        eng.bus.emit_destabilize(y, work)
        for z in work:
            if z in stable:
                stable.discard(z)
                destabilize(z)

    def make_eval(x):
        def eval_(y):
            if y in called:
                # ``y`` is on the call stack: the lookup closes a cycle.
                wpoints.add(y)
            else:
                solve(y)
            infl.setdefault(y, {})[x] = None
            return eng.value_of(y)

        return eval_

    def solve(x) -> None:
        if x in stable or x in called:
            return
        called.add(x)
        try:
            while True:
                eng.value_of(x)
                old = sigma[x]
                new = op(x, old, eng.eval_rhs(x, make_eval(x)))
                grew_before = eng._direction.get(x) is False
                if not eng.commit(x, new):
                    break
                if (
                    x in wpoints
                    and x not in restarted
                    and grew_before
                    and lat.leq(new, old)
                ):
                    restarted.add(x)
                    eng.restart_region(x)
                else:
                    destabilize(x)
        finally:
            called.discard(x)
        stable.add(x)

    call_with_deep_stack(lambda: solve(x0))
    rounds = 0
    while x0 not in stable and rounds < 100:
        call_with_deep_stack(lambda: solve(x0))
        rounds += 1
    eng.finish(unknowns=len(sigma))
    return SolverResult(sigma, eng.stats)
