"""The side-effecting local solver SLR+ (Section 6) -- the paper's flagship.

SLR+ extends SLR to systems whose right-hand sides may *contribute* values
to other unknowns via a ``side`` callback.  Conceptually each side effect of
the right-hand side of ``x`` onto ``z`` flows through a fresh unknown
``(x, z)`` that holds the latest contribution, and the right-hand side of
``z`` is extended with the join of all contributions
``join { sigma[(x, z)] | x in set[z] }``.  Combining the contributions
through the *combined* operator (rather than widening each contribution
individually into the global) is what keeps narrowing of globals sound --
Example 8 of the paper.

Theorem 4: SLR+ returns a partial post solution whenever it terminates, and
terminates for monotonic systems whenever only finitely many unknowns are
encountered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.eqs.side import SideEffectingSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.slr import LocalResult


class SideEffectError(Exception):
    """Raised when a right-hand side violates the side-effect discipline.

    The paper assumes each right-hand side ``f_x`` performs no side effect
    to ``x`` itself and at most one side effect per other unknown and
    evaluation; SLR+ checks both.
    """


@dataclass
class SideResult(LocalResult):
    """Result of an SLR+ run.

    ``contribs`` maps ``(x, z)`` pairs to the latest value the right-hand
    side of ``x`` contributed to ``z``; ``contributors`` is the final
    ``set`` map of the algorithm.
    """

    contribs: Dict[Tuple[Hashable, Hashable], object] = field(
        default_factory=dict
    )
    contributors: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    #: In classical (non-tracked) mode: the unknowns that received
    #: accumulated side effects.  Their values live only in ``sigma`` and
    #: must be protected across a subsequent narrowing pass.
    accumulated: Set[Hashable] = field(default_factory=set)


@register_solver(
    "slr+",
    scope="local",
    side_effecting=True,
    aliases=("slr-side", "slrside"),
    paper_ref="Section 6",
    summary="side-effecting SLR; drives the interprocedural analyses",
)
def solve_slr_side(
    system: SideEffectingSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    track_contributions: bool = True,
    protect: Optional[set] = None,
    *,
    observers=(),
) -> SideResult:
    """Run SLR+ for the interesting unknown ``x0``.

    :param system: a system of pure side-effecting equations.
    :param op: the binary update operator (typically
        :class:`~repro.solvers.combine.WarrowCombine`).
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence.
    :param track_contributions: when ``True`` (the paper's SLR+), each
        side effect flows through a per-origin unknown ``(x, z)`` and the
        right-hand side of ``z`` joins the *current* contributions -- which
        is what makes narrowing of side-effected unknowns sound
        (Example 8).  When ``False``, side effects are *accumulated*
        directly into the target (``sigma[z] <- sigma[z] op
        (sigma[z] join d)``), the classical treatment in which
        side-effected unknowns can never shrink again.  The classical mode
        exists as the baseline for the precision experiments.
    :param protect: unknowns to treat as already-accumulated from the
        start (their current value always joins their right-hand side).
        A narrowing pass over a classical phase-1 result must pass the
        phase-1 ``accumulated`` set here, otherwise side-effected unknowns
        would collapse before their contributors re-run.
    :returns: a partial ``op``-solution over the encountered unknowns,
        including all side-effect targets.
    """
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    lat = eng.lattice
    sigma, keys, dom, stable = eng.sigma, eng.keys, eng.dom, eng.stable
    contribs: Dict[Tuple[Hashable, Hashable], object] = {}
    contributors: Dict[Hashable, Set[Hashable]] = {}
    accumulated: set = set(protect) if protect else set()
    # Expose the side-effect bookkeeping for mid-run snapshots
    # (repro.incremental.state.capture_engine reads these).
    eng.aux.update(
        contribs=contribs, contributors=contributors, accumulated=accumulated
    )
    queue = eng.make_queue(lambda x: keys[x])

    def init(y) -> None:
        eng.init_unknown(y)
        contributors.setdefault(y, set())

    def destabilize_and_queue(y) -> None:
        stable.discard(y)
        queue.add(y)

    def solve(x) -> None:
        if x in stable:
            return
        stable.add(x)
        side = make_side(x)
        rhs = system.rhs(x)
        own = eng.eval_rhs(x, make_eval(x), lambda get: rhs(get, side))
        # Join the return value with all recorded side contributions to x.
        total = own
        if track_contributions:
            for z in contributors.get(x, ()):
                total = lat.join(total, contribs[(z, x)])
        elif x in accumulated:
            # Classical accumulation keeps past side effects in sigma[x]
            # itself, so they must survive the combine with the own value.
            total = lat.join(total, sigma[x])
        if eng.commit(x, op(x, sigma[x], total)):
            eng.destabilize(x, queue)
        while queue and queue.min_key() <= keys[x]:
            solve(queue.extract_min())

    def make_eval(x):
        return eng.fresh_solving_eval(x, solve)

    def _side_accumulate(x, y, d) -> None:
        """Classical side-effect handling: fold ``d`` into the target."""
        fresh = y not in dom
        if fresh:
            init(y)
        accumulated.add(y)
        new = op(y, sigma[y], lat.join(sigma[y], d))
        if eng.commit(y, new):
            if fresh:
                solve(y)
            else:
                eng.destabilize(y, queue)

    def make_side(x):
        effected: set = set()

        def side(y, d) -> None:
            if y == x:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects itself"
                )
            if y in effected:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects {y!r} twice "
                    f"in one evaluation"
                )
            effected.add(y)
            if not track_contributions:
                _side_accumulate(x, y, d)
                return
            pair = (x, y)
            old = contribs.get(pair, lat.bottom)
            changed = not lat.equal(old, d)
            if changed:
                contribs[pair] = d
            if y not in dom:
                init(y)
                contributors[y] = {x}
                solve(y)
            else:
                # ``y`` may have been discovered through ``eval`` (which
                # does not touch the contributor map), so default here.
                contributors.setdefault(y, set()).add(x)
                if changed:
                    destabilize_and_queue(y)

        return side

    def run() -> None:
        init(x0)
        solve(x0)
        # Drain any work the final evaluation may have left behind (side
        # effects can enqueue unknowns while the top-level value is stable).
        while queue:
            solve(queue.extract_min())

    call_with_deep_stack(run)
    eng.finish()
    return SideResult(
        sigma=sigma,
        stats=eng.stats,
        infl=eng.infl,
        keys=keys,
        contribs=contribs,
        contributors=contributors,
        accumulated=accumulated,
    )
