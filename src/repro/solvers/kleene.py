"""Naive Kleene iteration: simultaneous (Jacobi-style) fixpoint computation.

Included as the textbook baseline.  All right-hand sides are evaluated
against the *previous* mapping and the whole mapping is replaced at once.
For monotone systems over finite-height lattices this converges to the
least solution; on domains with infinite ascending chains it need not
terminate -- precisely the problem widening solves.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.stats import Budget, SolverResult, SolverStats


def solve_kleene(
    system: FiniteSystem,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
) -> SolverResult:
    """Iterate ``sigma_{k+1}[x] = f_x(sigma_k)`` until a fixpoint is reached.

    :param system: a finite equation system.
    :param order: evaluation order (cosmetic for Jacobi iteration).
    :param max_evals: evaluation budget guarding against divergence.
    """
    xs = list(order) if order is not None else list(system.unknowns)
    sigma = {x: system.init(x) for x in xs}
    stats = SolverStats(unknowns=len(xs))
    budget = Budget(stats, max_evals)
    lat = system.lattice

    changed = True
    while changed:
        changed = False
        snapshot = dict(sigma)

        def get(y):
            return snapshot[y]

        for x in xs:
            budget.charge(x, sigma)
            new = system.rhs(x)(get)
            if not lat.equal(sigma[x], new):
                sigma[x] = new
                stats.count_update()
                changed = True
    return SolverResult(sigma, stats)
