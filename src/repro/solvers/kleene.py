"""Naive Kleene iteration: simultaneous (Jacobi-style) fixpoint computation.

Included as the textbook baseline.  All right-hand sides are evaluated
against the *previous* mapping and the whole mapping is replaced at once.
For monotone systems over finite-height lattices this converges to the
least solution; on domains with infinite ascending chains it need not
terminate -- precisely the problem widening solves.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "kleene",
    scope="global",
    takes_op=False,
    generic=False,
    takes_order=True,
    aliases=("jacobi",),
    paper_ref="textbook",
    summary="naive simultaneous (Jacobi) fixpoint iteration baseline",
)
def solve_kleene(
    system: FiniteSystem,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    *,
    observers=(),
) -> SolverResult:
    """Iterate ``sigma_{k+1}[x] = f_x(sigma_k)`` until a fixpoint is reached.

    :param system: a finite equation system.
    :param order: evaluation order (cosmetic for Jacobi iteration).
    :param max_evals: evaluation budget guarding against divergence.
    :param observers: extra event-bus observers for this run.
    """
    eng = SolverEngine(system, max_evals=max_evals, observers=observers)
    xs = list(order) if order is not None else list(system.unknowns)
    sigma = eng.seed_finite(xs)

    changed = True
    while changed:
        changed = False
        snapshot = dict(sigma)

        def get(y):
            return snapshot[y]

        for x in xs:
            if eng.commit(x, eng.eval_rhs(x, get)):
                changed = True
    eng.finish(unknowns=len(xs))
    return SolverResult(sigma, eng.stats)
