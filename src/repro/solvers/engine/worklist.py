"""Priority worklists: the paper's ``Q`` with set semantics.

:class:`PriorityWorklist` is the queue shared by SW, SLR, SLR+ and the
two-phase baseline (historically it lived in :mod:`repro.solvers.sw`,
which still re-exports it).  :class:`ObservedWorklist` is the
engine-aware variant that reports its high-water mark through the event
bus: it emits ``on_queue`` whenever the queue *grows*, which observes the
true maximum -- the seed solvers sampled the size at extraction points
instead, so additions that were drained by an inner loop (SLR) or left
pending at loop exit were never seen.
"""

from __future__ import annotations

import heapq


class PriorityWorklist:
    """A priority queue of unknowns with set semantics (paper's ``add``).

    ``add`` inserts an element or leaves the queue unchanged if present;
    ``extract_min`` removes and returns the unknown with the least key.
    """

    def __init__(self, key_of) -> None:
        self._key_of = key_of
        self._heap: list = []
        self._present: set = set()

    def __len__(self) -> int:
        return len(self._present)

    def __bool__(self) -> bool:
        return bool(self._present)

    def add(self, x) -> None:
        """Insert ``x`` unless it is already enqueued."""
        if x not in self._present:
            self._present.add(x)
            heapq.heappush(self._heap, (self._key_of(x), len(self._heap), x))

    def extract_min(self):
        """Remove and return the unknown with the smallest key."""
        while self._heap:
            _, _, x = heapq.heappop(self._heap)
            if x in self._present:
                self._present.discard(x)
                return x
        raise IndexError("extract_min from an empty worklist")

    def min_key(self):
        """The smallest key currently enqueued."""
        while self._heap and self._heap[0][2] not in self._present:
            heapq.heappop(self._heap)
        if not self._heap:
            raise IndexError("min_key of an empty worklist")
        return self._heap[0][0]


class ObservedWorklist(PriorityWorklist):
    """A :class:`PriorityWorklist` that reports growth on the event bus."""

    def __init__(self, key_of, bus) -> None:
        super().__init__(key_of)
        self._bus = bus

    def add(self, x) -> None:
        before = len(self._present)
        super().add(x)
        size = len(self._present)
        if size != before:
            self._bus.emit_queue(size)
