"""Right-hand-side memoization keyed on dependency-value fingerprints.

A right-hand side is a pure function of the values it looks up, so its
result can only change when one of those values changes.  The engine
assigns every unknown a monotonically increasing *version* (bumped on
each committed update); one cache entry per unknown stores the versions
of all unknowns the previous evaluation read, together with the value it
produced.  A lookup hits exactly when every recorded version is still
current -- i.e. when no dependency changed since the last evaluation.

Versions rather than values are the fingerprint on purpose: they need no
hashing or equality on (arbitrarily large) lattice values, and recording
them *at read time* is what keeps the cache sound for local solvers,
where a nested ``solve`` may update a dependency after it was read.

On a hit the solver still applies its update operator to the cached
right-hand-side value -- only the (expensive) evaluation is skipped -- so
the sequence of operator applications, and therefore the final mapping,
is bit-identical to an unmemoized run.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

#: Sentinel distinguishing "no cached value" from a cached ``None`` (which
#: is a legitimate lattice value, e.g. the interval lattice's bottom).
MISS = object()


class MemoCache:
    """One solver run's RHS cache: ``x -> (read fingerprint, value)``."""

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[Hashable, Tuple[Tuple, object]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, x: Hashable, versions: Mapping[Hashable, int]):
        """The cached value of ``f_x``, or :data:`MISS`.

        A hit requires every unknown read by the previous evaluation to
        still be at the version it was read at.
        """
        entry = self._entries.get(x)
        if entry is None:
            self.misses += 1
            return MISS
        reads, value = entry
        for y, version in reads:
            if versions.get(y, 0) != version:
                self.misses += 1
                return MISS
        self.hits += 1
        return value

    def store(
        self, x: Hashable, reads: Mapping[Hashable, int], value
    ) -> None:
        """Record that evaluating ``f_x`` read ``reads`` and returned
        ``value``."""
        self._entries[x] = (tuple(reads.items()), value)
