"""The shared solver-engine core: state, events, worklists, memoization.

See :mod:`repro.solvers.engine.core` for the architecture overview and
``docs/engine.md`` for the user-facing tour.
"""

from repro.solvers.engine.core import SolverEngine
from repro.solvers.engine.events import (
    DivergenceMonitor,
    EventBus,
    RecordingObserver,
    SolverObserver,
    StatsObserver,
    TimingObserver,
)
from repro.solvers.engine.memo import MISS, MemoCache
from repro.solvers.engine.worklist import ObservedWorklist, PriorityWorklist

__all__ = [
    "SolverEngine",
    "EventBus",
    "SolverObserver",
    "StatsObserver",
    "RecordingObserver",
    "TimingObserver",
    "DivergenceMonitor",
    "MemoCache",
    "MISS",
    "PriorityWorklist",
    "ObservedWorklist",
]
