"""Event-hook instrumentation for the solver engine.

Every solver in this package drives its iteration through a
:class:`~repro.solvers.engine.core.SolverEngine`, and the engine reports
what it does through an :class:`EventBus`.  Observers subscribe to the
hooks ``on_start``, ``on_eval``, ``on_update``, ``on_destabilize``,
``on_restart``, ``on_queue`` and ``on_done`` (plus ``on_memo`` for the
memoization cache) -- so tracing, timing, per-phase counters, watchdogs and
divergence diagnostics are pluggable instead of being hard-coded into
every solver loop.

:class:`StatsObserver` is the observer that reproduces the classic
:class:`~repro.solvers.stats.SolverStats` counters; it is installed by
the engine automatically, which is why every ``solve_*`` function still
returns the exact statistics it always did.
"""

from __future__ import annotations

import time
from typing import Hashable, Iterable, List, Optional, Tuple

from repro.solvers.stats import SolverStats


class SolverObserver:
    """Base class for event-bus observers; every hook is a no-op.

    Subclass and override the hooks of interest.  Hooks must not mutate
    solver state: they observe one solver run.
    """

    def on_start(self, engine) -> None:
        """The engine was constructed; ``engine`` is the live instance.

        This is the only hook that hands out the engine itself, so that
        stateful observers (watchdogs, checkpointers, salvage probes) can
        read solver state later without the solver threading it through.
        """

    def on_eval(self, x: Hashable) -> None:
        """One budgeted evaluation of the right-hand side of ``x``."""

    def on_update(self, x: Hashable, old, new) -> None:
        """The value of ``x`` changed from ``old`` to ``new``."""

    def on_destabilize(self, x: Hashable, work: Iterable[Hashable]) -> None:
        """A change of ``x`` destabilised the unknowns in ``work``."""

    def on_restart(self, x: Hashable, region: Iterable[Hashable]) -> None:
        """A downward reversal at widening point ``x`` restarted ``region``.

        The restarting solvers (SLR3, TDR) discard the over-widened
        values of every unknown in ``region`` and destabilise them; the
        region is the dependent influence closure of ``x``, computed the
        same way as the incremental layer's destabilisation closures.
        """

    def on_queue(self, size: int) -> None:
        """The pending queue/worklist grew to ``size`` elements."""

    def on_memo(self, x: Hashable, hit: bool) -> None:
        """The memoization cache was consulted for ``x``."""

    def on_done(self, engine) -> None:
        """The solver run finished; ``engine`` carries the final state."""


class EventBus:
    """Fan-out of engine events to subscribed observers, in order.

    Dispatch is *filtered*: for each hook the bus precomputes the list of
    observers that actually override it, so an observer that ignores an
    event costs nothing on that event's path.  This is what keeps
    supervision-style observers (probes, watchdogs, checkpointers) close
    to free per evaluation -- the hot loop only ever calls methods that
    do real work.
    """

    _HOOKS = (
        "on_start",
        "on_eval",
        "on_update",
        "on_destabilize",
        "on_restart",
        "on_queue",
        "on_memo",
        "on_done",
    )

    __slots__ = ("observers", "_listeners")

    def __init__(self, observers: Iterable[SolverObserver] = ()) -> None:
        self.observers: List[SolverObserver] = list(observers)
        self._rebuild()

    def _rebuild(self) -> None:
        self._listeners = {
            hook: [
                getattr(obs, hook)
                for obs in self.observers
                if getattr(type(obs), hook) is not getattr(SolverObserver, hook)
            ]
            for hook in self._HOOKS
        }

    def subscribe(self, observer: SolverObserver) -> SolverObserver:
        """Attach ``observer``; returns it for chaining."""
        self.observers.append(observer)
        self._rebuild()
        return observer

    # The emit methods are spelled out (rather than dispatched by name)
    # to keep the per-evaluation hot path free of string lookups.

    def emit_start(self, engine) -> None:
        for hook in self._listeners["on_start"]:
            hook(engine)

    def emit_eval(self, x) -> None:
        for hook in self._listeners["on_eval"]:
            hook(x)

    def emit_update(self, x, old, new) -> None:
        for hook in self._listeners["on_update"]:
            hook(x, old, new)

    def emit_destabilize(self, x, work) -> None:
        for hook in self._listeners["on_destabilize"]:
            hook(x, work)

    def emit_restart(self, x, region) -> None:
        for hook in self._listeners["on_restart"]:
            hook(x, region)

    def emit_queue(self, size: int) -> None:
        for hook in self._listeners["on_queue"]:
            hook(size)

    def emit_memo(self, x, hit: bool) -> None:
        for hook in self._listeners["on_memo"]:
            hook(x, hit)

    def emit_done(self, engine) -> None:
        for hook in self._listeners["on_done"]:
            hook(engine)


class StatsObserver(SolverObserver):
    """Accumulates the classic :class:`SolverStats` counters from events."""

    def __init__(self, stats: Optional[SolverStats] = None) -> None:
        self.stats = stats if stats is not None else SolverStats()

    def on_eval(self, x) -> None:
        self.stats.count_eval(x)

    def on_update(self, x, old, new) -> None:
        self.stats.count_update()

    def on_restart(self, x, region) -> None:
        self.stats.restarts += 1

    def on_queue(self, size: int) -> None:
        self.stats.observe_queue(size)

    def on_memo(self, x, hit: bool) -> None:
        if hit:
            self.stats.memo_hits += 1
        else:
            self.stats.memo_misses += 1


class RecordingObserver(SolverObserver):
    """Records the ordered stream of events -- the tracing observer.

    Each event is a plain tuple whose first element is the kind
    (``"eval"``, ``"update"``, ``"destabilize"``, ``"queue"``, ``"memo"``,
    ``"done"``); destabilised work sets are recorded sorted by ``repr`` so
    traces are deterministic regardless of set iteration order.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        """Record only the event ``kinds`` given (default: all)."""
        self.events: List[Tuple] = []
        self._kinds = frozenset(kinds) if kinds is not None else None

    def _wants(self, kind: str) -> bool:
        return self._kinds is None or kind in self._kinds

    def on_eval(self, x) -> None:
        if self._wants("eval"):
            self.events.append(("eval", x))

    def on_update(self, x, old, new) -> None:
        if self._wants("update"):
            self.events.append(("update", x, old, new))

    def on_destabilize(self, x, work) -> None:
        if self._wants("destabilize"):
            self.events.append(
                ("destabilize", x, tuple(sorted(work, key=repr)))
            )

    def on_restart(self, x, region) -> None:
        if self._wants("restart"):
            self.events.append(
                ("restart", x, tuple(sorted(region, key=repr)))
            )

    def on_queue(self, size: int) -> None:
        if self._wants("queue"):
            self.events.append(("queue", size))

    def on_memo(self, x, hit: bool) -> None:
        if self._wants("memo"):
            self.events.append(("memo", x, hit))

    def on_done(self, engine) -> None:
        if self._wants("done"):
            self.events.append(("done",))


class TimingObserver(SolverObserver):
    """Wall-clock timing of one solver run (first event to ``on_done``)."""

    def __init__(self) -> None:
        self.started: Optional[float] = None
        self.seconds: float = 0.0

    def on_eval(self, x) -> None:
        if self.started is None:
            self.started = time.perf_counter()

    def on_done(self, engine) -> None:
        if self.started is not None:
            self.seconds = time.perf_counter() - self.started


class DivergenceMonitor(SolverObserver):
    """Divergence diagnostics: which unknowns churn the most?

    Where the evaluation budget merely *detects* divergence, this observer
    localises it: the per-unknown update counts name the oscillating
    unknowns (the tables of the paper's Examples 1-2 are exactly such
    hotspot listings).
    """

    def __init__(self) -> None:
        self.update_counts: dict = {}

    def on_update(self, x, old, new) -> None:
        self.update_counts[x] = self.update_counts.get(x, 0) + 1

    def hotspots(self, top: int = 5) -> List[Tuple[Hashable, int]]:
        """The ``top`` most-updated unknowns, most churn first."""
        ranked = sorted(
            self.update_counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        return ranked[:top]
