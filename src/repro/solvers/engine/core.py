"""The shared solver-engine core.

Every solver of the paper's zoo (RR, W, SRR, SW, RLD, SLR, SLR+, plus the
baselines) performs the same bookkeeping around its characteristic
iteration strategy: a mapping ``sigma``, the encountered domain, priority
keys, influence sets, a stability set, an evaluation budget, and
instrumentation counters.  :class:`SolverEngine` owns all of that state;
the ``solve_*`` functions are thin strategies that decide *in which
order* the engine's primitives are invoked.

The primitives are deliberately fine-grained so that each strategy keeps
its exact paper semantics:

* :meth:`charge` / :meth:`eval_rhs` -- one budgeted (and optionally
  memoized) right-hand-side evaluation, reported as ``on_eval``;
* :meth:`commit` -- store a combined value if it changed, bump the
  unknown's version, reported as ``on_update``;
* :meth:`init_unknown` + the eval factories -- the shared local-solver
  initialisation and lookup closures (previously copy-pasted across
  ``slr``/``slr_side``/``rld``/``td``);
* :meth:`destabilize` / :meth:`destabilize_ordered` -- the two influence
  disciplines (SLR's set-with-self vs RLD/TD's insertion-ordered),
  reported as ``on_destabilize``;
* :meth:`make_queue` -- a priority worklist that reports its high-water
  mark as ``on_queue``.

Instrumentation is pluggable: pass :class:`SolverObserver` instances via
``observers`` and they receive every event next to the always-installed
:class:`StatsObserver` (which is what keeps the classic ``SolverStats``
counters flowing).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional

from repro.solvers.combine import Combine
from repro.solvers.engine.events import EventBus, SolverObserver, StatsObserver
from repro.solvers.engine.memo import MISS, MemoCache
from repro.solvers.engine.worklist import ObservedWorklist
from repro.solvers.stats import DivergenceError, SolverStats


class SolverEngine:
    """State, budget, instrumentation and caching for one solver run."""

    def __init__(
        self,
        system,
        op: Optional[Combine] = None,
        *,
        max_evals: Optional[int] = None,
        observers: Iterable[SolverObserver] = (),
        memoize: bool = False,
    ) -> None:
        """Prepare a run of ``system`` under update operator ``op``.

        :param system: a pure or side-effecting equation system.
        :param op: the binary update operator; ``None`` for drivers that
            apply operators themselves (Kleene, two-phase).
        :param max_evals: evaluation budget; exceeding it raises
            :class:`~repro.solvers.stats.DivergenceError`.
        :param observers: extra event-bus observers for this run.
        :param memoize: enable the RHS memoization cache.
        """
        self.system = system
        # A *fresh* operator instance per run: stateful operators handed
        # to several engines (e.g. by the service's thread pool) must
        # never share their per-unknown maps.  Solvers therefore read
        # the operator back from ``engine.op`` instead of closing over
        # the argument.
        self.op = op.fresh() if op is not None else None
        self.lattice = system.lattice
        #: The mapping under construction.
        self.sigma: dict = {}
        #: Encountered domain of a local solve (unused by global solvers).
        self.dom: set = set()
        #: Influence sets; SLR-style values are sets, RLD/TD-style values
        #: are insertion-ordered dicts.
        self.infl: dict = {}
        #: Priority keys of a local solve (later-discovered = smaller).
        self.keys: dict = {}
        #: Unknowns currently considered stable.
        self.stable: set = set()
        #: Per-unknown update versions (the memoization fingerprint).
        self.versions: dict = {}
        #: Strategy-private resumable state (e.g. SLR+ contribution maps),
        #: registered by solvers so mid-run snapshots can capture it.
        self.aux: dict = {}
        self._counter = 0
        self._inflight: list = []
        #: Last committed direction per unknown (True = shrink); feeds the
        #: cheap widen/narrow counters on :class:`SolverStats`.
        self._direction: dict = {}
        stats_observer = StatsObserver()
        #: The classic counters, accumulated by the built-in observer.
        self.stats: SolverStats = stats_observer.stats
        # The stats observer must run first so the budget check below
        # always sees an up-to-date evaluation count.
        self.bus = EventBus([stats_observer, *observers])
        self.max_evals = max_evals
        self.memo: Optional[MemoCache] = MemoCache() if memoize else None
        if self.op is not None:
            self.op.reset()
            if self.op.spec is not None:
                self.stats.strategy = str(self.op.spec)
        self.bus.emit_start(self)

    # ----------------------------------------------------------------- #
    # State initialisation.                                             #
    # ----------------------------------------------------------------- #

    def seed_finite(self, unknowns: Iterable[Hashable]) -> dict:
        """Initialise ``sigma`` over a statically known unknown set."""
        for x in unknowns:
            self.sigma[x] = self.system.init(x)
        self.stats.unknowns = len(self.sigma)
        return self.sigma

    def init_unknown(self, y: Hashable) -> None:
        """First encounter of ``y`` in a structured local solve.

        Registers ``y`` in the domain with a priority key strictly smaller
        than all earlier keys, a self-containing influence set (the
        non-idempotence precaution) and its initial value.
        """
        self.dom.add(y)
        self.keys[y] = -self._counter
        self._counter += 1
        self.infl[y] = {y}
        self.sigma[y] = self.system.init(y)

    def value_of(self, y: Hashable):
        """Current value of ``y``, lazily initialised (RLD/TD discipline)."""
        if y not in self.sigma:
            self.sigma[y] = self.system.init(y)
        return self.sigma[y]

    # ----------------------------------------------------------------- #
    # Budgeted evaluation.                                              #
    # ----------------------------------------------------------------- #

    @property
    def inflight(self) -> tuple:
        """Unknowns whose right-hand sides are being evaluated right now.

        Innermost last.  A mid-run snapshot must not consider these
        stable: their current evaluation has not committed yet.
        """
        return tuple(self._inflight)

    def charge(self, x: Hashable) -> None:
        """Count one evaluation of ``x``; raise on budget exhaustion."""
        self.bus.emit_eval(x)
        if self.max_evals is not None and self.stats.evaluations > self.max_evals:
            raise DivergenceError(
                f"exceeded {self.max_evals} right-hand-side evaluations "
                f"(likely divergence)",
                dict(self.sigma),
                self.stats,
                unknown=x,
            )

    def eval_rhs(self, x: Hashable, get, rhs=None):
        """One budgeted evaluation of ``f_x`` against the ``get`` callback.

        With memoization enabled, the evaluation is skipped when no
        unknown read by the previous evaluation of ``x`` has changed
        version since; cache consultations are reported as ``on_memo``
        events.  A skipped evaluation is *not* charged against the
        budget (it performs no work).
        """
        if rhs is None:
            rhs = self.system.rhs(x)
        memo = self.memo
        if memo is None:
            # In-flight before charging: observers of ``on_eval`` (e.g. a
            # mid-run checkpointer) must already see ``x`` as uncommitted.
            self._inflight.append(x)
            try:
                self.charge(x)
                return rhs(get)
            finally:
                self._inflight.pop()
        cached = memo.lookup(x, self.versions)
        if cached is not MISS:
            self.bus.emit_memo(x, True)
            return cached
        self.bus.emit_memo(x, False)
        reads: dict = {}
        versions = self.versions

        def traced_get(y):
            value = get(y)
            # Record the version *after* the lookup: for local solvers the
            # lookup itself may solve (and update) ``y``.
            reads[y] = versions.get(y, 0)
            return value

        self._inflight.append(x)
        try:
            self.charge(x)
            value = rhs(traced_get)
        finally:
            self._inflight.pop()
        memo.store(x, reads, value)
        return value

    # ----------------------------------------------------------------- #
    # Updates and destabilisation.                                      #
    # ----------------------------------------------------------------- #

    def commit(self, x: Hashable, new) -> bool:
        """Store ``new`` for ``x`` if it differs; report the change.

        Besides the ``on_update`` event, the commit classifies the move's
        direction (one ``leq`` per *changed* value, which is rare next to
        evaluations): shrinks count as narrowing steps, everything else
        as widening steps, and per-unknown reversals accumulate into
        ``stats.direction_switches`` -- the cheap always-on counters the
        batch/bench layer reports per job.

        :returns: whether the value changed.
        """
        old = self.sigma[x]
        if self.lattice.equal(old, new):
            return False
        self.sigma[x] = new
        self.versions[x] = self.versions.get(x, 0) + 1
        shrank = self.lattice.leq(new, old)
        stats = self.stats
        if shrank:
            stats.narrow_updates += 1
        else:
            stats.widen_updates += 1
        previous = self._direction.get(x)
        if previous is not None and previous is not shrank:
            stats.direction_switches += 1
        self._direction[x] = shrank
        self.bus.emit_update(x, old, new)
        return True

    def destabilize(self, x: Hashable, queue) -> None:
        """SLR-style destabilisation after a change of ``x``.

        Enqueues every influenced unknown (including ``x`` itself), resets
        ``infl[x]`` to the self-set, and drops the stability of the
        influenced unknowns.
        """
        work = self.infl[x]
        for y in work:
            queue.add(y)
        self.infl[x] = {x}
        self.stable.difference_update(work)
        self.bus.emit_destabilize(x, work)

    def destabilize_ordered(self, x: Hashable) -> list:
        """RLD-style destabilisation: reset ordered ``infl[x]``.

        :returns: the destabilised unknowns in dependency-recording order
            (the caller re-solves them).
        """
        work = list(self.infl.get(x, ()))
        self.infl[x] = {}
        self.stable.difference_update(work)
        self.bus.emit_destabilize(x, work)
        return work

    def restart_region(self, x: Hashable, queue=None) -> set:
        """Restarting-solver primitive: discard the region over-widened by ``x``.

        On a downward reversal at a widening point ``x``, every unknown
        that (transitively) read ``x`` was computed against the larger,
        over-widened value and may hold a finite-but-too-large bound that
        plain narrowing can never improve.  This primitive computes the
        dependent region -- the transitive closure of ``x`` under the
        recorded ``infl`` edges plus any SLR+ contribution edges
        registered in ``aux``, i.e. exactly the incremental layer's
        destabilisation closure
        (:func:`repro.incremental.warmstart.influence_closure`) -- and

        * resets every member except ``x`` itself to its initial value
          (``x`` keeps the freshly narrowed value that triggered the
          restart),
        * bumps the reset members' versions so memoized readers re-read,
        * clears their direction history (it described discarded values),
        * drops stale contributions whose origin lies in the region
          (their reset targets re-join them from scratch; ``x``'s own
          contributions are current -- they were recorded by the
          evaluation that produced the reversal -- and are kept),
        * drops stability and, when ``queue`` is given, enqueues the
          region.

        Soundness mirrors ``reset='destabilized'`` warm starts: the
        transitive closure guarantees every reader of a reset unknown is
        itself reset, so no retained value was computed from a discarded
        one.

        :returns: the restarted region (including ``x``).
        """
        # Deferred import: repro.incremental imports the solver package,
        # so the engine must not import it at module level.
        from repro.incremental.warmstart import influence_closure

        contribs = self.aux.get("contribs")
        region = influence_closure(
            {x}, self.infl, contribs if contribs is not None else ()
        )
        for y in region:
            if y != x:
                self.sigma[y] = self.system.init(y)
                self.versions[y] = self.versions.get(y, 0) + 1
                self._direction.pop(y, None)
            if queue is not None:
                queue.add(y)
        if contribs is not None:
            contributors = self.aux.get("contributors", {})
            for pair in [p for p in contribs if p[0] in region and p[0] != x]:
                del contribs[pair]
                contributors.get(pair[1], set()).discard(pair[0])
        self.stable.difference_update(region)
        self.bus.emit_restart(x, region)
        return region

    # ----------------------------------------------------------------- #
    # Shared local-solver lookup closures.                              #
    # ----------------------------------------------------------------- #

    def fresh_solving_eval(self, x: Hashable, solve):
        """SLR/SLR+ ``eval x``: recursively solve only *fresh* unknowns.

        Previously encountered unknowns are read as-is, which is what
        makes one right-hand-side evaluation atomic (Theorem 3's
        prerequisite).
        """

        def eval_(y):
            if y not in self.dom:
                self.init_unknown(y)
                solve(y)
            self.infl[y].add(x)
            return self.sigma[y]

        return eval_

    def demand_solving_eval(self, x: Hashable, solve):
        """RLD/TD ``eval x``: recursively solve *every* looked-up unknown.

        Dependencies are recorded in insertion-ordered dicts so that
        destabilised unknowns are re-solved deterministically.
        """

        def eval_(y):
            solve(y)
            self.infl.setdefault(y, {})[x] = None
            return self.value_of(y)

        return eval_

    # ----------------------------------------------------------------- #
    # Queues and completion.                                            #
    # ----------------------------------------------------------------- #

    def make_queue(self, key_of) -> ObservedWorklist:
        """A priority worklist whose growth is reported as ``on_queue``."""
        return ObservedWorklist(key_of, self.bus)

    def observe_queue(self, size: int) -> None:
        """Report the size of a solver-managed (non-priority) worklist."""
        self.bus.emit_queue(size)

    def finish(self, unknowns: Optional[int] = None) -> SolverStats:
        """Finalise the run: fix the unknown count, emit ``on_done``."""
        if unknowns is not None:
            self.stats.unknowns = unknowns
        elif self.dom:
            self.stats.unknowns = len(self.dom)
        else:
            self.stats.unknowns = len(self.sigma)
        self.bus.emit_done(self)
        return self.stats
