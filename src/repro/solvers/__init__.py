"""Generic fixpoint solvers parameterised by a binary update operator.

This package is the reproduction of the paper's algorithmic core.  Every
solver is a thin strategy over the shared
:class:`~repro.solvers.engine.SolverEngine` and registers itself in the
solver registry, so it can be selected by name via
:func:`~repro.solvers.registry.get_solver`:

==========  ========  =================================  ====================
Registry    Solver    Paper reference                    Function
==========  ========  =================================  ====================
``rr``      RR        Fig. 1, round robin                :func:`solve_rr`
``wl``      W         Fig. 2, worklist                   :func:`solve_wl`
``srr``     SRR       Fig. 3, structured round robin     :func:`solve_srr`
``sw``      SW        Fig. 4, structured worklist        :func:`solve_sw`
``rld``     RLD       Fig. 5, Hofmann et al. local       :func:`solve_rld`
``slr``     SLR       Fig. 6, structured local rec.      :func:`solve_slr`
``slr+``    SLR+      Section 6, side-effecting SLR      :func:`solve_slr_side`
``slr2``    SLR2      successor paper, localized ⌴       :func:`solve_slr2`
``slr3``    SLR3      successor paper, restarting        :func:`solve_slr3`
``td``      TD        [22], top-down baseline            :func:`solve_td`
``tdr``     TDR       restarting top-down variant        :func:`solve_tdr`
``rr-local``  --      Section 5 local round-robin        :func:`solve_rr_local`
``twophase``  --      two-phase widen/narrow baseline    :func:`solve_twophase`
``kleene``    --      naive Kleene iteration baseline    :func:`solve_kleene`
==========  ========  =================================  ====================

Every generic solver takes a :class:`~repro.solvers.combine.Combine`
operator; the paper's combined widening/narrowing operator is
:class:`~repro.solvers.combine.WarrowCombine`.  Instrumentation is
pluggable through the engine's event bus (``observers=...``), and the
atomically-evaluating solvers accept ``memoize=True`` to skip
re-evaluations whose dependencies are unchanged.
"""

from repro.solvers.combine import (
    BoundedJoinNarrowCombine,
    BoundedNarrowCombine,
    BoundedWarrowCombine,
    Combine,
    JoinCombine,
    MeetCombine,
    NarrowCombine,
    OverrideCombine,
    WarrowCombine,
    WidenCombine,
    warrow,
)
from repro.solvers.engine import (
    DivergenceMonitor,
    EventBus,
    MemoCache,
    ObservedWorklist,
    RecordingObserver,
    SolverEngine,
    SolverObserver,
    StatsObserver,
    TimingObserver,
)
from repro.solvers.improve import improve_post_solution
from repro.solvers.kleene import solve_kleene
from repro.solvers.ordering import dfs_priority_order, weak_topological_order
from repro.solvers.registry import (
    SolverCapabilityError,
    SolverSpec,
    UnknownSolverError,
    all_specs,
    get_solver,
    register_solver,
    resolve_solver,
    solver_names,
)
from repro.solvers.rld import solve_rld
from repro.solvers.rr import solve_rr
from repro.solvers.rr_local import solve_rr_local
from repro.solvers.slr import LocalResult, solve_slr
from repro.solvers.slr_restart import (
    RestartResult,
    solve_slr2,
    solve_slr3,
    solve_tdr,
)
from repro.solvers.slr_side import SideEffectError, SideResult, solve_slr_side
from repro.solvers.srr import solve_srr
from repro.solvers.stats import (
    Budget,
    DivergenceError,
    SolverResult,
    SolverStats,
)
from repro.solvers.sw import PriorityWorklist, solve_sw
from repro.solvers.td import solve_td
from repro.solvers.twophase import TwoPhaseResult, solve_twophase
from repro.solvers.wl import solve_wl
from repro.solvers.wpoints import (
    SelectiveCombine,
    SelectiveWarrowCombine,
    widening_points,
)

__all__ = [
    "BoundedJoinNarrowCombine",
    "BoundedNarrowCombine",
    "BoundedWarrowCombine",
    "Combine",
    "JoinCombine",
    "MeetCombine",
    "NarrowCombine",
    "OverrideCombine",
    "WarrowCombine",
    "WidenCombine",
    "warrow",
    "DivergenceMonitor",
    "EventBus",
    "MemoCache",
    "ObservedWorklist",
    "RecordingObserver",
    "SolverEngine",
    "SolverObserver",
    "StatsObserver",
    "TimingObserver",
    "SolverCapabilityError",
    "SolverSpec",
    "UnknownSolverError",
    "all_specs",
    "get_solver",
    "register_solver",
    "resolve_solver",
    "solver_names",
    "improve_post_solution",
    "solve_kleene",
    "dfs_priority_order",
    "weak_topological_order",
    "solve_rld",
    "solve_rr",
    "solve_rr_local",
    "LocalResult",
    "solve_slr",
    "SideEffectError",
    "SideResult",
    "solve_slr_side",
    "RestartResult",
    "solve_slr2",
    "solve_slr3",
    "solve_tdr",
    "solve_srr",
    "Budget",
    "DivergenceError",
    "SolverResult",
    "SolverStats",
    "PriorityWorklist",
    "solve_sw",
    "solve_td",
    "TwoPhaseResult",
    "solve_twophase",
    "solve_wl",
    "SelectiveCombine",
    "SelectiveWarrowCombine",
    "widening_points",
]
