"""The naive local solver sketched at the start of the paper's Section 5.

    "one such instance can be derived from the round-robin algorithm.
    For that, the evaluation of right-hand sides is instrumented in such
    a way that it keeps track of the set of accessed unknowns.  Each
    round then operates on a growing set of unknowns.  In the first
    round, just x0 alone is considered.  In any subsequent round all
    unknowns are added whose values have been newly accessed during the
    last iteration."

This solver exists as the simplest possible *generic local* solver: a
correctness baseline for SLR (which visits unknowns in a far better
order), and a demonstration that locality and genericity are orthogonal
to the structured-iteration ideas of Section 4.  Like plain round-robin,
it may diverge under the combined operator even for monotonic systems --
the guarantees of Theorem 3 belong to SLR alone.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.eqs.system import PureSystem
from repro.eqs.tracked import TracingGet
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "rr-local",
    scope="local",
    aliases=("local-round-robin",),
    paper_ref="Section 5 (sketch)",
    summary="round-robin sweeps over a growing unknown set; may diverge",
)
def solve_rr_local(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    *,
    observers=(),
) -> SolverResult:
    """Local solving by round-robin sweeps over a growing unknown set.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator.
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence.
    :param observers: extra event-bus observers for this run.
    :returns: a partial ``op``-solution whose domain contains ``x0`` and
        is closed under the dynamically discovered dependencies.
    """
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    sigma = eng.sigma
    sigma[x0] = system.init(x0)
    worklist = [x0]  # insertion-ordered domain

    dirty = True
    while dirty:
        dirty = False
        discovered: list = []
        for x in worklist:
            tracer = TracingGet(eng.value_of)
            old = sigma[x]
            value = eng.eval_rhs(x, tracer)
            if eng.commit(x, op(x, old, value)):
                dirty = True
            for y in tracer.accessed:
                if y not in sigma:
                    sigma[y] = system.init(y)
                if y not in set(worklist) | set(discovered):
                    discovered.append(y)
                    dirty = True
        worklist.extend(discovered)
    eng.finish(unknowns=len(worklist))
    return SolverResult({x: sigma[x] for x in worklist}, eng.stats)
