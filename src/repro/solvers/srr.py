"""The structured round-robin solver SRR (Fig. 3 of the paper).

``solve i`` recursively solves the unknowns ``x_1 ... x_{i-1}`` before
every update of ``x_i`` and restarts itself whenever ``x_i`` changes.
Theorem 1: for monotonic systems, SRR instantiated with the combined
operator terminates for every initial mapping -- and on lattices of bounded
height ``h`` it needs at most ``n + h/2 * n * (n + 1)`` evaluations.

The implementation below is an exact iterative rendition of the recursion
(the recursive ``solve i`` performs the same evaluation sequence as
"restart the sweep from x_1 after every change"), which keeps Python's
recursion limit out of the picture for large systems.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "srr",
    scope="global",
    memoizable=True,
    takes_order=True,
    aliases=("structured-round-robin",),
    paper_ref="Fig. 3",
    summary="structured round robin; terminating with warrow (Theorem 1)",
)
def solve_srr(
    system: FiniteSystem,
    op: Combine,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
) -> SolverResult:
    """Solve ``system`` by structured round-robin iteration.

    :param system: a finite equation system.
    :param op: the binary update operator.
    :param order: the linear order ``x_1 ... x_n`` (default: declaration
        order).  The order affects efficiency, not correctness; inner-loop
        unknowns should receive small indices (cf. Bourdoncle).
    :param max_evals: evaluation budget guarding against divergence.
    :param observers: extra event-bus observers for this run.
    :param memoize: skip re-evaluations whose dependencies are unchanged.
    """
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    xs = list(order) if order is not None else list(system.unknowns)
    sigma = eng.seed_finite(xs)

    def get(y):
        return sigma[y]

    # Invariant at position i (0-based): all x_j with j < i satisfy their
    # equation.  A change at position i invalidates nothing below it, but
    # the recursive formulation nevertheless re-solves 1..i-1 before the
    # next update of x_i; restarting the climb from position 0 performs
    # exactly that evaluation sequence.
    i = 0
    while i < len(xs):
        x = xs[i]
        old = sigma[x]
        if eng.commit(x, op(x, old, eng.eval_rhs(x, get))):
            i = 0
        else:
            i += 1
    eng.finish(unknowns=len(xs))
    return SolverResult(sigma, eng.stats)
