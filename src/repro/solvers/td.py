"""The top-down solver TD (Le Charlier & Van Hentenryck 1992).

The classical demand-driven solver the paper's related work builds on
(cited as [22]; Fecht & Seidl's faster solver [12] and RLD descend from
it).  TD solves an unknown by *iterating it locally to stabilisation*:
``solve x`` repeatedly evaluates ``f_x``, recursively solving every
unknown the evaluation looks up, until the value of ``x`` stops changing.
A set of "called" unknowns breaks recursive cycles: a lookup of an unknown
already on the call stack returns its current value, and dependency
book-keeping re-schedules the caller when such an unknown changes later.

Like RLD -- and unlike SLR -- evaluations are not atomic (nested solving
may update values mid-evaluation), so TD with a non-idempotent operator
such as the combined operator is *not* a generic solver in the paper's
sense; it is provided as the historical baseline, and the test-suite
demonstrates both its strengths (exactness for join on monotone systems)
and this weakness.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.eqs.system import PureSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.stats import Budget, SolverResult, SolverStats


def solve_td(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
) -> SolverResult:
    """Run the top-down solver for the interesting unknown ``x0``.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator.
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence.
    :returns: the mapping over all encountered unknowns.
    """
    op.reset()
    lat = system.lattice
    sigma: dict = {}
    #: Unknowns whose local iteration is currently running (call stack).
    called: Set[Hashable] = set()
    #: Unknowns whose value is known stable (invalidated on change).
    stable: Set[Hashable] = set()
    #: y -> unknowns whose evaluation looked up y.
    infl: Dict[Hashable, dict] = {}
    stats = SolverStats()
    budget = Budget(stats, max_evals)

    def value_of(y):
        if y not in sigma:
            sigma[y] = system.init(y)
        return sigma[y]

    def destabilize(y) -> None:
        work = list(infl.get(y, ()))
        infl[y] = {}
        for z in work:
            if z in stable:
                stable.discard(z)
                destabilize(z)

    def solve(x) -> None:
        if x in stable or x in called:
            return
        called.add(x)
        try:
            while True:
                value_of(x)
                budget.charge(x, sigma)
                new = op(x, sigma[x], system.rhs(x)(make_eval(x)))
                if lat.equal(new, sigma[x]):
                    break
                sigma[x] = new
                stats.count_update()
                destabilize(x)
        finally:
            called.discard(x)
        stable.add(x)

    def make_eval(x):
        def eval_(y):
            solve(y)
            infl.setdefault(y, {})[x] = None
            return value_of(y)

        return eval_

    call_with_deep_stack(lambda: solve(x0))
    # Unknowns destabilised after the top-level iteration finished would
    # be re-solved on the next query; drain them now so the returned
    # mapping is as stable as TD can make it.
    rounds = 0
    while x0 not in stable and rounds < 100:
        call_with_deep_stack(lambda: solve(x0))
        rounds += 1
    stats.unknowns = len(sigma)
    return SolverResult(sigma, stats)
