"""The top-down solver TD (Le Charlier & Van Hentenryck 1992).

The classical demand-driven solver the paper's related work builds on
(cited as [22]; Fecht & Seidl's faster solver [12] and RLD descend from
it).  TD solves an unknown by *iterating it locally to stabilisation*:
``solve x`` repeatedly evaluates ``f_x``, recursively solving every
unknown the evaluation looks up, until the value of ``x`` stops changing.
A set of "called" unknowns breaks recursive cycles: a lookup of an unknown
already on the call stack returns its current value, and dependency
book-keeping re-schedules the caller when such an unknown changes later.

Like RLD -- and unlike SLR -- evaluations are not atomic (nested solving
may update values mid-evaluation), so TD with a non-idempotent operator
such as the combined operator is *not* a generic solver in the paper's
sense; it is provided as the historical baseline, and the test-suite
demonstrates both its strengths (exactness for join on monotone systems)
and this weakness.
"""

from __future__ import annotations

from typing import Hashable, Optional, Set

from repro.eqs.system import PureSystem
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "td",
    scope="local",
    generic=False,
    aliases=("top-down",),
    paper_ref="[22], related work",
    summary="Le Charlier & Van Hentenryck top-down baseline; not generic",
)
def solve_td(
    system: PureSystem,
    op: Combine,
    x0: Hashable,
    max_evals: Optional[int] = None,
    *,
    observers=(),
) -> SolverResult:
    """Run the top-down solver for the interesting unknown ``x0``.

    :param system: a system of pure equations (possibly infinite).
    :param op: the binary update operator.
    :param x0: the unknown whose value is queried.
    :param max_evals: evaluation budget guarding against divergence.
    :param observers: extra event-bus observers for this run.
    :returns: the mapping over all encountered unknowns.
    """
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    sigma, infl, stable = eng.sigma, eng.infl, eng.stable
    #: Unknowns whose local iteration is currently running (call stack).
    called: Set[Hashable] = set()

    def destabilize(y) -> None:
        work = list(infl.get(y, ()))
        infl[y] = {}
        eng.bus.emit_destabilize(y, work)
        for z in work:
            if z in stable:
                stable.discard(z)
                destabilize(z)

    def solve(x) -> None:
        if x in stable or x in called:
            return
        called.add(x)
        try:
            while True:
                eng.value_of(x)
                old = sigma[x]
                new = op(
                    x, old, eng.eval_rhs(x, eng.demand_solving_eval(x, solve))
                )
                if not eng.commit(x, new):
                    break
                destabilize(x)
        finally:
            called.discard(x)
        stable.add(x)

    call_with_deep_stack(lambda: solve(x0))
    # Unknowns destabilised after the top-level iteration finished would
    # be re-solved on the next query; drain them now so the returned
    # mapping is as stable as TD can make it.
    rounds = 0
    while x0 not in stable and rounds < 100:
        call_with_deep_stack(lambda: solve(x0))
        rounds += 1
    eng.finish(unknowns=len(sigma))
    return SolverResult(sigma, eng.stats)
