"""The generic round-robin solver RR (Fig. 1 of the paper).

Repeatedly sweeps over all unknowns in order, combining the old value with
the freshly evaluated right-hand side, until one full sweep changes
nothing.  RR treats right-hand sides as black boxes and is a *generic*
solver: upon termination the result is an ``op``-solution for any binary
update operator ``op``.

The paper's Example 1 shows that RR instantiated with the combined operator
may diverge even for finite monotonic systems; pass ``max_evals`` to bound
the run and observe the divergence as a :class:`DivergenceError`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import Combine
from repro.solvers.stats import Budget, SolverResult, SolverStats


def solve_rr(
    system: FiniteSystem,
    op: Combine,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
) -> SolverResult:
    """Solve ``system`` by round-robin iteration with update operator ``op``.

    :param system: a finite equation system.
    :param op: the binary update operator (e.g. :class:`WarrowCombine`).
    :param order: sweep order of the unknowns (default: declaration order).
    :param max_evals: evaluation budget; exceeding it raises
        :class:`~repro.solvers.stats.DivergenceError`.
    :returns: the final mapping together with solver statistics.
    """
    op.reset()
    xs = list(order) if order is not None else list(system.unknowns)
    sigma = {x: system.init(x) for x in xs}
    stats = SolverStats(unknowns=len(xs))
    budget = Budget(stats, max_evals)
    lat = system.lattice

    def get(y):
        return sigma[y]

    dirty = True
    while dirty:
        dirty = False
        for x in xs:
            budget.charge(x, sigma)
            new = op(x, sigma[x], system.rhs(x)(get))
            if not lat.equal(sigma[x], new):
                sigma[x] = new
                stats.count_update()
                dirty = True
    return SolverResult(sigma, stats)
