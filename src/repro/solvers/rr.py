"""The generic round-robin solver RR (Fig. 1 of the paper).

Repeatedly sweeps over all unknowns in order, combining the old value with
the freshly evaluated right-hand side, until one full sweep changes
nothing.  RR treats right-hand sides as black boxes and is a *generic*
solver: upon termination the result is an ``op``-solution for any binary
update operator ``op``.

The paper's Example 1 shows that RR instantiated with the combined operator
may diverge even for finite monotonic systems; pass ``max_evals`` to bound
the run and observe the divergence as a :class:`DivergenceError`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.eqs.system import FiniteSystem
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.registry import register_solver
from repro.solvers.stats import SolverResult


@register_solver(
    "rr",
    scope="global",
    memoizable=True,
    takes_order=True,
    aliases=("round-robin",),
    paper_ref="Fig. 1",
    summary="round-robin sweeps until a full sweep changes nothing",
)
def solve_rr(
    system: FiniteSystem,
    op: Combine,
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
) -> SolverResult:
    """Solve ``system`` by round-robin iteration with update operator ``op``.

    :param system: a finite equation system.
    :param op: the binary update operator (e.g. :class:`WarrowCombine`).
    :param order: sweep order of the unknowns (default: declaration order).
    :param max_evals: evaluation budget; exceeding it raises
        :class:`~repro.solvers.stats.DivergenceError`.
    :param observers: extra event-bus observers for this run.
    :param memoize: skip re-evaluations whose dependencies are unchanged.
    :returns: the final mapping together with solver statistics.
    """
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    xs = list(order) if order is not None else list(system.unknowns)
    sigma = eng.seed_finite(xs)

    def get(y):
        return sigma[y]

    dirty = True
    while dirty:
        dirty = False
        for x in xs:
            old = sigma[x]
            if eng.commit(x, op(x, old, eng.eval_rhs(x, get))):
                dirty = True
    eng.finish(unknowns=len(xs))
    return SolverResult(sigma, eng.stats)
