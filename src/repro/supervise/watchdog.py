"""Watchdog observers: runtime termination enforcement for solver runs.

The paper's termination theorems hold under assumptions (monotonicity,
finitely many encountered unknowns) that real non-monotonic workloads can
violate, and Examples 1-2 prove that even finite monotonic systems defeat
naive iteration under the combined operator.  Watchdogs are the runtime
answer: they ride on the engine's event bus and abort a run that shows
the symptoms of divergence -- too much wall-clock time, too many
evaluations, or an unknown whose value keeps flip-flopping between
growing and shrinking under ⌴.

Every trip raises a :class:`WatchdogError` (a structured
:class:`~repro.solvers.stats.DivergenceError`) carrying the partial
``sigma``, the statistics, and the offending unknown, so the supervision
layer can *salvage* the accumulated work, escalate the oscillating
unknowns to pure widening, and resume -- instead of discarding everything.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.solvers.engine.events import SolverObserver
from repro.solvers.stats import DivergenceError


class WatchdogError(DivergenceError):
    """A supervision watchdog aborted the run.

    Like its base, carries ``sigma``/``stats``/``unknown``; the concrete
    subclass names the tripped watchdog.
    """


class DeadlineExceeded(WatchdogError):
    """The run exceeded its wall-clock deadline."""


class BudgetExceeded(WatchdogError):
    """The run exceeded the watchdog's evaluation budget."""


class OscillationDetected(WatchdogError):
    """An unknown flip-flopped between widening and narrowing too often."""


class EngineProbe(SolverObserver):
    """Keeps a reference to the live engine of the current run.

    The cheapest possible observer: it reacts to no events.  The
    supervisor installs one so that after *any* exception -- a watchdog
    trip, an injected fault, a crashing user right-hand side -- the
    engine's ``sigma``/``infl``/``stable`` can be inspected, salvaged,
    and checked for consistency.
    """

    def __init__(self) -> None:
        self.engine = None

    def on_start(self, engine) -> None:
        self.engine = engine


class Watchdog(SolverObserver):
    """Base class: binds the engine at start so trips carry partial state."""

    def __init__(self) -> None:
        self.engine = None

    def on_start(self, engine) -> None:
        self.engine = engine

    def trip(
        self, exc: type, message: str, unknown: Optional[Hashable] = None
    ) -> None:
        """Raise ``exc`` with the partial state of the bound engine."""
        eng = self.engine
        sigma = dict(eng.sigma) if eng is not None else {}
        stats = eng.stats if eng is not None else None
        raise exc(message, sigma, stats, unknown=unknown)


class DeadlineWatchdog(Watchdog):
    """Aborts the run once a wall-clock deadline passes.

    The clock is read only every ``check_every`` evaluations: the check
    must not cost measurable time on the no-fault hot path, and a
    deadline is meaningful at a much coarser granularity than single
    evaluations anyway.
    """

    def __init__(self, seconds: float, check_every: int = 16) -> None:
        super().__init__()
        if seconds <= 0:
            raise ValueError("deadline must be positive")
        if check_every < 1:
            raise ValueError("check_every must be at least 1")
        self.seconds = seconds
        self.check_every = check_every
        self.deadline: Optional[float] = None
        self._ticks = 0

    def on_start(self, engine) -> None:
        super().on_start(engine)
        self.deadline = time.monotonic() + self.seconds

    def on_eval(self, x) -> None:
        self._ticks += 1
        if self._ticks % self.check_every:
            return
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.trip(
                DeadlineExceeded,
                f"exceeded the {self.seconds:g}s wall-clock deadline",
                unknown=x,
            )


class BudgetWatchdog(Watchdog):
    """Aborts the run after ``max_evals`` right-hand-side evaluations.

    The engine's own ``max_evals`` budget performs the same check; this
    watchdog exists so the supervisor can enforce a budget on solvers
    invoked without one, and so the trip is distinguishable (a
    :class:`BudgetExceeded`) from a caller-requested budget.
    """

    def __init__(self, max_evals: int) -> None:
        super().__init__()
        if max_evals < 1:
            raise ValueError("max_evals must be at least 1")
        self.max_evals = max_evals
        self._evals = 0

    def on_eval(self, x) -> None:
        self._evals += 1
        if self._evals > self.max_evals:
            self.trip(
                BudgetExceeded,
                f"exceeded the watchdog budget of {self.max_evals} "
                f"right-hand-side evaluations",
                unknown=x,
            )


class OscillationWatchdog(Watchdog):
    """Flags unknowns that keep flip-flopping under the combined operator.

    For every update the watchdog classifies the direction of the move
    (``new <= old`` is a shrink, anything else a growth) and counts, per
    unknown, how often a shrink is followed by a growth -- the switch
    from narrowing back to widening that the end of the paper's Section 4
    identifies as the divergence mode of non-monotonic systems.  Unknowns
    past ``flag_after`` switches land in :attr:`flagged` (the escalation
    ladder widens exactly those); with ``trip_after`` set, the run is
    additionally aborted once any unknown reaches that many switches.

    The per-unknown update counts double as the divergence histogram:
    :meth:`histogram` names the hottest unknowns, like the tables of the
    paper's Examples 1-2.

    Direction classification costs one ``leq`` per update -- expensive on
    the big environment lattices of the interprocedural analyses -- so it
    only starts once an unknown has accumulated ``warmup`` updates.  A
    healthy run updates each unknown a handful of times and never pays;
    an oscillating unknown racks up updates quickly and is classified
    from its ``warmup``-th update on.
    """

    def __init__(
        self,
        flag_after: int = 3,
        trip_after: Optional[int] = None,
        warmup: int = 4,
    ) -> None:
        super().__init__()
        if flag_after < 1:
            raise ValueError("flag_after must be at least 1")
        if trip_after is not None and trip_after < flag_after:
            raise ValueError("trip_after must be >= flag_after")
        if warmup < 0:
            raise ValueError("warmup must be non-negative")
        self.flag_after = flag_after
        self.trip_after = trip_after
        self.warmup = warmup
        #: Per-unknown update counts.
        self.update_counts: Dict[Hashable, int] = {}
        #: Per-unknown narrow-to-widen switch counts.
        self.switches: Dict[Hashable, int] = {}
        #: Unknowns whose switch count reached ``flag_after``.
        self.flagged: Set[Hashable] = set()
        self._shrinking: Set[Hashable] = set()
        self._lattice = None

    def on_start(self, engine) -> None:
        super().on_start(engine)
        self._lattice = engine.lattice

    def on_update(self, x, old, new) -> None:
        count = self.update_counts.get(x, 0) + 1
        self.update_counts[x] = count
        if count <= self.warmup:
            return
        if self._lattice is None or not self._lattice.leq(new, old):
            # A growth: if the unknown was last seen shrinking, that is
            # one narrow-to-widen switch.
            if x in self._shrinking:
                self._shrinking.discard(x)
                switches = self.switches.get(x, 0) + 1
                self.switches[x] = switches
                if switches >= self.flag_after:
                    self.flagged.add(x)
                if self.trip_after is not None and switches >= self.trip_after:
                    self.trip(
                        OscillationDetected,
                        f"unknown {x!r} switched from narrowing back to "
                        f"widening {switches} times (oscillation under "
                        f"the combined operator)",
                        unknown=x,
                    )
        else:
            self._shrinking.add(x)

    def histogram(self, top: Optional[int] = None) -> List[Tuple[Hashable, int]]:
        """Update counts per unknown, most-updated first."""
        ranked = sorted(
            self.update_counts.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        return ranked if top is None else ranked[:top]
