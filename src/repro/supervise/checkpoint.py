"""Periodic crash-safe checkpoints of a running solver.

A :class:`Checkpointer` rides on the engine's event bus and, every
``every`` evaluations, captures the engine's resumable state as a
:class:`~repro.incremental.state.SolverState`
(:func:`~repro.incremental.state.capture_engine` -- the mid-run variant
that excludes in-flight evaluations from the stability set).  Snapshots
are kept in memory and, when a path is given, persisted crash-safely:
the JSON is written to a temporary sibling and atomically renamed over
the target, so a kill at any instant leaves either the previous or the
new checkpoint intact, never a torn file.

Recovery reuses the incremental warm-start machinery unchanged: an
interrupted run resumes via :func:`repro.incremental.warmstart.warm_solve`
with the dirty set ``state.dom - state.stable``
(:func:`~repro.incremental.state.resume_dirty`) -- the work the crash cut
short -- instead of restarting from bottom.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional

from repro.incremental.state import SolverState, capture_engine
from repro.solvers.engine.events import SolverObserver


class Checkpointer(SolverObserver):
    """Captures the engine state every ``every`` evaluations.

    :param solver: registry name recorded in each snapshot (drives the
        warm-start dispatch on recovery).
    :param every: checkpoint interval in right-hand-side evaluations.
    :param path: when given, each snapshot is also serialized to this
        file (atomic replace; see :meth:`write`).
    :param keep: how many snapshots to retain in memory (older ones are
        dropped); the newest is always :attr:`latest`.
    :param include_combine: also snapshot the update operator's
        per-unknown state (widening delays, ⌴ₖ budgets) into
        :attr:`SolverState.combine`, so a resume can restore the
        operator with :func:`repro.strategies.import_combine_state`.
    """

    def __init__(
        self,
        solver: str,
        every: int = 1000,
        path: Optional[str] = None,
        keep: int = 2,
        include_combine: bool = False,
    ) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be at least 1")
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self.solver = solver
        self.every = every
        self.path = path
        self.keep = keep
        self.include_combine = include_combine
        #: Retained snapshots, oldest first; the last one is the newest.
        self.states: List[SolverState] = []
        #: Total snapshots taken over the observer's lifetime.
        self.taken = 0
        #: Snapshots written to :attr:`path`.
        self.written = 0
        self.engine = None
        self._ticks = 0

    def on_start(self, engine) -> None:
        self.engine = engine

    def on_eval(self, x) -> None:
        self._ticks += 1
        if self._ticks % self.every == 0:
            self.snapshot()

    @property
    def latest(self) -> Optional[SolverState]:
        """The newest snapshot, or ``None`` before the first interval."""
        return self.states[-1] if self.states else None

    def snapshot(self) -> SolverState:
        """Capture the bound engine now (also called on the interval)."""
        if self.engine is None:
            raise RuntimeError("checkpointer is not bound to an engine")
        state = capture_engine(
            self.engine, self.solver, include_combine=self.include_combine
        )
        self.states.append(state)
        del self.states[: -self.keep]
        self.taken += 1
        if self.path is not None:
            self.write(state)
        return state

    def write(self, state: SolverState) -> None:
        """Serialize ``state`` to :attr:`path`, atomically.

        The JSON is written to a temporary file in the target directory
        and renamed over the target with :func:`os.replace`, which is
        atomic on POSIX and Windows: a reader (or a crash) observes
        either the old checkpoint or the new one in full.
        """
        if self.path is None:
            raise RuntimeError("checkpointer has no target path")
        payload = state.dumps(self.engine.lattice)
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.written += 1


def load_checkpoint(path: str, lattice) -> SolverState:
    """Restore a checkpoint written by :class:`Checkpointer`."""
    with open(path, "r", encoding="utf-8") as handle:
        return SolverState.loads(handle.read(), lattice)
