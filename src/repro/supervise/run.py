"""The supervisor: watchdogs, salvage, escalation ladder, solver cascade.

:func:`supervised_solve` wraps one registered solver with the full
resilience stack and returns a
:class:`~repro.supervise.report.SupervisionReport`:

1. the primary attempt runs with a wall-clock deadline, an evaluation
   budget, an oscillation detector and (optionally) periodic
   checkpoints;
2. a watchdog or budget trip does not discard the run -- the structured
   :class:`~repro.solvers.stats.DivergenceError` carries the partial
   state, the flagged oscillating unknowns are *escalated* to
   bounded-narrowing (and, one rung further, everything to pure
   widening ⌴ → ▽), and the solver retries;
3. a *fault* (an exception out of a right-hand side) triggers a resume
   from the latest checkpoint via the incremental warm-start machinery,
   or a cold restart when no checkpoint exists;
4. when the primary solver is out of rungs, the cascade falls back
   through the caller's ``fallback`` solvers (e.g. SLR → SW → two-phase);
5. every produced solution is gated through the independent
   post-solution verifier before the supervisor reports success -- a
   degraded result that is not a post solution is rejected like a trip.

The ladder is sound at every rung: escalation only caps narrowing
(keeping ``sigma[x] >= f_x(sigma)``, the
:class:`~repro.solvers.combine.BoundedWarrowCombine` argument), warm
resumes destabilize exactly the work the interruption cut short, and the
final verification is computed against the *unwrapped* system, so not
even an injected chaos fault can smuggle an unsound value through.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence

from repro.eqs.side import SideEffectingSystem
from repro.incremental.analysis import (
    check_post_solution,
    check_post_solution_pure,
)
from repro.incremental.state import SolverState, resume_dirty
from repro.incremental.warmstart import warm_solve
from repro.solvers.combine import Combine, WarrowCombine
from repro.solvers.registry import SolverSpec, get_solver
from repro.solvers.stats import DivergenceError
from repro.supervise.chaos import (
    ChaosPolicy,
    ChaosSystem,
    check_engine_invariants,
)
from repro.supervise.checkpoint import Checkpointer
from repro.strategies.registry import build_combine, escalation_ladder
from repro.supervise.escalate import EscalatingCombine, escalation_targets
from repro.supervise.report import Attempt, Degradation, SupervisionReport
from repro.supervise.watchdog import (
    DeadlineWatchdog,
    EngineProbe,
    OscillationWatchdog,
)

#: Escalation rungs per solver: targeted bounded-narrowing, then
#: everything-to-pure-widening.
_MAX_ESCALATIONS = 2


def _compatible(spec: SolverSpec, system, x0, side_effecting: bool) -> Optional[str]:
    """Why ``spec`` cannot run on this workload, or ``None`` if it can."""
    if side_effecting and not spec.side_effecting:
        return "system is side-effecting"
    if not side_effecting and spec.side_effecting:
        return "system is not side-effecting"
    if spec.scope == "local" and x0 is None:
        return "local solver needs an interesting unknown x0"
    if spec.scope == "global" and not hasattr(system, "unknowns"):
        return "global solver needs a finite system"
    return None


def _invoke(spec, system, op, x0, order, max_evals, observers, extra):
    args = [system]
    if spec.takes_op:
        args.append(op)
    if spec.scope == "local":
        args.append(x0)
    kwargs = dict(max_evals=max_evals, observers=observers)
    if spec.takes_order and order is not None:
        kwargs["order"] = order
    kwargs.update(extra)
    return spec(*args, **kwargs)


def supervised_solve(
    system,
    op: Optional[Combine] = None,
    x0: Optional[Hashable] = None,
    *,
    solver: str = "slr",
    fallback: Iterable[str] = (),
    deadline: Optional[float] = None,
    max_evals: Optional[int] = 10_000_000,
    flag_after: int = 3,
    trip_after: Optional[int] = None,
    descent_cap: int = 1,
    escalate: bool = True,
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    fault_retries: int = 2,
    chaos: Optional[ChaosPolicy] = None,
    verify: bool = True,
    order: Optional[Sequence] = None,
    solver_args: Optional[dict] = None,
) -> SupervisionReport:
    """Solve ``system`` under full supervision; never lose work silently.

    :param system: the equation system (pure, finite, or side-effecting).
    :param op: base update operator for op-taking solvers (default: the
        paper's combined operator ⌴).
    :param x0: interesting unknown, required for local solvers.
    :param solver: registry name of the primary solver.
    :param fallback: solver cascade tried after the primary's escalation
        rungs are exhausted, in order.
    :param deadline: per-attempt wall-clock deadline in seconds.
    :param max_evals: per-attempt evaluation budget (the divergence
        guard; ``None`` disables it -- then set a deadline).
    :param flag_after: oscillation switches before an unknown is flagged.
    :param trip_after: oscillation switches that abort the attempt
        outright (``None``: leave aborting to budget/deadline).
    :param descent_cap: narrowing steps an escalated unknown may still
        take on the first escalation rung (the second rung is always
        pure widening).
    :param escalate: whether to use the escalation rungs at all (when
        ``False``, a trip falls straight through to the cascade).
    :param checkpoint_every: checkpoint interval in evaluations
        (``None``: no checkpoints).
    :param checkpoint_path: optional file for crash-safe persistence of
        each checkpoint.
    :param fault_retries: how many right-hand-side faults to absorb by
        resuming/restarting before falling through to the cascade.
    :param chaos: a :class:`ChaosPolicy` for deterministic fault
        injection (testing the stack itself).
    :param verify: gate every produced solution through the independent
        post-solution checker; unsound results are rejected like trips.
    :param order: linear unknown order for order-taking solvers.
    :param solver_args: extra keyword arguments for the solver call.
    """
    primary = get_solver(solver, supervisable=True)
    report = SupervisionReport(requested_solver=primary.name)
    side_effecting = isinstance(system, SideEffectingSystem)
    base_system = system
    if chaos is not None:
        system = ChaosSystem(system, chaos)
    lattice = base_system.lattice
    if op is None:
        op = WarrowCombine(lattice)
    extra = dict(solver_args or {})

    cascade = [primary.name]
    for name in fallback:
        spec = get_solver(name)
        if spec.name not in cascade:
            cascade.append(spec.name)

    state: Optional[SolverState] = None
    max_attempts = (
        len(cascade) * (1 + (_MAX_ESCALATIONS if escalate else 0))
        + fault_retries
        + 1
    )

    rung = 0
    ladder = escalation_ladder(descent_cap)
    esc: Optional[EscalatingCombine] = None
    faults_left = fault_retries
    spec = primary
    cascade_pos = 0

    def advance_cascade() -> Optional[SolverSpec]:
        """The next compatible fallback solver, recording skips."""
        nonlocal cascade_pos, rung, esc, state, faults_left
        while cascade_pos + 1 < len(cascade):
            cascade_pos += 1
            candidate = get_solver(cascade[cascade_pos])
            why_not = _compatible(candidate, base_system, x0, side_effecting)
            if why_not is None:
                report.degradations.append(
                    Degradation(
                        "fallback",
                        f"cascading from {spec.name!r} to {candidate.name!r}",
                    )
                )
                # Fresh ladder for the new solver; its checkpoints are
                # not interchangeable with the previous solver's.
                rung = 0
                esc = None
                state = None
                return candidate
            report.degradations.append(
                Degradation(
                    "fallback",
                    f"skipping incompatible {candidate.name!r} ({why_not})",
                )
            )
        return None

    for _ in range(max_attempts):
        probe = EngineProbe()
        oscillation = OscillationWatchdog(
            flag_after=flag_after, trip_after=trip_after
        )
        observers = [probe, oscillation]
        if deadline is not None:
            observers.append(DeadlineWatchdog(deadline))
        checkpointer = None
        if checkpoint_every is not None and spec.supports_warm_start:
            checkpointer = Checkpointer(
                spec.name, every=checkpoint_every, path=checkpoint_path
            )
            observers.append(checkpointer)

        op_used = esc if (esc is not None and spec.takes_op) else op
        warm = (
            state is not None
            and spec.supports_warm_start
            and state.solver == spec.name
        )
        try:
            if warm:
                kwargs = dict(
                    max_evals=max_evals, observers=observers, **extra
                )
                if spec.name == "sw" and order is not None:
                    kwargs["order"] = order
                result = warm_solve(
                    system, op_used, state, resume_dirty(state), x0=x0, **kwargs
                )
            else:
                result = _invoke(
                    spec, system, op_used, x0, order, max_evals, observers, extra
                )
        except DivergenceError as err:
            evals = err.stats.evaluations if err.stats is not None else 0
            report.attempts.append(
                Attempt(
                    spec.name,
                    "trip",
                    repr(err),
                    evals,
                    warm=warm,
                    error_type=type(err).__name__,
                )
            )
            report.salvaged_sigma = dict(err.sigma)
            if checkpointer is not None:
                report.checkpoints_taken += checkpointer.taken
                report.checkpoints_written += checkpointer.written
                if checkpointer.latest is not None:
                    state = checkpointer.latest
            if escalate and spec.takes_op and rung < _MAX_ESCALATIONS:
                # Walk the strategy registry's escalation ladder: each
                # rung names the registered degraded strategy and the
                # scope of unknowns that switch to it.
                step = ladder[rung]
                rung += 1
                degraded = build_combine(step.spec, lattice)
                if step.scope == "targeted":
                    targets = escalation_targets(
                        oscillation.flagged, err, oscillation.update_counts
                    )
                    esc = EscalatingCombine(
                        lattice, op, targets, descent_cap, degraded=degraded
                    )
                    report.degradations.append(
                        Degradation(
                            "escalate",
                            f"{step.label} for {len(targets)} "
                            f"oscillating unknowns [{step.spec}]",
                            tuple(sorted(targets, key=repr)),
                        )
                    )
                else:
                    targets = set(err.sigma)
                    esc.escalate(targets)
                    esc.set_degraded(degraded)
                    report.degradations.append(
                        Degradation(
                            "escalate",
                            f"{step.label} for every encountered "
                            f"unknown [{step.spec}]",
                        )
                    )
                report.escalated.update(esc.escalated)
                continue
            spec_next = advance_cascade()
            if spec_next is None:
                report.fatal = repr(err)
                break
            spec = spec_next
            continue
        except Exception as err:
            engine = probe.engine
            evals = engine.stats.evaluations if engine is not None else 0
            report.attempts.append(
                Attempt(
                    spec.name,
                    "fault",
                    repr(err),
                    evals,
                    warm=warm,
                    error_type=type(err).__name__,
                )
            )
            if engine is not None:
                report.salvaged_sigma = dict(engine.sigma)
                report.consistency_problems.extend(
                    check_engine_invariants(engine)
                )
            if checkpointer is not None:
                report.checkpoints_taken += checkpointer.taken
                report.checkpoints_written += checkpointer.written
                if checkpointer.latest is not None:
                    state = checkpointer.latest
            if faults_left > 0:
                faults_left -= 1
                if state is not None and spec.supports_warm_start:
                    report.degradations.append(
                        Degradation(
                            "resume-checkpoint",
                            f"resuming {spec.name!r} from the checkpoint "
                            f"({len(state.stable)}/{len(state.dom)} unknowns "
                            f"already stable)",
                        )
                    )
                else:
                    report.degradations.append(
                        Degradation(
                            "restart", f"restarting {spec.name!r} cold"
                        )
                    )
                continue
            spec_next = advance_cascade()
            if spec_next is None:
                report.fatal = repr(err)
                break
            spec = spec_next
            continue

        # Success: account, verify, and either accept or keep degrading.
        if checkpointer is not None:
            report.checkpoints_taken += checkpointer.taken
            report.checkpoints_written += checkpointer.written
        if verify:
            if side_effecting:
                violations = check_post_solution(base_system, result.sigma)
            else:
                violations = check_post_solution_pure(
                    base_system, result.sigma
                )
            if violations:
                report.attempts.append(
                    Attempt(
                        spec.name,
                        "unsound",
                        f"{len(violations)} post-solution violations",
                        result.stats.evaluations,
                        warm=warm,
                    )
                )
                report.violations = violations
                report.salvaged_sigma = dict(result.sigma)
                spec_next = advance_cascade()
                if spec_next is None:
                    report.fatal = (
                        f"result failed verification with "
                        f"{len(violations)} violations"
                    )
                    break
                spec = spec_next
                continue
            report.verified = True
            report.violations = []
        report.attempts.append(
            Attempt(spec.name, "ok", "", result.stats.evaluations, warm=warm)
        )
        report.ok = True
        report.solver = spec.name
        report.result = result
        break
    else:
        if report.fatal is None:
            report.fatal = "attempt limit reached"

    if chaos is not None:
        report.faults = list(system.log)
    return report
