"""Structured reporting of a supervised solver run.

Every degradation the supervisor applies -- escalating unknowns to pure
widening, resuming from a checkpoint, restarting after a fault, falling
back to another solver -- is recorded as a :class:`Degradation`, and
every solver invocation as an :class:`Attempt`.  The resulting
:class:`SupervisionReport` is the single source of truth about *how* a
result was obtained: a verified result reached through three
degradations is a different operational fact than a clean first-attempt
solve, and a production service must be able to tell them apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set, Tuple

from repro.supervise.chaos import FaultEvent


@dataclass
class Degradation:
    """One degradation step the supervisor applied."""

    #: ``"escalate"``, ``"resume-checkpoint"``, ``"restart"``,
    #: ``"fallback"``, or ``"salvage"``.
    kind: str
    #: Human-readable description of the step.
    detail: str
    #: The unknowns the step concerned (escalations name their targets).
    unknowns: Tuple[Hashable, ...] = ()

    def __str__(self) -> str:
        if self.unknowns:
            shown = ", ".join(repr(u) for u in self.unknowns[:4])
            if len(self.unknowns) > 4:
                shown += f", ... ({len(self.unknowns)} total)"
            return f"{self.kind}: {self.detail} [{shown}]"
        return f"{self.kind}: {self.detail}"


@dataclass
class Attempt:
    """One solver invocation within a supervised run."""

    solver: str
    #: ``"ok"``, ``"trip"`` (watchdog/budget), ``"fault"`` (exception
    #: from a right-hand side), or ``"unsound"`` (verifier rejected).
    outcome: str
    #: Representation of the error for non-ok outcomes.
    error: str = ""
    evaluations: int = 0
    #: Whether the attempt resumed warm from a checkpoint.
    warm: bool = False
    #: Exception class name for non-ok outcomes (``"DeadlineExceeded"``,
    #: ``"BudgetExceeded"``, ...), so consumers classify trips without
    #: parsing the message.
    error_type: str = ""

    def __str__(self) -> str:
        mode = "warm" if self.warm else "cold"
        line = f"{self.solver} ({mode}): {self.outcome}, {self.evaluations} evaluations"
        if self.error:
            line += f" -- {self.error}"
        return line


@dataclass
class SupervisionReport:
    """The complete outcome of one supervised solve."""

    #: The solver the caller asked for.
    requested_solver: str
    #: Whether a (verified, when requested) result was produced.
    ok: bool = False
    #: The solver that produced the final result.
    solver: Optional[str] = None
    #: The final solver result (``None`` when every attempt failed).
    result: Optional[object] = None
    #: ``True``/``False`` after verification; ``None`` when not requested.
    verified: Optional[bool] = None
    #: Post-solution violations found by the verifier (must be empty).
    violations: List[object] = field(default_factory=list)
    #: Every solver invocation, in order.
    attempts: List[Attempt] = field(default_factory=list)
    #: Every degradation applied, in order.
    degradations: List[Degradation] = field(default_factory=list)
    #: Union of all unknowns escalated to bounded/pure widening.
    escalated: Set[Hashable] = field(default_factory=set)
    #: Faults the chaos harness fired (empty without chaos).
    faults: List[FaultEvent] = field(default_factory=list)
    #: Engine-consistency problems observed after faults (must be empty).
    consistency_problems: List[str] = field(default_factory=list)
    #: Checkpoints taken / persisted across all attempts.
    checkpoints_taken: int = 0
    checkpoints_written: int = 0
    #: Partial mapping salvaged from the last failure (when not ok).
    salvaged_sigma: Optional[dict] = None
    #: The terminal error when every attempt failed.
    fatal: Optional[str] = None

    @property
    def total_evaluations(self) -> int:
        """Right-hand-side evaluations summed over all attempts."""
        return sum(a.evaluations for a in self.attempts)

    @property
    def degraded(self) -> bool:
        """Whether any degradation was applied."""
        return bool(self.degradations)

    def render(self) -> str:
        """Multi-line human-readable summary (what the CLI prints)."""
        lines = [
            f"supervision report: requested solver {self.requested_solver!r}, "
            f"{'ok' if self.ok else 'FAILED'}"
        ]
        for attempt in self.attempts:
            lines.append(f"  attempt: {attempt}")
        if self.degradations:
            lines.append("  degradations applied:")
            for deg in self.degradations:
                lines.append(f"    - {deg}")
        else:
            lines.append("  degradations applied: none")
        if self.faults:
            for fault in self.faults:
                lines.append(
                    f"  fault injected: {fault.kind} at evaluation "
                    f"#{fault.eval_index} ({fault.unknown!r})"
                )
        if self.consistency_problems:
            lines.append(
                f"  CONSISTENCY PROBLEMS after fault: "
                f"{len(self.consistency_problems)}"
            )
            for problem in self.consistency_problems[:5]:
                lines.append(f"    - {problem}")
        if self.checkpoints_taken:
            lines.append(
                f"  checkpoints: {self.checkpoints_taken} taken, "
                f"{self.checkpoints_written} written"
            )
        if self.verified is not None:
            if self.verified:
                lines.append("  verification: post solution confirmed")
            else:
                lines.append(
                    f"  verification: {len(self.violations)} VIOLATIONS"
                )
        if self.ok and self.result is not None:
            lines.append(
                f"  result: {self.solver} solved "
                f"{self.result.stats.unknowns} unknowns in "
                f"{self.total_evaluations} total evaluations"
            )
        elif self.fatal:
            lines.append(f"  fatal: {self.fatal}")
        return "\n".join(lines)
