"""Deterministic fault injection for solver runs (the chaos harness).

A production solver service must survive faulty user right-hand sides:
ones that raise, that stall, or that return values violating the
monotonicity the termination theorems assume.  The chaos harness makes
such failures *reproducible*: :class:`ChaosSystem` wraps any equation
system (pure, finite, or side-effecting) and injects faults into
right-hand-side evaluations according to a seeded
:class:`ChaosPolicy` -- the same seed always produces the same fault at
the same evaluation, so every chaos test is a deterministic regression
test.

Three fault kinds, mirroring the three assumptions the engine must not
depend on:

* ``"raise"``  -- the evaluation raises :class:`InjectedFault`;
* ``"delay"``  -- the evaluation stalls for a configurable time before
  returning the true value (trips deadline watchdogs);
* ``"perturb"`` -- the evaluation returns a *non-monotone* perturbation
  of the true value (bottom, or top when the value already is bottom).

:func:`check_engine_invariants` is the consistency oracle used by the
chaos property suite: after any single injected failure the engine's
``sigma``/``infl``/``stable`` must still describe a well-formed partial
run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence

#: The fault kinds the harness can inject.
KINDS = ("raise", "delay", "perturb")

#: The transport fault kinds the socket chaos harness can inject
#: (see :class:`TransportChaosPolicy`).
TRANSPORT_KINDS = ("drop", "truncate", "stall")


class InjectedFault(RuntimeError):
    """The chaos harness made this right-hand-side evaluation fail."""

    def __init__(self, unknown: Hashable, eval_index: int) -> None:
        super().__init__(
            f"injected fault in evaluation #{eval_index} "
            f"(right-hand side of {unknown!r})"
        )
        self.unknown = unknown
        self.eval_index = eval_index


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``kind`` fires at global evaluation ``at``."""

    kind: str
    #: 1-based index into the stream of wrapped evaluations.
    at: int

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"fault kind must be one of {KINDS}, got {self.kind!r}")
        if self.at < 1:
            raise ValueError("fault index is 1-based and must be positive")


@dataclass
class FaultEvent:
    """One fault that actually fired, as recorded by the harness."""

    kind: str
    unknown: Hashable
    eval_index: int


class ChaosPolicy:
    """Decides, deterministically, which evaluations fault.

    Faults come from two sources that compose:

    * an explicit schedule of :class:`FaultSpec` entries (exact
      evaluation indices -- what the property suite uses to fail the
      k-th evaluation);
    * a seeded random ``rate`` in ``[0, 1]``: each evaluation faults
      with that probability, drawing the kind uniformly from ``kinds``.
      The stream depends only on ``seed``, so runs are reproducible.

    ``max_faults`` bounds how many faults fire in total (default 1: the
    single-failure discipline the consistency properties are stated
    for).  A policy is single-use -- it counts evaluations across its
    lifetime -- so recovery retries against the same wrapped system do
    not re-fire an already-fired scheduled fault.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        faults: Sequence[FaultSpec] = (),
        rate: float = 0.0,
        kinds: Sequence[str] = ("raise",),
        delay_seconds: float = 0.001,
        max_faults: int = 1,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        for kind in kinds:
            if kind not in KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.scheduled = {spec.at: spec for spec in faults}
        self.rate = rate
        self.kinds = tuple(kinds)
        self.delay_seconds = delay_seconds
        self.max_faults = max_faults
        self.fired = 0
        self._rng = random.Random(seed)

    def decide(self, eval_index: int) -> Optional[str]:
        """The fault kind for this evaluation, or ``None``."""
        if self.fired >= self.max_faults:
            # Keep the random stream aligned with the no-cap run so the
            # surviving prefix of faults is identical either way.
            if self.rate:
                self._rng.random()
            return None
        kind = None
        spec = self.scheduled.get(eval_index)
        if spec is not None:
            kind = spec.kind
        elif self.rate and self._rng.random() < self.rate:
            kind = self._rng.choice(self.kinds)
        if kind is not None:
            self.fired += 1
        return kind


def fail_on_eval(k: int) -> ChaosPolicy:
    """A policy that raises on exactly the ``k``-th evaluation."""
    return ChaosPolicy(faults=[FaultSpec("raise", at=k)])


class ChaosSystem:
    """Wraps an equation system, injecting faults into RHS evaluations.

    Everything except ``rhs`` delegates to the wrapped system, so the
    wrapper is transparent to every solver: finite systems keep their
    ``unknowns``/``deps``/``infl``, side-effecting right-hand sides keep
    their ``(get, side)`` signature (the wrapped closure forwards
    arbitrary arguments).

    Fired faults are recorded in :attr:`log` for the
    :class:`~repro.supervise.report.SupervisionReport`.
    """

    def __init__(self, system, policy: ChaosPolicy) -> None:
        self._inner = system
        self.policy = policy
        #: Faults that actually fired, in order.
        self.log: List[FaultEvent] = []
        self._evals = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def inner(self):
        """The wrapped, fault-free system."""
        return self._inner

    def perturb(self, value):
        """A non-monotone stand-in for ``value``.

        Bottom is the default perturbation -- a strictly shrinking move,
        which is the direction monotone ascending iteration never takes;
        when the true value already is bottom, top is returned instead so
        the perturbation is never a no-op.
        """
        lat = self._inner.lattice
        if lat.equal(value, lat.bottom):
            return lat.top
        return lat.bottom

    def rhs(self, x):
        inner_rhs = self._inner.rhs(x)
        policy = self.policy

        def chaotic(*args, **kwargs):
            self._evals += 1
            index = self._evals
            kind = policy.decide(index)
            if kind is None:
                return inner_rhs(*args, **kwargs)
            self.log.append(FaultEvent(kind=kind, unknown=x, eval_index=index))
            if kind == "raise":
                raise InjectedFault(x, index)
            if kind == "delay":
                time.sleep(policy.delay_seconds)
                return inner_rhs(*args, **kwargs)
            return self.perturb(inner_rhs(*args, **kwargs))

        return chaotic


# --------------------------------------------------------------------- #
# Transport chaos: faults at the socket, not the equation system.       #
# --------------------------------------------------------------------- #

class TransportChaosPolicy:
    """Seeded fault decisions for the service transport layer.

    Where :class:`ChaosPolicy` injects faults into right-hand-side
    evaluations *inside* a solver run, this policy injects them into the
    NDJSON transport *around* it -- the failure modes a daemon on a real
    network must shrug off:

    * ``"drop"``     -- the connection is cut partway through writing a
      request (the daemon sees EOF mid-line);
    * ``"truncate"`` -- the request line is sent without its trailing
      newline and the connection closed (a torn NDJSON line);
    * ``"stall"``    -- the sender pauses ``delay_seconds`` before
      writing (trips the daemon's per-connection read deadline).

    The decision stream depends only on ``seed``, so a chaos load test
    is a deterministic regression test.  Unlike :class:`ChaosPolicy`
    there is no single-failure discipline by default: transport faults
    are meant to fire throughout a run (``max_faults=None``), and the
    retrying :class:`~repro.service.client.ServiceClient` must converge
    anyway.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        rate: float = 0.0,
        kinds: Sequence[str] = TRANSPORT_KINDS,
        delay_seconds: float = 0.05,
        max_faults: Optional[int] = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        for kind in kinds:
            if kind not in TRANSPORT_KINDS:
                raise ValueError(f"unknown transport fault kind {kind!r}")
        if max_faults is not None and max_faults < 0:
            raise ValueError("max_faults must be non-negative")
        self.rate = rate
        self.kinds = tuple(kinds)
        self.delay_seconds = delay_seconds
        self.max_faults = max_faults
        self.fired = 0
        self.decisions = 0
        #: Kinds that actually fired, in order.
        self.log: List[str] = []
        self._rng = random.Random(seed)

    def decide(self) -> Optional[str]:
        """The fault kind for this transport operation, or ``None``."""
        self.decisions += 1
        if self.max_faults is not None and self.fired >= self.max_faults:
            if self.rate:
                self._rng.random()
            return None
        if self.rate and self._rng.random() < self.rate:
            kind = self._rng.choice(self.kinds)
            self.fired += 1
            self.log.append(kind)
            return kind
        return None


# --------------------------------------------------------------------- #
# The consistency oracle.                                               #
# --------------------------------------------------------------------- #

def check_engine_invariants(engine) -> List[str]:
    """Consistency violations of an engine's state; empty when sound.

    The invariants hold at every event-bus boundary of every solver, so
    they must hold in particular right after an exception unwound the
    solver -- the property the chaos suite asserts for each registered
    solver after a single injected failure:

    * every stable unknown has a value (``stable`` ⊆ dom ``sigma``);
    * every encountered unknown has a value (``dom`` ⊆ dom ``sigma``);
    * influence edges only mention unknowns with values;
    * priority keys are exactly the encountered domain of a local solve;
    * no in-flight evaluations remain (the exception unwound them all);
    * every stored value is a well-formed lattice element (reflexivity
      of ``leq`` holds for it).
    """
    problems: List[str] = []
    sigma_dom = set(engine.sigma)
    for x in engine.stable:
        if x not in sigma_dom:
            problems.append(f"stable unknown {x!r} has no value in sigma")
    for x in engine.dom:
        if x not in sigma_dom:
            problems.append(f"encountered unknown {x!r} has no value in sigma")
    for x, influenced in engine.infl.items():
        if x not in sigma_dom:
            problems.append(f"influence source {x!r} has no value in sigma")
        for y in influenced:
            if y not in sigma_dom:
                problems.append(
                    f"influence edge {x!r} -> {y!r} mentions an unknown "
                    f"without a value"
                )
    if engine.keys and set(engine.keys) != set(engine.dom):
        problems.append(
            f"priority keys cover {len(engine.keys)} unknowns but the "
            f"encountered domain has {len(engine.dom)}"
        )
    if engine.inflight:
        problems.append(
            f"{len(engine.inflight)} evaluations still marked in-flight"
        )
    lat = engine.lattice
    for x, value in engine.sigma.items():
        try:
            ok = lat.leq(value, value)
        except Exception as err:  # pragma: no cover - malformed value
            problems.append(f"sigma[{x!r}] is not a lattice element: {err}")
            continue
        if not ok:
            problems.append(f"sigma[{x!r}] fails leq reflexivity")
    return problems
