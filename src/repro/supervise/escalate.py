"""Per-unknown escalation of the combined operator (graceful degradation).

When a watchdog trips, throwing the whole run away is the worst answer:
typically only a few unknowns oscillate (the flip-flop mode of
non-monotonic systems, end of the paper's Section 4) while the rest of
the system is fine.  :class:`EscalatingCombine` degrades *selectively*:
unescalated unknowns keep the caller's operator (usually the paper's ⌴),
while escalated unknowns get a bounded-narrowing variant -- at most
``descent_cap`` improving narrow steps, after which the value can only
grow by widening and hence stabilises.  With ``descent_cap=0`` an
escalated unknown is on pure widening (⌴ → ▽): ascending-only iteration,
the paper's Theorem 1/2 regime where termination needs no monotonicity
beyond the widening's own guarantee.

Escalation preserves soundness: in the capped branch the new
contribution satisfies ``b <= a``, so returning ``a`` keeps
``sigma[x] >= f_x(sigma)`` -- the same argument as for
:class:`~repro.solvers.combine.BoundedWarrowCombine`, applied per
escalated unknown instead of globally.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.lattices.base import Lattice
from repro.solvers.combine import Combine


class EscalatingCombine(Combine):
    """Wraps a base operator, degrading the escalated unknowns.

    The escalated set is owned by the instance and can grow between
    attempts (the supervisor's ladder adds the unknowns each trip
    flagged); :meth:`reset` clears the per-unknown descent counters but
    deliberately *keeps* the escalated set -- that is accumulated
    diagnosis, not per-run state.
    """

    def __init__(
        self,
        lattice: Lattice,
        base: Combine,
        escalated: Iterable[Hashable] = (),
        descent_cap: int = 0,
    ) -> None:
        if descent_cap < 0:
            raise ValueError("descent_cap must be non-negative")
        self.lattice = lattice
        self.base = base
        self.escalated: Set[Hashable] = set(escalated)
        self.descent_cap = descent_cap
        self._descents: Dict[Hashable, int] = {}

    def reset(self) -> None:
        self.base.reset()
        self._descents.clear()

    def escalate(self, unknowns: Iterable[Hashable]) -> None:
        """Add ``unknowns`` to the escalated set."""
        self.escalated.update(unknowns)

    def __call__(self, x, old, new):
        if x not in self.escalated:
            return self.base(x, old, new)
        if self.lattice.leq(new, old):
            if self._descents.get(x, 0) >= self.descent_cap:
                return old
            result = self.lattice.narrow(old, new)
            if not self.lattice.equal(result, old):
                self._descents[x] = self._descents.get(x, 0) + 1
            return result
        return self.lattice.widen(old, new)


def escalation_targets(
    flagged: Iterable[Hashable],
    error,
    histogram: Optional[Dict[Hashable, int]] = None,
    top: int = 5,
) -> Set[Hashable]:
    """The unknowns the next attempt should escalate after a trip.

    Preference order: the oscillation watchdog's flagged set (a precise
    diagnosis), then the hottest unknowns of the update histogram, then
    the unknown the structured error names.  The fallbacks matter when a
    budget or deadline watchdog trips before the oscillation detector
    reaches its threshold.
    """
    targets = set(flagged)
    if not targets and histogram:
        ranked = sorted(histogram.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        targets.update(x for x, _ in ranked[:top])
    unknown = getattr(error, "unknown", None)
    if unknown is not None:
        targets.add(unknown)
    return targets
