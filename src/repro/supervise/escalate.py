"""Per-unknown escalation of the combined operator (graceful degradation).

When a watchdog trips, throwing the whole run away is the worst answer:
typically only a few unknowns oscillate (the flip-flop mode of
non-monotonic systems, end of the paper's Section 4) while the rest of
the system is fine.  :class:`EscalatingCombine` degrades *selectively*:
unescalated unknowns keep the caller's operator (usually the paper's ⌴),
while escalated unknowns are routed to a *degraded* member strategy.

The degraded member comes from the strategy registry's escalation
ladder (:func:`repro.strategies.registry.escalation_ladder`): by default
:class:`~repro.solvers.combine.BoundedNarrowCombine` -- at most
``descent_cap`` improving narrow steps, after which the value can only
grow by widening and hence stabilises.  With ``descent_cap=0`` an
escalated unknown is on pure widening (⌴ → ▽): ascending-only iteration,
the paper's Theorem 1/2 regime where termination needs no monotonicity
beyond the widening's own guarantee.

Escalation preserves soundness: in the capped branch the new
contribution satisfies ``b <= a``, so returning ``a`` keeps
``sigma[x] >= f_x(sigma)`` -- the same argument as for
:class:`~repro.solvers.combine.BoundedWarrowCombine`, applied per
escalated unknown instead of globally.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.lattices.base import Lattice
from repro.solvers.combine import BoundedNarrowCombine, Combine


class EscalatingCombine(Combine):
    """Wraps a base operator, degrading the escalated unknowns.

    The escalated set is owned by the instance and can grow between
    attempts (the supervisor's ladder adds the unknowns each trip
    flagged); :meth:`reset` clears the per-unknown descent counters but
    deliberately *keeps* the escalated set -- that is accumulated
    diagnosis, not per-run state.

    :param degraded: the strategy escalated unknowns switch to; defaults
        to :class:`~repro.solvers.combine.BoundedNarrowCombine` with the
        given ``descent_cap`` (the registry's ``bounded-narrow`` rung).
    """

    def __init__(
        self,
        lattice: Lattice,
        base: Combine,
        escalated: Iterable[Hashable] = (),
        descent_cap: int = 0,
        degraded: Optional[Combine] = None,
    ) -> None:
        if descent_cap < 0:
            raise ValueError("descent_cap must be non-negative")
        self.lattice = lattice
        self.base = base
        self.escalated: Set[Hashable] = set(escalated)
        self._descent_cap = descent_cap
        self.degraded: Combine = (
            degraded
            if degraded is not None
            else BoundedNarrowCombine(lattice, cap=descent_cap)
        )

    @property
    def descent_cap(self) -> int:
        return self._descent_cap

    @descent_cap.setter
    def descent_cap(self, cap: int) -> None:
        """Tighten the cap: rebuilds the default degraded member.

        The supervisor's final rung sets ``descent_cap = 0`` (pure
        widening for everything escalated); rebuilding drops the
        already-spent descent counters, which only *forbids* further
        descents -- monotone in the degradation direction.
        """
        if cap < 0:
            raise ValueError("descent_cap must be non-negative")
        self._descent_cap = cap
        self.degraded = BoundedNarrowCombine(self.lattice, cap=cap)

    def set_degraded(self, degraded: Combine) -> None:
        """Replace the degraded member (the next ladder rung).

        Keeps ``descent_cap`` in sync when the new member exposes a
        ``cap`` (the registry's ``bounded-narrow`` strategies do).
        """
        self.degraded = degraded
        self._descent_cap = getattr(degraded, "cap", self._descent_cap)

    def reset(self) -> None:
        self.base.reset()
        self.degraded.reset()

    def _clone(self) -> "EscalatingCombine":
        return EscalatingCombine(
            self.lattice,
            self.base.fresh(),
            escalated=self.escalated,
            descent_cap=self._descent_cap,
            degraded=self.degraded.fresh(),
        )

    def children(self) -> Dict[str, Combine]:
        return {"base": self.base, "degraded": self.degraded}

    def escalate(self, unknowns: Iterable[Hashable]) -> None:
        """Add ``unknowns`` to the escalated set."""
        self.escalated.update(unknowns)

    def __call__(self, x, old, new):
        if x not in self.escalated:
            return self.base(x, old, new)
        return self.degraded(x, old, new)


def escalation_targets(
    flagged: Iterable[Hashable],
    error,
    histogram: Optional[Dict[Hashable, int]] = None,
    top: int = 5,
) -> Set[Hashable]:
    """The unknowns the next attempt should escalate after a trip.

    Preference order: the oscillation watchdog's flagged set (a precise
    diagnosis), then the hottest unknowns of the update histogram, then
    the unknown the structured error names.  The fallbacks matter when a
    budget or deadline watchdog trips before the oscillation detector
    reaches its threshold.
    """
    targets = set(flagged)
    if not targets and histogram:
        ranked = sorted(histogram.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        targets.update(x for x, _ in ranked[:top])
    unknown = getattr(error, "unknown", None)
    if unknown is not None:
        targets.add(unknown)
    return targets
