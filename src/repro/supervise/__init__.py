"""Solver supervision: watchdogs, chaos, checkpoints, graceful degradation.

The supervision layer wraps any registered solver with the operational
machinery a long-running analysis service needs::

    from repro.supervise import supervised_solve

    report = supervised_solve(system, x0="main",
                              solver="slr", fallback=("sw", "twophase"),
                              deadline=30.0, checkpoint_every=10_000)
    assert report.ok and report.verified

See :doc:`docs/supervision.md` for the escalation ladder, the fault
model, and the soundness argument for each degradation step.
"""

from repro.supervise.chaos import (
    KINDS,
    ChaosPolicy,
    ChaosSystem,
    FaultEvent,
    FaultSpec,
    InjectedFault,
    check_engine_invariants,
    fail_on_eval,
)
from repro.supervise.checkpoint import Checkpointer, load_checkpoint
from repro.supervise.escalate import EscalatingCombine, escalation_targets
from repro.supervise.report import Attempt, Degradation, SupervisionReport
from repro.supervise.run import supervised_solve
from repro.supervise.watchdog import (
    BudgetWatchdog,
    DeadlineExceeded,
    DeadlineWatchdog,
    EngineProbe,
    OscillationDetected,
    OscillationWatchdog,
    BudgetExceeded,
    Watchdog,
    WatchdogError,
)

__all__ = [
    "Attempt",
    "BudgetExceeded",
    "BudgetWatchdog",
    "ChaosPolicy",
    "ChaosSystem",
    "Checkpointer",
    "DeadlineExceeded",
    "DeadlineWatchdog",
    "Degradation",
    "EngineProbe",
    "EscalatingCombine",
    "FaultEvent",
    "FaultSpec",
    "InjectedFault",
    "KINDS",
    "OscillationDetected",
    "OscillationWatchdog",
    "SupervisionReport",
    "Watchdog",
    "WatchdogError",
    "check_engine_invariants",
    "escalation_targets",
    "fail_on_eval",
    "load_checkpoint",
    "supervised_solve",
]
