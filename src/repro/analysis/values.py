"""Numeric value domains for the mini-C analyses.

A :class:`NumericDomain` is a lattice over abstractions of C ``int``
values together with sound transformers for the mini-C operators and
(backwards) refinement for comparison guards.  The interval instance is
the domain of the paper's experiments; the constant-propagation instance
doubles as a second, cheaper client of the same machinery.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Tuple

from repro.lattices.base import Lattice
from repro.lattices.flat import Flat, FlatBot, FlatTop
from repro.lattices.interval import IntervalLattice

#: Comparison operators with their Python semantics (mini-C matches C).
_CMP = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

#: The comparison obtained by swapping the operand order.
_SWAP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}

#: The comparison obtained by negating the outcome.
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


class NumericDomain(Lattice):
    """A lattice of ``int`` abstractions with operator transformers."""

    @abstractmethod
    def from_const(self, n: int):
        """Abstract a concrete integer."""

    @abstractmethod
    def binop(self, op: str, a, b):
        """Sound abstraction of binary ``op`` (arithmetic, comparison,
        non-short-circuit logical)."""

    @abstractmethod
    def unop(self, op: str, a):
        """Sound abstraction of unary ``-`` and ``!``."""

    @abstractmethod
    def truthiness(self, a) -> Tuple[bool, bool]:
        """``(may_be_true, may_be_false)`` of a condition value."""

    def refine_cmp(self, op: str, a, b, assume: bool) -> tuple:
        """Refine ``(a, b)`` under the assumption ``(a op b) == assume``.

        The default performs no refinement (always sound).
        """
        if not assume:
            op = _NEGATE[op]
        return self._refine_true_cmp(op, a, b)

    def _refine_true_cmp(self, op: str, a, b) -> tuple:
        return (a, b)

    def contains(self, a, n: int) -> bool:
        """Whether concrete ``n`` is represented by abstract ``a``
        (used by the soundness property tests)."""
        raise NotImplementedError


class IntervalDomain(NumericDomain):
    """The interval domain of the paper's experiments.

    Thin adapter over :class:`repro.lattices.interval.IntervalLattice`
    translating mini-C operator names.
    """

    name = "interval-domain"

    def __init__(self, thresholds=()) -> None:
        self.iv = IntervalLattice(thresholds=thresholds)

    # Lattice structure delegates to the interval lattice. ------------- #

    @property
    def bottom(self):
        return self.iv.bottom

    @property
    def top(self):
        return self.iv.top

    def leq(self, a, b):
        return self.iv.leq(a, b)

    def join(self, a, b):
        return self.iv.join(a, b)

    def meet(self, a, b):
        return self.iv.meet(a, b)

    def widen(self, a, b):
        return self.iv.widen(a, b)

    def narrow(self, a, b):
        return self.iv.narrow(a, b)

    def validate(self, a):
        self.iv.validate(a)

    def format(self, a):
        return self.iv.format(a)

    # Transformers. ----------------------------------------------------- #

    def from_const(self, n: int):
        return self.iv.from_const(n)

    def binop(self, op: str, a, b):
        iv = self.iv
        if op == "+":
            return iv.add(a, b)
        if op == "-":
            return iv.sub(a, b)
        if op == "*":
            return iv.mul(a, b)
        if op == "/":
            return iv.div(a, b)
        if op == "%":
            return iv.rem(a, b)
        if op == "<":
            return iv.cmp_lt(a, b)
        if op == "<=":
            return iv.cmp_le(a, b)
        if op == ">":
            return iv.cmp_lt(b, a)
        if op == ">=":
            return iv.cmp_le(b, a)
        if op == "==":
            return iv.cmp_eq(a, b)
        if op == "!=":
            return iv.cmp_ne(a, b)
        if op in ("&&", "||"):
            return self._logic(op, a, b)
        raise ValueError(f"unknown operator {op!r}")

    def _logic(self, op: str, a, b):
        if a is None or b is None:
            return None
        at, af = self.iv.truthiness(a)
        bt, bf = self.iv.truthiness(b)
        if op == "&&":
            may_true = at and bt
            may_false = af or bf
        else:
            may_true = at or bt
            may_false = af and bf
        if may_true and may_false:
            return self.iv.BOTH
        if may_true:
            return self.iv.TRUE
        if may_false:
            return self.iv.FALSE
        return None

    def unop(self, op: str, a):
        if op == "-":
            return self.iv.neg(a)
        if op == "!":
            return self.iv.logical_not(a)
        raise ValueError(f"unknown unary operator {op!r}")

    def truthiness(self, a):
        return self.iv.truthiness(a)

    def _refine_true_cmp(self, op: str, a, b):
        iv = self.iv
        if op == "<":
            return iv.refine_lt(a, b)
        if op == "<=":
            return iv.refine_le(a, b)
        if op == ">":
            b2, a2 = iv.refine_lt(b, a)
            return (a2, b2)
        if op == ">=":
            b2, a2 = iv.refine_le(b, a)
            return (a2, b2)
        if op == "==":
            return iv.refine_eq(a, b)
        if op == "!=":
            return iv.refine_ne(a, b)
        raise ValueError(f"unknown comparison {op!r}")

    def contains(self, a, n: int) -> bool:
        return a is not None and a.contains(n)


class ConstDomain(NumericDomain):
    """Constant propagation over the flat lattice.

    A cheaper client of the analysis machinery; also exercises the code
    paths where widening/narrowing are trivial (finite height).
    """

    name = "const-domain"

    def __init__(self) -> None:
        self.flat = Flat()

    @property
    def bottom(self):
        return self.flat.bottom

    @property
    def top(self):
        return self.flat.top

    def leq(self, a, b):
        return self.flat.leq(a, b)

    def join(self, a, b):
        return self.flat.join(a, b)

    def meet(self, a, b):
        return self.flat.meet(a, b)

    def from_const(self, n: int):
        return n

    def binop(self, op: str, a, b):
        if a is FlatBot or b is FlatBot:
            return FlatBot
        if a is FlatTop or b is FlatTop:
            # Comparisons of unknowns still yield an unknown truth value;
            # arithmetic likewise.
            return FlatTop
        if op in _CMP:
            return int(_CMP[op](a, b))
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            from repro.lang.interp import trunc_div

            return trunc_div(a, b) if b != 0 else FlatBot
        if op == "%":
            from repro.lang.interp import c_rem

            return c_rem(a, b) if b != 0 else FlatBot
        if op == "&&":
            return int(bool(a) and bool(b))
        if op == "||":
            return int(bool(a) or bool(b))
        raise ValueError(f"unknown operator {op!r}")

    def unop(self, op: str, a):
        if a is FlatBot or a is FlatTop:
            return a
        if op == "-":
            return -a
        if op == "!":
            return int(not a)
        raise ValueError(f"unknown unary operator {op!r}")

    def truthiness(self, a):
        if a is FlatBot:
            return (False, False)
        if a is FlatTop:
            return (True, True)
        return (bool(a), not bool(a))

    def _refine_true_cmp(self, op: str, a, b):
        # Equality against a known constant pins the other side down.
        if op == "==":
            met = self.flat.meet(a, b)
            return (met, met)
        return (a, b)

    def contains(self, a, n: int) -> bool:
        if a is FlatBot:
            return False
        if a is FlatTop:
            return True
        return a == n


class CongruenceDomain(NumericDomain):
    """Stride/parity tracking via the congruence lattice.

    Precise for linear arithmetic (``+``, ``-``, ``*``); division,
    remainder and comparisons degrade to constants-only precision.  Most
    useful inside :class:`ProductNumericDomain` with intervals.
    """

    name = "congruence-domain"

    def __init__(self) -> None:
        from repro.lattices.congruence import CongruenceLattice

        self.cong = CongruenceLattice()

    @property
    def bottom(self):
        return self.cong.bottom

    @property
    def top(self):
        return self.cong.top

    def leq(self, a, b):
        return self.cong.leq(a, b)

    def join(self, a, b):
        return self.cong.join(a, b)

    def meet(self, a, b):
        return self.cong.meet(a, b)

    def widen(self, a, b):
        return self.cong.widen(a, b)

    def narrow(self, a, b):
        return self.cong.narrow(a, b)

    def validate(self, a):
        self.cong.validate(a)

    def format(self, a):
        return self.cong.format(a)

    def from_const(self, n: int):
        return self.cong.from_const(n)

    def binop(self, op: str, a, b):
        cong = self.cong
        if a is None or b is None:
            return None
        if op == "+":
            return cong.add(a, b)
        if op == "-":
            return cong.sub(a, b)
        if op == "*":
            return cong.mul(a, b)
        if op in ("/", "%"):
            # Exact only for constants; C sign semantics break residue
            # reasoning in general.
            if a[0] == 0 and b[0] == 0:
                from repro.lang.interp import c_rem, trunc_div

                if b[1] == 0:
                    return None
                fn = trunc_div if op == "/" else c_rem
                return cong.from_const(fn(a[1], b[1]))
            return cong.top
        if op in _CMP:
            if a[0] == 0 and b[0] == 0:
                return cong.from_const(int(_CMP[op](a[1], b[1])))
            if op == "==" and cong.meet(a, b) is None:
                return cong.from_const(0)
            if op == "!=" and cong.meet(a, b) is None:
                return cong.from_const(1)
            return cong.top
        if op in ("&&", "||"):
            at, af = self.truthiness(a)
            bt, bf = self.truthiness(b)
            if op == "&&":
                may_true, may_false = at and bt, af or bf
            else:
                may_true, may_false = at or bt, af and bf
            if may_true and not may_false:
                return cong.from_const(1)
            if may_false and not may_true:
                return cong.from_const(0)
            return cong.top
        raise ValueError(f"unknown operator {op!r}")

    def unop(self, op: str, a):
        if a is None:
            return None
        if op == "-":
            return self.cong.neg(a)
        if op == "!":
            may_true, may_false = self.truthiness(a)
            if may_true and not may_false:
                return self.cong.from_const(0)
            if may_false and not may_true:
                return self.cong.from_const(1)
            return self.cong.top
        raise ValueError(f"unknown unary operator {op!r}")

    def truthiness(self, a):
        if a is None:
            return (False, False)
        m, r = a
        if m == 0:
            return (r != 0, r == 0)
        # m >= 1 denotes infinitely many values: non-zero ones always
        # exist; zero is denoted iff the residue is 0.
        return (True, r == 0)

    def _refine_true_cmp(self, op: str, a, b):
        if op == "==":
            met = self.cong.meet(a, b)
            return (met, met)
        return (a, b)

    def contains(self, a, n: int) -> bool:
        return self.cong.contains(a, n)


class ProductNumericDomain(NumericDomain):
    """The (optionally reduced) product of two numeric domains.

    Elements are pairs; all operations run component-wise and the result
    is passed through :meth:`reduce`, which subclasses or the built-in
    interval-x-congruence reduction can use to exchange information
    between the components.  Bottom-ness of either component collapses
    the pair to the canonical bottom.
    """

    name = "product-domain"

    def __init__(self, first: NumericDomain, second: NumericDomain) -> None:
        self.first = first
        self.second = second
        self.name = f"{first.name}*{second.name}"

    # -- reduction ------------------------------------------------------ #

    def reduce(self, a):
        """Normalise a pair; default: align bottoms only."""
        if a is None:
            return None
        x, y = a
        if self.first.is_bottom(x) or self.second.is_bottom(y):
            return None
        return (x, y)

    # -- lattice structure ----------------------------------------------- #

    @property
    def bottom(self):
        return None

    @property
    def top(self):
        return (self.first.top, self.second.top)

    def leq(self, a, b):
        if a is None:
            return True
        if b is None:
            return False
        return self.first.leq(a[0], b[0]) and self.second.leq(a[1], b[1])

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (self.first.join(a[0], b[0]), self.second.join(a[1], b[1]))

    def meet(self, a, b):
        if a is None or b is None:
            return None
        return self.reduce(
            (self.first.meet(a[0], b[0]), self.second.meet(a[1], b[1]))
        )

    def widen(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (self.first.widen(a[0], b[0]), self.second.widen(a[1], b[1]))

    def narrow(self, a, b):
        if a is None or b is None:
            return b
        return self.reduce(
            (self.first.narrow(a[0], b[0]), self.second.narrow(a[1], b[1]))
        )

    def validate(self, a):
        if a is None:
            return
        self.first.validate(a[0])
        self.second.validate(a[1])

    def format(self, a):
        if a is None:
            return "_|_"
        return f"({self.first.format(a[0])}, {self.second.format(a[1])})"

    # -- transformers ---------------------------------------------------- #

    def from_const(self, n: int):
        return (self.first.from_const(n), self.second.from_const(n))

    def binop(self, op: str, a, b):
        if a is None or b is None:
            return None
        return self.reduce(
            (
                self.first.binop(op, a[0], b[0]),
                self.second.binop(op, a[1], b[1]),
            )
        )

    def unop(self, op: str, a):
        if a is None:
            return None
        return self.reduce(
            (self.first.unop(op, a[0]), self.second.unop(op, a[1]))
        )

    def truthiness(self, a):
        if a is None:
            return (False, False)
        t1, f1 = self.first.truthiness(a[0])
        t2, f2 = self.second.truthiness(a[1])
        # A concrete outcome must be allowed by *both* components.
        return (t1 and t2, f1 and f2)

    def refine_cmp(self, op: str, a, b, assume: bool):
        if a is None or b is None:
            return (None, None)
        a1, b1 = self.first.refine_cmp(op, a[0], b[0], assume)
        a2, b2 = self.second.refine_cmp(op, a[1], b[1], assume)
        return (self.reduce((a1, a2)), self.reduce((b1, b2)))

    def contains(self, a, n: int) -> bool:
        if a is None:
            return False
        return self.first.contains(a[0], n) and self.second.contains(a[1], n)


class IntervalCongruenceDomain(ProductNumericDomain):
    """The classic *reduced* product of intervals and congruences.

    Reduction tightens interval bounds to the nearest residue-consistent
    integers (e.g. ``[1, 10]`` with ``0 (mod 4)`` reduces to ``[4, 8]``)
    and detects emptiness (no representative in range).
    """

    name = "interval-x-congruence"

    def __init__(self, thresholds=()) -> None:
        super().__init__(IntervalDomain(thresholds), CongruenceDomain())

    def reduce(self, a):
        from repro.lattices.interval import Interval

        pair = super().reduce(a)
        if pair is None:
            return None
        iv_val, cg_val = pair
        m, r = cg_val
        if m == 0:
            # Constant: the interval must contain it.
            if not self.first.contains(iv_val, r):
                return None
            return (self.first.from_const(r), cg_val)
        if m == 1:
            return pair
        lo, hi = iv_val.lo, iv_val.hi
        if lo != float("-inf"):
            lo = lo + (r - lo) % m
        if hi != float("inf"):
            hi = hi - (hi - r) % m
        if lo > hi:
            return None
        if lo == hi:
            return (Interval(lo, hi), self.second.from_const(int(lo)))
        return (Interval(lo, hi), cg_val)


class SignDomain(NumericDomain):
    """Sign analysis over the eight-element sign lattice.

    The cheapest relationally-blind domain with non-trivial branch
    pruning; finite height, so widening and narrowing are trivial.
    """

    name = "sign-domain"

    def __init__(self) -> None:
        from repro.lattices.sign import Sign

        self.sign = Sign()

    @property
    def bottom(self):
        return self.sign.bottom

    @property
    def top(self):
        return self.sign.top

    def leq(self, a, b):
        return self.sign.leq(a, b)

    def join(self, a, b):
        return self.sign.join(a, b)

    def meet(self, a, b):
        return self.sign.meet(a, b)

    def validate(self, a):
        self.sign.validate(a)

    def format(self, a):
        return self.sign.format(a)

    def from_const(self, n: int):
        return self.sign.from_const(n)

    # -- helpers ---------------------------------------------------------- #

    def _cases(self, a):
        """The atomic signs making up ``a``."""
        return [frozenset({atom}) for atom in a]

    def _abstract_binop(self, op: str, a, b):
        """Join the results over all atomic sign combinations, evaluated
        on representative integers (sound because each mini-C operator
        maps sign classes to a fixed set of sign classes)."""
        from repro.lang.interp import c_rem, trunc_div

        rep = {"-": (-2, -1), "0": (0,), "+": (1, 2)}
        out = self.sign.bottom
        for atom_a in a:
            for atom_b in b:
                for x in rep[atom_a]:
                    for y in rep[atom_b]:
                        try:
                            if op == "+":
                                value = x + y
                            elif op == "-":
                                value = x - y
                            elif op == "*":
                                value = x * y
                            elif op == "/":
                                value = trunc_div(x, y)
                            elif op == "%":
                                value = c_rem(x, y)
                            elif op in _CMP:
                                value = int(_CMP[op](x, y))
                            elif op == "&&":
                                value = int(bool(x) and bool(y))
                            elif op == "||":
                                value = int(bool(x) or bool(y))
                            else:
                                raise ValueError(f"unknown operator {op!r}")
                        except Exception:
                            continue
                        out = self.sign.join(out, self.from_const(value))
        return out

    def binop(self, op: str, a, b):
        if not a or not b:
            return self.sign.bottom
        out = self._abstract_binop(op, a, b)
        if op == "/":
            # Any division may truncate to zero (e.g. 1 / 2).
            out = self.sign.join(out, self.sign.ZERO)
        return out

    def unop(self, op: str, a):
        if not a:
            return self.sign.bottom
        if op == "-":
            flipped = set()
            for atom in a:
                flipped.add({"-": "+", "0": "0", "+": "-"}[atom])
            return frozenset(flipped)
        if op == "!":
            may_true, may_false = self.truthiness(a)
            out = self.sign.bottom
            if may_true:
                out = self.sign.join(out, self.sign.ZERO)
            if may_false:
                out = self.sign.join(out, self.sign.POS)
            return out
        raise ValueError(f"unknown unary operator {op!r}")

    def truthiness(self, a):
        may_false = "0" in a
        may_true = bool(a - {"0"})
        return (may_true, may_false)

    def _refine_true_cmp(self, op: str, a, b):
        if op not in _CMP:
            return (a, b)
        # Keep an atom exactly when some concrete pair from the two sign
        # classes satisfies the comparison; representatives with
        # magnitude <= 2 realise every satisfiable class combination.
        rep = {"-": (-2, -1), "0": (0,), "+": (1, 2)}
        fn = _CMP[op]
        new_a = frozenset(
            atom
            for atom in a
            if any(
                fn(x, y)
                for other in b
                for x in rep[atom]
                for y in rep[other]
            )
        )
        new_b = frozenset(
            other
            for other in b
            if any(
                fn(x, y)
                for atom in a
                for x in rep[atom]
                for y in rep[other]
            )
        )
        return (new_a, new_b)

    def contains(self, a, n: int) -> bool:
        return self.sign.leq(self.from_const(n), a)
