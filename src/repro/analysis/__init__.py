"""Abstract interpretation of mini-C, compiled to equation systems.

This package reproduces the analysis setting of the paper's evaluation:

* :mod:`~repro.analysis.values` -- numeric value domains pluggable into
  the analyses (intervals as in the paper, plus constants and signs);
* :mod:`~repro.analysis.transfer` -- abstract transformers for CFG edge
  instructions, including branch-guard refinement;
* :mod:`~repro.analysis.intra` -- intraprocedural flow-sensitive analysis
  of a single function as a finite equation system (unknowns = program
  points);
* :mod:`~repro.analysis.inter` -- interprocedural analysis as a
  side-effecting equation system: context-sensitive (or -insensitive)
  locals, flow-insensitive globals, solved locally by SLR+ exactly as in
  Goblint;
* :mod:`~repro.analysis.compare` -- per-program-point precision
  comparison between two analysis results (the measurement behind
  Figure 7).
"""

from repro.analysis.thresholds import collect_thresholds
from repro.analysis.values import (
    CongruenceDomain,
    ConstDomain,
    IntervalCongruenceDomain,
    IntervalDomain,
    NumericDomain,
    ProductNumericDomain,
    SignDomain,
)
from repro.analysis.intra import analyze_function
from repro.analysis.inter import (
    AnalysisResult,
    ContextPolicy,
    FiniteProjectionContext,
    FullValueContext,
    InsensitiveContext,
    InterAnalysis,
    analyze_program,
)
from repro.analysis.compare import (
    PrecisionComparison,
    compare_results,
    join_contexts,
)
from repro.analysis.verify import (
    AssertionReport,
    UnreachableReport,
    Verdict,
    check_assertions,
    find_unreachable,
    summarize,
)

__all__ = [
    "CongruenceDomain",
    "ConstDomain",
    "IntervalCongruenceDomain",
    "IntervalDomain",
    "NumericDomain",
    "ProductNumericDomain",
    "SignDomain",
    "collect_thresholds",
    "analyze_function",
    "AnalysisResult",
    "ContextPolicy",
    "FiniteProjectionContext",
    "FullValueContext",
    "InsensitiveContext",
    "InterAnalysis",
    "analyze_program",
    "PrecisionComparison",
    "compare_results",
    "join_contexts",
    "AssertionReport",
    "UnreachableReport",
    "Verdict",
    "check_assertions",
    "find_unreachable",
    "summarize",
]
