"""Per-program-point precision comparison between two analysis results.

This is the measurement behind the paper's Figure 7: for each program
point, compare the abstract states computed by two solving strategies and
count where one is *strictly* more precise than the other.  Contexts are
joined away first, so the comparison is per (function, node) -- the same
granularity the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.inter import AnalysisResult
from repro.lattices.lifted import LiftedBottom


def join_contexts(result: AnalysisResult) -> Dict[Tuple[str, object], object]:
    """Project the analysis result to per-(function, node) states."""
    merged: Dict[Tuple[str, object], object] = {}
    for pp, env in result.point_envs.items():
        key = (pp.fn, pp.node)
        env_lat = result.lattice.branch(("env", pp.fn))
        if key in merged:
            merged[key] = env_lat.join(merged[key], env)
        else:
            merged[key] = env
    return merged


@dataclass
class PrecisionComparison:
    """Point-wise comparison of analysis ``a`` against analysis ``b``."""

    total: int = 0
    #: Points where a is strictly more precise (a < b).
    better: int = 0
    #: Points where b is strictly more precise (b < a).
    worse: int = 0
    equal: int = 0
    incomparable: int = 0
    #: The (function, node) keys of the strictly improved points -- one
    #: entry per point counted in :attr:`better`, in comparison order.
    better_points: List[Tuple[str, object]] = field(default_factory=list)

    @property
    def improved_fraction(self) -> float:
        """Fraction of program points where ``a`` is strictly better."""
        if self.total == 0:
            return 0.0
        return self.better / self.total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pct = 100.0 * self.improved_fraction
        return (
            f"{self.better}/{self.total} points improved ({pct:.1f}%), "
            f"{self.worse} worse, {self.equal} equal, "
            f"{self.incomparable} incomparable"
        )


def compare_results(
    a: AnalysisResult, b: AnalysisResult, count_globals: bool = True
) -> PrecisionComparison:
    """Compare analysis ``a`` against ``b`` point by point.

    Points that are unreachable (bottom) in *both* results are skipped --
    the paper counts program points carrying information.  Global
    variables are compared as additional points when ``count_globals``.
    """
    merged_a = join_contexts(a)
    merged_b = join_contexts(b)
    comparison = PrecisionComparison()
    for key in sorted(
        set(merged_a) | set(merged_b),
        key=lambda k: (k[0], getattr(k[1], "index", 0)),
    ):
        fn = key[0]
        env_lat = a.lattice.branch(("env", fn))
        ea = merged_a.get(key, LiftedBottom)
        eb = merged_b.get(key, LiftedBottom)
        if ea is LiftedBottom and eb is LiftedBottom:
            continue
        _classify(comparison, env_lat, ea, eb, key)
    if count_globals:
        names = set(a.globals) | set(b.globals)
        for name in sorted(names):
            va = a.globals.get(name, a.domain.bottom)
            vb = b.globals.get(name, b.domain.bottom)
            if a.domain.is_bottom(va) and b.domain.is_bottom(vb):
                continue
            _classify(comparison, a.domain, va, vb, (f"<global {name}>", None))
    return comparison


def _classify(comparison, lattice, ea, eb, key) -> None:
    comparison.total += 1
    a_le_b = lattice.leq(ea, eb)
    b_le_a = lattice.leq(eb, ea)
    if a_le_b and b_le_a:
        comparison.equal += 1
    elif a_le_b:
        comparison.better += 1
        comparison.better_points.append(key)
    elif b_le_a:
        comparison.worse += 1
    else:
        comparison.incomparable += 1
