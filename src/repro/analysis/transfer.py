"""Abstract transformers for CFG edge instructions.

The abstract state of a function is either ``LiftedBottom`` (program point
unreachable) or a :class:`~repro.lattices.maplat.FrozenMap` binding every
scalar local and every (smashed) array to a value of the chosen numeric
domain.  Arrays are *smashed*: one abstract value covers all cells, updated
weakly; this matches the paper's setting where the interesting precision
questions live in the scalar loop counters.

Globals are not part of the local state: reads and writes go through the
:class:`GlobalsAccess` callbacks, which the interprocedural analysis wires
to flow-insensitive unknowns (side effects), and the intraprocedural
analysis wires back into the local state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet

from repro.analysis.values import NumericDomain
from repro.lang import astnodes as ast
from repro.lang.cfg import (
    AssertInstr,
    CallInstr,
    Guard,
    Nop,
    SetLocal,
    StoreArray,
)
from repro.lattices.lifted import LiftedBottom
from repro.lattices.maplat import FrozenMap


class TransferError(Exception):
    """Raised when an instruction cannot be handled (e.g. a call edge in a
    purely intraprocedural transfer)."""


@dataclass
class GlobalsAccess:
    """How the transfer reaches global variables."""

    read: Callable[[str], object]
    write: Callable[[str, object], None]
    #: Names of global arrays (reads/writes are weak for these too).
    array_names: FrozenSet[str] = frozenset()


@dataclass
class TransferContext:
    """Everything an edge transformer needs besides the state itself."""

    domain: NumericDomain
    #: Scalar keys of the local state.
    scalars: FrozenSet[str]
    #: Array keys of the local state.
    arrays: FrozenSet[str]
    globals: GlobalsAccess


# --------------------------------------------------------------------- #
# Expression evaluation.                                                #
# --------------------------------------------------------------------- #

def eval_expr(tc: TransferContext, env: FrozenMap, expr: ast.Expr):
    """Evaluate a call-free expression to an abstract value."""
    dom = tc.domain
    if isinstance(expr, ast.IntLit):
        return dom.from_const(expr.value)
    if isinstance(expr, ast.Var):
        if expr.name in tc.scalars:
            return env[expr.name]
        return tc.globals.read(expr.name)
    if isinstance(expr, ast.ArrayRef):
        index = eval_expr(tc, env, expr.index)
        if dom.is_bottom(index):
            return dom.bottom
        if expr.name in tc.arrays:
            return env[expr.name]
        return tc.globals.read(expr.name)
    if isinstance(expr, ast.Unary):
        return dom.unop(expr.op, eval_expr(tc, env, expr.operand))
    if isinstance(expr, ast.Binary):
        left = eval_expr(tc, env, expr.left)
        right = eval_expr(tc, env, expr.right)
        return dom.binop(expr.op, left, right)
    if isinstance(expr, ast.Call):
        raise TransferError("call in expression position")
    raise TransferError(f"unexpected expression {expr!r}")


# --------------------------------------------------------------------- #
# Guard refinement.                                                     #
# --------------------------------------------------------------------- #

def refine(tc: TransferContext, env, cond: ast.Expr, assume: bool):
    """Restrict ``env`` to states where ``cond`` is ``assume``.

    Returns the refined environment, or ``LiftedBottom`` when the guard is
    definitely not satisfiable.  Refinement only ever *shrinks* local
    scalar values (globals are flow-insensitive and cannot be refined).
    """
    if env is LiftedBottom:
        return LiftedBottom
    dom = tc.domain
    value = eval_expr(tc, env, cond)
    may_true, may_false = dom.truthiness(value)
    if assume and not may_true:
        return LiftedBottom
    if not assume and not may_false:
        return LiftedBottom
    return _refine_structural(tc, env, cond, assume)


def _refine_structural(
    tc: TransferContext, env: FrozenMap, cond: ast.Expr, assume: bool
):
    dom = tc.domain
    if isinstance(cond, ast.Unary) and cond.op == "!":
        return _refine_structural(tc, env, cond.operand, not assume)
    if isinstance(cond, ast.Binary) and cond.op in ("&&", "||"):
        both = (cond.op == "&&") is assume
        if both:
            # (a && b) true, or (a || b) false: both constraints apply.
            env = refine(tc, env, cond.left, assume)
            if env is LiftedBottom:
                return LiftedBottom
            return refine(tc, env, cond.right, assume)
        # Disjunctive information: no refinement (sound).
        return env
    if isinstance(cond, ast.Binary) and cond.op in ("<", "<=", ">", ">=", "==", "!="):
        left_v = eval_expr(tc, env, cond.left)
        right_v = eval_expr(tc, env, cond.right)
        new_left, new_right = dom.refine_cmp(cond.op, left_v, right_v, assume)
        env = _bind_refined(tc, env, cond.left, new_left)
        if env is LiftedBottom:
            return LiftedBottom
        return _bind_refined(tc, env, cond.right, new_right)
    if isinstance(cond, (ast.Var, ast.ArrayRef)):
        value = eval_expr(tc, env, cond)
        zero = dom.from_const(0)
        op = "!=" if assume else "=="
        refined, _ = dom.refine_cmp(op, value, zero, True)
        return _bind_refined(tc, env, cond, refined)
    # Literals and arithmetic conditions: the truthiness pre-check above
    # already handled definite outcomes.
    return env


def _bind_refined(tc: TransferContext, env, target: ast.Expr, value):
    """Write a refined value back to the expression it came from, when the
    expression is a local scalar (the only refinable storage)."""
    if env is LiftedBottom:
        return LiftedBottom
    if tc.domain.is_bottom(value):
        return LiftedBottom
    if isinstance(target, ast.Var) and target.name in tc.scalars:
        return env.set(target.name, value)
    return env


# --------------------------------------------------------------------- #
# Instruction transfer.                                                 #
# --------------------------------------------------------------------- #

def apply_instr(tc: TransferContext, env, instr):
    """The abstract effect of one edge instruction.

    ``env`` may be ``LiftedBottom``; transformers are strict in it.
    :class:`CallInstr` is *not* handled here -- the interprocedural
    analysis treats call edges itself.
    """
    if env is LiftedBottom:
        return LiftedBottom
    if isinstance(instr, Nop):
        return env
    if isinstance(instr, Guard):
        return refine(tc, env, instr.cond, instr.assume)
    if isinstance(instr, AssertInstr):
        # Executions only continue past a passing assertion; the
        # verification client separately reports whether the condition is
        # provably true.
        return refine(tc, env, instr.cond, True)
    if isinstance(instr, SetLocal):
        value = eval_expr(tc, env, instr.expr)
        if tc.domain.is_bottom(value):
            return LiftedBottom
        if instr.target in tc.scalars:
            return env.set(instr.target, value)
        tc.globals.write(instr.target, value)
        return env
    if isinstance(instr, StoreArray):
        index = eval_expr(tc, env, instr.index)
        value = eval_expr(tc, env, instr.value)
        if tc.domain.is_bottom(index) or tc.domain.is_bottom(value):
            return LiftedBottom
        if instr.name in tc.arrays:
            # Smashed weak update: the array may retain old contents.
            return env.set(instr.name, tc.domain.join(env[instr.name], value))
        tc.globals.write(instr.name, value)
        return env
    if isinstance(instr, CallInstr):
        raise TransferError(
            "call edges must be handled by the interprocedural analysis"
        )
    raise TransferError(f"unexpected instruction {instr!r}")
