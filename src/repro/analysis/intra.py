"""Intraprocedural flow-sensitive analysis of a single function.

Program points become the unknowns of a finite equation system: for every
node ``v``, ``env(v) = join over incoming edges (u, instr, v) of
transfer(instr)(env(u))``, with the entry node pinned to the initial
environment.  Globals are folded *into* the local state (flow-sensitive),
which is sound exactly because the analysed function performs no calls --
the builder rejects call edges.

This is the workhorse of the solver-precision unit tests; the paper-scale
experiments use the interprocedural analysis in
:mod:`repro.analysis.inter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.transfer import (
    GlobalsAccess,
    TransferContext,
    TransferError,
    apply_instr,
)
from repro.analysis.values import NumericDomain
from repro.eqs.system import DictSystem
from repro.lang.cfg import CallInstr, ControlFlowGraph, Node
from repro.lattices.lifted import Lifted, LiftedBottom
from repro.lattices.envlat import ArrayEnvLattice
from repro.lattices.maplat import FrozenMap
from repro.solvers import Combine, SolverResult, WarrowCombine
from repro.solvers.ordering import dfs_priority_order
from repro.solvers.registry import resolve_solver


@dataclass
class IntraResult:
    """Result of an intraprocedural analysis."""

    envs: Dict[Node, object]
    solver_result: SolverResult
    system: DictSystem
    env_lattice: Lifted

    def env_at(self, node: Node):
        """The abstract state at ``node`` (``LiftedBottom`` if unreachable).

        Unreachable program points come in two shapes and both answer
        bottom: nodes the solver visited and mapped to ``LiftedBottom``,
        and unknowns a demand-driven solver never evaluated at all (so
        they have no ``envs`` entry, but are still points of the
        system).  A node that is *not* an unknown of the analysed system
        -- a node of some other function, or a stale reference after
        recompilation -- is a caller bug, and claiming "unreachable" for
        it would silently mask that; it raises :class:`KeyError` naming
        the node instead.
        """
        try:
            return self.envs[node]
        except KeyError:
            pass
        if node in set(self.system.unknowns):
            return LiftedBottom
        raise KeyError(
            f"node {node!r} is not a program point of the analysed system"
        )


def build_intra_system(
    cfg: ControlFlowGraph,
    fn_name: str,
    domain: NumericDomain,
    entry_env: Optional[FrozenMap] = None,
) -> tuple:
    """Build the finite equation system of one call-free function.

    :returns: ``(system, env_lattice, fn)``.
    """
    fn = cfg.functions[fn_name]
    for edge in fn.edges:
        if isinstance(edge.instr, CallInstr):
            raise TransferError(
                f"{fn_name!r} performs calls; use the interprocedural "
                f"analysis instead"
            )
    scalars = set(fn.locals) | set(cfg.global_scalars)
    arrays = set(fn.arrays) | set(cfg.global_arrays)
    keys = sorted(scalars) + sorted(arrays)
    env_lat = Lifted(ArrayEnvLattice(keys, domain))

    def fail_global(name: str):
        raise TransferError(f"unexpected global access {name!r}")

    tc = TransferContext(
        domain=domain,
        scalars=frozenset(scalars),
        arrays=frozenset(arrays),
        globals=GlobalsAccess(read=fail_global, write=fail_global),
    )

    if entry_env is None:
        bindings = {k: domain.from_const(0) for k in keys}
        for g, init in cfg.global_scalars.items():
            bindings[g] = domain.from_const(init)
        for p in fn.params:
            bindings[p] = domain.top
        entry_env = env_lat.inner.make(bindings)

    equations = {}
    for node in fn.nodes:
        if node == fn.entry:
            equations[node] = ((lambda get: entry_env), [])
            continue
        in_edges = fn.in_edges(node)

        def rhs(get, in_edges=tuple(in_edges)):
            total = LiftedBottom
            for edge in in_edges:
                out = apply_instr(tc, get(edge.src), edge.instr)
                total = env_lat.join(total, out)
            return total

        equations[node] = (rhs, [edge.src for edge in in_edges])
    system = DictSystem(env_lat, equations)
    return system, env_lat, fn


def analyze_function(
    cfg: ControlFlowGraph,
    fn_name: str,
    domain: NumericDomain,
    op: Optional[Combine] = None,
    solve="sw",
    entry_env: Optional[FrozenMap] = None,
    max_evals: Optional[int] = None,
) -> IntraResult:
    """Analyse one call-free function flow-sensitively.

    :param cfg: the program's control-flow graphs.
    :param fn_name: the function to analyse.
    :param domain: the numeric value domain (e.g. :class:`IntervalDomain`).
    :param op: the update operator (default: the combined operator).
    :param solve: a generic solver taking ``(system, op, order, max_evals)``
        -- either a callable or a registry name such as ``"sw"``.
    :param entry_env: the abstract state at function entry (default: all
        locals 0, parameters unconstrained, globals at their initialisers).
    :param max_evals: evaluation budget.
    """
    solve = resolve_solver(solve, scope="global", generic=True)
    system, env_lat, fn = build_intra_system(cfg, fn_name, domain, entry_env)
    if op is None:
        op = WarrowCombine(env_lat)
    # The reversed-DFS order (deepest program points first, as SLR's keys
    # induce dynamically) lets the combined operator narrow a loop only
    # after its body has caught up; a heads-first order can trigger
    # premature narrowing and a slow widen/narrow ping-pong.
    order = dfs_priority_order([fn.exit], system.deps)
    result = solve(system, op, order=order, max_evals=max_evals)
    return IntraResult(
        envs=dict(result.sigma),
        solver_result=result,
        system=system,
        env_lattice=env_lat,
    )
