"""Automatic widening-threshold collection from program text.

A standard precision technique orthogonal to the paper's contribution
(and explicitly compatible with it): instead of widening unstable interval
bounds straight to infinity, first try the constants that appear in the
program -- loop bounds, array sizes, comparison limits.  This often
rescues precision that even interleaved narrowing cannot recover (e.g.
the outer counter of a nested loop, over-widened at the *inner* head
whose self-join blocks narrowing).

Usage::

    thresholds = collect_thresholds(cfg)
    domain = IntervalDomain(thresholds=thresholds)
"""

from __future__ import annotations

from typing import Set

from repro.lang import astnodes as ast
from repro.lang.cfg import (
    AssertInstr,
    CallInstr,
    ControlFlowGraph,
    Guard,
    SetLocal,
    StoreArray,
)


def literals_in_expr(expr: ast.Expr, out: Set[int]) -> None:
    """Collect every integer literal occurring in ``expr``."""
    if isinstance(expr, ast.IntLit):
        out.add(expr.value)
        return
    if isinstance(expr, ast.Unary):
        if expr.op == "-" and isinstance(expr.operand, ast.IntLit):
            out.add(-expr.operand.value)
            return
        literals_in_expr(expr.operand, out)
        return
    if isinstance(expr, ast.Binary):
        literals_in_expr(expr.left, out)
        literals_in_expr(expr.right, out)
        return
    if isinstance(expr, ast.ArrayRef):
        literals_in_expr(expr.index, out)
        return
    if isinstance(expr, ast.Call):
        for arg in expr.args:
            literals_in_expr(arg, out)


def collect_thresholds(
    cfg: ControlFlowGraph, margin: int = 1, limit: int = 64
) -> list:
    """Collect widening thresholds from a program's constants.

    Gathers the integer literals of all guard conditions, assignments and
    assertions, plus array sizes and global initialisers.  Each constant
    ``c`` contributes ``c - margin``, ``c`` and ``c + margin``: loop
    bounds usually stabilise one step beyond the literal (``i < 10``
    leaves ``i`` at 10 after the loop), and the margin covers both
    directions.  The result is capped at the ``limit`` smallest-magnitude
    thresholds to bound widening chains.
    """
    constants: Set[int] = set()
    for fn in cfg.functions.values():
        for edge in fn.edges:
            instr = edge.instr
            if isinstance(instr, Guard):
                literals_in_expr(instr.cond, constants)
            elif isinstance(instr, AssertInstr):
                literals_in_expr(instr.cond, constants)
            elif isinstance(instr, SetLocal):
                literals_in_expr(instr.expr, constants)
            elif isinstance(instr, StoreArray):
                literals_in_expr(instr.index, constants)
                literals_in_expr(instr.value, constants)
            elif isinstance(instr, CallInstr):
                for arg in instr.args:
                    literals_in_expr(arg, constants)
        for size in fn.arrays.values():
            constants.add(size)
    for init in cfg.global_scalars.values():
        constants.add(init)
    for size in cfg.global_arrays.values():
        constants.add(size)

    widened: Set[int] = set()
    for c in constants:
        widened.update((c - margin, c, c + margin))
    return sorted(widened, key=abs)[:limit]
