"""Interprocedural analysis as a side-effecting equation system.

This reproduces the analysis architecture of the paper's evaluation
(Goblint's): *context-sensitive* propagation of local states along
control-flow edges, combined with *flow-insensitive* global variables that
receive their values through side effects (Section 6, Example 7).

Unknowns
--------

* ``PP(fn, ctx, node)`` -- the abstract local state of function ``fn`` at
  program point ``node``, analysed in calling context ``ctx``.  The value
  is either ``LiftedBottom`` (unreachable) or a map binding the function's
  locals and smashed arrays.
* ``GV(name)`` -- the flow-insensitive value of global ``name``.

The two kinds of unknowns carry different lattices, glued together by a
:class:`~repro.lattices.union.TaggedUnionLattice` so that a single generic
solver (SLR+) drives the whole analysis.

Right-hand sides
----------------

The right-hand side of ``PP(fn, ctx, v)`` joins, over all incoming edges
``(u, instr, v)``, the abstract effect of ``instr`` applied to
``get(PP(fn, ctx, u))``.  Three situations create the interactions the
paper studies:

* reading a global evaluates ``get(GV(g))`` -- a dynamic dependency;
* writing a global emits ``side(GV(g), value)`` -- a side effect whose
  contributions the solver combines per-origin (Example 8);
* a call edge computes the callee's entry state, derives the context
  ``ctx'`` via the :class:`ContextPolicy`, *side-effects* the callee's
  entry unknown ``PP(callee, ctx', entry)``, and reads the exit unknown
  ``PP(callee, ctx', exit)`` for the return value.

Because the context is computed from solved *values*, the system is
non-monotonic and its unknown space is discovered dynamically -- exactly
the regime for which the paper designed SLR+ with the combined operator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

from repro.analysis.transfer import (
    GlobalsAccess,
    TransferContext,
    apply_instr,
    eval_expr,
)
from repro.analysis.values import NumericDomain
from repro.eqs.side import FunSideSystem
from repro.lang.cfg import (
    CallInstr,
    ControlFlowGraph,
    FunctionCFG,
    Node,
    RETURN_SLOT,
)
from repro.lattices.lifted import Lifted, LiftedBottom
from repro.lattices.envlat import ArrayEnvLattice
from repro.lattices.maplat import FrozenMap
from repro.lattices.union import TaggedUnionLattice, UNION_BOT
from repro.solvers import Combine, NarrowCombine, WarrowCombine, WidenCombine
from repro.solvers.registry import resolve_solver
from repro.solvers.slr_side import SideResult


# --------------------------------------------------------------------- #
# Unknowns.                                                             #
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class PP:
    """A program point in a calling context."""

    fn: str
    ctx: Hashable
    node: Node

    def __repr__(self) -> str:
        return f"PP({self.fn}@{self.node.index}, ctx={self.ctx!r})"


@dataclass(frozen=True, slots=True)
class GV:
    """A flow-insensitive global variable."""

    name: str

    def __repr__(self) -> str:
        return f"GV({self.name})"


#: Union tags.
_VAL = "val"


def _env_tag(fn: str) -> tuple:
    return ("env", fn)


# --------------------------------------------------------------------- #
# Context policies.                                                     #
# --------------------------------------------------------------------- #

class ContextPolicy(ABC):
    """Maps a callee and its abstract entry state to a context value.

    Contexts must be hashable; they become part of the unknowns.
    """

    name = "policy"

    @abstractmethod
    def context(self, fn: FunctionCFG, entry_env: FrozenMap) -> Hashable:
        """The context under which to analyse ``fn`` for this entry state."""


class InsensitiveContext(ContextPolicy):
    """One context per function: classic context-insensitive analysis."""

    name = "insensitive"

    def context(self, fn: FunctionCFG, entry_env: FrozenMap) -> Hashable:
        return None


class FullValueContext(ContextPolicy):
    """Full value contexts: the tuple of abstract parameter values.

    The number of contexts is *a priori* unbounded -- termination rests on
    the solver and the operator (Theorem 4 for monotone systems; the
    paper's experiments explore exactly this regime).
    """

    name = "full-value"

    def context(self, fn: FunctionCFG, entry_env: FrozenMap) -> Hashable:
        return tuple((p, entry_env[p]) for p in fn.params)


class FiniteProjectionContext(ContextPolicy):
    """Contexts drawn from a finite abstraction of the parameter values.

    This mirrors the paper's "context which includes all non-interval
    values of locals": the context distinguishes calls by a coarse,
    finite projection (e.g. signs or parities) while the interval part
    stays context-local.
    """

    def __init__(
        self, project: Callable[[object], Hashable], name: str = "projected"
    ) -> None:
        self.project = project
        self.name = name

    def context(self, fn: FunctionCFG, entry_env: FrozenMap) -> Hashable:
        return tuple((p, self.project(entry_env[p])) for p in fn.params)


def sign_context(domain: NumericDomain) -> FiniteProjectionContext:
    """The sign-projection policy over an interval domain."""
    from repro.lattices.sign import Sign

    sign = Sign()
    return FiniteProjectionContext(sign.from_interval, name="sign")


# --------------------------------------------------------------------- #
# The analysis.                                                         #
# --------------------------------------------------------------------- #

@dataclass
class AnalysisResult:
    """The outcome of an interprocedural analysis run."""

    #: Abstract local state per (function, context, node).
    point_envs: Dict[PP, object]
    #: Final flow-insensitive global values.
    globals: Dict[str, object]
    #: The raw solver result (stats, contribs, keys, ...).
    solver_result: SideResult
    #: The union lattice the system was solved over.
    lattice: TaggedUnionLattice
    #: The analysed CFGs.
    cfg: ControlFlowGraph
    domain: NumericDomain

    @property
    def contexts_per_function(self) -> Dict[str, int]:
        """Number of distinct contexts discovered per function."""
        seen: Dict[str, set] = {}
        for pp in self.point_envs:
            seen.setdefault(pp.fn, set()).add(pp.ctx)
        return {fn: len(ctxs) for fn, ctxs in seen.items()}

    @property
    def unknown_count(self) -> int:
        """Total unknowns encountered by the solver (paper's 'Unknowns')."""
        return self.solver_result.stats.unknowns

    def env_at(self, fn: str, node: Node):
        """Join of the abstract state at ``node`` over all contexts."""
        env_lat = self.lattice.branch(_env_tag(fn))
        total = LiftedBottom
        for pp, env in self.point_envs.items():
            if pp.fn == fn and pp.node == node:
                total = env_lat.join(total, env)
        return total


class InterAnalysis:
    """Builder/driver for the interprocedural side-effecting system."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        domain: NumericDomain,
        policy: Optional[ContextPolicy] = None,
        entry_fn: str = "main",
    ) -> None:
        """Prepare the analysis of ``cfg`` over ``domain``.

        :param policy: the context policy (default: context-insensitive).
        :param entry_fn: the program entry point.
        """
        self.cfg = cfg
        self.domain = domain
        self.policy = policy if policy is not None else InsensitiveContext()
        self.entry_fn = entry_fn
        if entry_fn not in cfg.functions:
            raise ValueError(f"no entry function {entry_fn!r}")
        branches: Dict[Hashable, object] = {_VAL: domain}
        self._env_lats: Dict[str, Lifted] = {}
        for name, fn in cfg.functions.items():
            keys = sorted(fn.locals) + sorted(fn.arrays)
            env_lat = Lifted(ArrayEnvLattice(keys, domain))
            self._env_lats[name] = env_lat
            branches[_env_tag(name)] = env_lat
        self.lattice = TaggedUnionLattice(branches)
        self._global_arrays = frozenset(cfg.global_arrays)

    # ------------------------------------------------------------- #
    # System construction.                                          #
    # ------------------------------------------------------------- #

    def root(self) -> PP:
        """The unknown to query: the entry function's exit point."""
        fn = self.cfg.functions[self.entry_fn]
        ctx = self.policy.context(fn, self._initial_env(fn, None))
        return PP(self.entry_fn, ctx, fn.exit)

    def system(self) -> FunSideSystem:
        """The side-effecting equation system of the whole program."""
        return FunSideSystem(self.lattice, self._rhs_of)

    def _initial_env(self, fn: FunctionCFG, args: Optional[List[object]]) -> FrozenMap:
        dom = self.domain
        bindings = {k: dom.from_const(0) for k in fn.locals}
        for k in fn.arrays:
            bindings[k] = dom.from_const(0)
        if args is None:
            # Entry function: parameters unconstrained.
            for p in fn.params:
                bindings[p] = dom.top
        else:
            for p, v in zip(fn.params, args):
                bindings[p] = v
        return self._env_lats[fn.name].inner.make(bindings)

    def _rhs_of(self, unknown):
        if isinstance(unknown, GV):
            # Globals receive their value purely through side effects.
            return lambda get, side: UNION_BOT
        if isinstance(unknown, PP):
            return self._pp_rhs(unknown)
        raise KeyError(unknown)

    def _pp_rhs(self, pp: PP):
        fn = self.cfg.functions[pp.fn]
        env_lat = self._env_lats[pp.fn]
        tag = _env_tag(pp.fn)
        dom = self.domain
        is_program_entry = pp.fn == self.entry_fn and pp.node == fn.entry

        def rhs(get, side):
            # Side effects are buffered and joined per target: one rhs
            # evaluation may write the same global on several in-edges,
            # but SLR+ accepts at most one side effect per target.
            buffer: Dict[object, object] = {}

            def write_global(name: str, value) -> None:
                key = GV(name)
                old = buffer.get(key, dom.bottom)
                if name in self._global_arrays:
                    # Weak update: global arrays keep their zero init.
                    value = dom.join(value, dom.from_const(0))
                buffer[key] = dom.join(old, value)

            def read_global(name: str):
                wrapped = get(GV(name))
                if wrapped == UNION_BOT:
                    return dom.bottom
                return self.lattice.payload(wrapped)

            tc = TransferContext(
                domain=dom,
                scalars=frozenset(fn.locals),
                arrays=frozenset(fn.arrays),
                globals=GlobalsAccess(read=read_global, write=write_global),
            )

            def get_env(node: Node):
                wrapped = get(PP(pp.fn, pp.ctx, node))
                if wrapped == UNION_BOT:
                    return LiftedBottom
                return self.lattice.payload(wrapped)

            if is_program_entry:
                # The program entry seeds the globals with their static
                # initialisers (the paper's Example 9: "the initialization
                # g = 0 is detected first").
                for g, init in self.cfg.global_scalars.items():
                    write_global(g, dom.from_const(init))
                for g in self.cfg.global_arrays:
                    buffer[GV(g)] = dom.join(
                        buffer.get(GV(g), dom.bottom), dom.from_const(0)
                    )
                total = self._initial_env(fn, None)
            else:
                total = LiftedBottom
                for edge in fn.in_edges(pp.node):
                    env = get_env(edge.src)
                    if env is LiftedBottom:
                        continue
                    if isinstance(edge.instr, CallInstr):
                        out = self._transfer_call(
                            tc, env, edge.instr, get, buffer
                        )
                    else:
                        out = apply_instr(tc, env, edge.instr)
                    total = env_lat.join(total, out)

            # Entry nodes of non-entry functions receive their states via
            # side effects from call edges; their own rhs contributes
            # nothing beyond those (handled by the solver's contribution
            # joining).
            for key, value in buffer.items():
                if isinstance(key, GV):
                    side(key, self.lattice.inject(_VAL, value))
                else:
                    # A callee entry state from a call edge.
                    side(key, self.lattice.inject(_env_tag(key.fn), value))
            if total is LiftedBottom:
                return UNION_BOT
            return self.lattice.inject(tag, total)

        return rhs

    def _transfer_call(
        self,
        tc: TransferContext,
        env: FrozenMap,
        instr: CallInstr,
        get,
        buffer: Dict[object, object],
    ):
        dom = self.domain
        callee = self.cfg.functions[instr.func]
        args = [eval_expr(tc, env, a) for a in instr.args]
        if any(dom.is_bottom(a) for a in args):
            return LiftedBottom
        entry_env = self._initial_env(callee, args)
        ctx = self.policy.context(callee, entry_env)
        entry_pp = PP(instr.func, ctx, callee.entry)
        # The callee's entry unknown is an env-typed side-effect target;
        # multiple call edges in one rhs evaluation buffer-join just like
        # globals do.
        callee_env_lat = self._env_lats[instr.func]
        old = buffer.get(entry_pp)
        if old is None:
            buffer[entry_pp] = entry_env
        else:
            buffer[entry_pp] = callee_env_lat.join(old, entry_env)
        wrapped_exit = get(PP(instr.func, ctx, callee.exit))
        if wrapped_exit == UNION_BOT:
            return LiftedBottom
        exit_env = self.lattice.payload(wrapped_exit)
        if exit_env is LiftedBottom:
            return LiftedBottom
        if instr.target is None:
            return env
        ret = exit_env[RETURN_SLOT]
        if dom.is_bottom(ret):
            return LiftedBottom
        if instr.target in tc.scalars:
            return env.set(instr.target, ret)
        tc.globals.write(instr.target, ret)
        return env


# --------------------------------------------------------------------- #
# Driver functions.                                                     #
# --------------------------------------------------------------------- #

def collect_analysis(
    analysis: InterAnalysis, result: SideResult
) -> AnalysisResult:
    """Package a raw solver result as an :class:`AnalysisResult`.

    Public so callers that drive the solver themselves (the supervision
    layer, the batch farm) can still use the assertion checker and the
    precision comparators, which consume :class:`AnalysisResult`.
    """
    return _collect(analysis, result)


def _collect(analysis: InterAnalysis, result: SideResult) -> AnalysisResult:
    point_envs: Dict[PP, object] = {}
    global_values: Dict[str, object] = {}
    lat = analysis.lattice
    for unknown, wrapped in result.sigma.items():
        if isinstance(unknown, PP):
            point_envs[unknown] = (
                LiftedBottom if wrapped == UNION_BOT else lat.payload(wrapped)
            )
        elif isinstance(unknown, GV):
            global_values[unknown.name] = (
                analysis.domain.bottom
                if wrapped == UNION_BOT
                else lat.payload(wrapped)
            )
    return AnalysisResult(
        point_envs=point_envs,
        globals=global_values,
        solver_result=result,
        lattice=lat,
        cfg=analysis.cfg,
        domain=analysis.domain,
    )


def analyze_program(
    cfg: ControlFlowGraph,
    domain: NumericDomain,
    policy: Optional[ContextPolicy] = None,
    op: Optional[Combine] = None,
    entry_fn: str = "main",
    max_evals: Optional[int] = None,
    widen_delay: int = 1,
    solver="slr+",
    op_spec: Optional[str] = None,
    observers=(),
) -> AnalysisResult:
    """Run the interprocedural analysis with a single solver pass.

    :param op: the update operator (default: the combined operator over
        the analysis' union lattice -- the paper's recommended setup).
    :param op_spec: alternatively, a strategy spec string
        (:mod:`repro.strategies`) resolved against the analysis' own
        lattice and CFG, e.g. ``"warrow:delay=2"`` or ``"wpoint"``.
        Mutually exclusive with ``op``; phased specs are rejected here
        (use :func:`analyze_program_twophase`).
    :param widen_delay: how many growing updates per unknown use plain
        join before widening kicks in (applies to the default operator
        and to specs that take a ``delay`` the spec itself does not
        set; matched by :func:`analyze_program_twophase` so that
        precision comparisons isolate the *operator*, not the widening
        schedule).
    :param solver: a side-effecting local solver, as a callable or a
        registry name (default: ``"slr+"``).
    :param observers: extra engine observers threaded into the solve.
    """
    solve = resolve_solver(solver, side_effecting=True, scope="local")
    analysis = InterAnalysis(cfg, domain, policy, entry_fn)
    if op_spec is not None:
        if op is not None:
            raise ValueError("pass either op or op_spec, not both")
        from repro.strategies.registry import BuildContext, build_combine

        op = build_combine(
            op_spec,
            analysis.lattice,
            ctx=BuildContext(cfg=cfg),
            widen_delay=widen_delay,
        )
    if op is None:
        op = WarrowCombine(analysis.lattice, delay=widen_delay)
    result = solve(
        analysis.system(),
        op,
        analysis.root(),
        max_evals=max_evals,
        observers=observers,
    )
    return _collect(analysis, result)


def analyze_program_twophase(
    cfg: ControlFlowGraph,
    domain: NumericDomain,
    policy: Optional[ContextPolicy] = None,
    entry_fn: str = "main",
    max_evals: Optional[int] = None,
    track_contributions: bool = False,
    widen_delay: int = 1,
    solver="slr+",
    observers=(),
) -> AnalysisResult:
    """The classic baseline: a complete widening pass, then a narrowing pass.

    Phase 1 solves the side-effecting system with ``op = widen``.  Phase 2
    re-solves it with ``op = narrow``, *starting from the phase-1
    solution* (every unknown is initialised to its phase-1 value).

    By default the baseline also uses the *classical* side-effect
    treatment (``track_contributions=False``): contributions to globals
    are accumulated irreversibly, so the narrowing phase cannot improve
    them -- this is exactly the situation the paper's Example 8 fixes with
    per-origin contribution sets.  Pass ``track_contributions=True`` for a
    stronger baseline that separates phases but keeps the new side-effect
    machinery.
    """
    solve = resolve_solver(solver, side_effecting=True, scope="local")
    analysis = InterAnalysis(cfg, domain, policy, entry_fn)
    system = analysis.system()
    root = analysis.root()
    phase1 = solve(
        system,
        WidenCombine(analysis.lattice, delay=widen_delay),
        root,
        max_evals=max_evals,
        track_contributions=track_contributions,
        observers=observers,
    )

    frozen = dict(phase1.sigma)

    def init_of(x):
        return frozen.get(x, analysis.lattice.bottom)

    system2 = FunSideSystem(analysis.lattice, system.rhs, init_of=init_of)
    phase2 = solve(
        system2,
        NarrowCombine(analysis.lattice),
        root,
        max_evals=max_evals,
        track_contributions=track_contributions,
        protect=phase1.accumulated,
        observers=observers,
    )
    # Merge statistics so reported evaluation counts cover both phases.
    phase2.stats.evaluations += phase1.stats.evaluations
    phase2.stats.updates += phase1.stats.updates
    return _collect(analysis, phase2)
