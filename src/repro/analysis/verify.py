"""Assertion checking on top of the analysis results.

A natural downstream client of the precision the combined operator buys:
for every ``assert(cond)`` in the program, evaluate ``cond`` over the
abstract state flowing into the assertion and classify it as

* **proved** -- the condition is true in every represented state;
* **violated** -- the condition is false in every represented state (the
  assertion definitely fails whenever reached);
* **unknown** -- the abstract state allows both outcomes;
* **unreachable** -- no state reaches the assertion at all.

A more precise analysis proves strictly more assertions, which makes this
a crisp way to observe the Figure 7 effect: the combined operator proves
bounds that classical two-phase solving cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.analysis.inter import AnalysisResult
from repro.analysis.transfer import GlobalsAccess, TransferContext, eval_expr
from repro.lang.cfg import AssertInstr, ControlFlowGraph
from repro.lang.pretty import pretty_expr
from repro.lattices.lifted import LiftedBottom


class Verdict(Enum):
    """Outcome of checking one assertion."""

    PROVED = "proved"
    VIOLATED = "violated"
    UNKNOWN = "unknown"
    UNREACHABLE = "unreachable"


@dataclass
class AssertionReport:
    """One checked assertion."""

    fn: str
    line: int
    condition: str
    verdict: Verdict

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.fn}:{self.line}: assert({self.condition}) "
            f"-- {self.verdict.value}"
        )


def check_assertions(
    cfg: ControlFlowGraph, result: AnalysisResult
) -> List[AssertionReport]:
    """Classify every assertion of ``cfg`` against ``result``.

    States are joined over all calling contexts (a per-context report
    would be strictly stronger; the joined form matches how the paper's
    experiments count program points).
    """
    dom = result.domain
    reports: List[AssertionReport] = []
    for fn_name, fn in cfg.functions.items():
        tc = TransferContext(
            domain=dom,
            scalars=frozenset(fn.locals),
            arrays=frozenset(fn.arrays),
            globals=GlobalsAccess(
                read=lambda name: result.globals.get(name, dom.bottom),
                write=lambda name, value: None,
            ),
        )
        for edge in fn.edges:
            if not isinstance(edge.instr, AssertInstr):
                continue
            env = result.env_at(fn_name, edge.src)
            if env is LiftedBottom:
                verdict = Verdict.UNREACHABLE
            else:
                value = eval_expr(tc, env, edge.instr.cond)
                may_true, may_false = dom.truthiness(value)
                if may_true and not may_false:
                    verdict = Verdict.PROVED
                elif may_false and not may_true:
                    verdict = Verdict.VIOLATED
                else:
                    verdict = Verdict.UNKNOWN
            reports.append(
                AssertionReport(
                    fn=fn_name,
                    line=edge.instr.line,
                    condition=pretty_expr(edge.instr.cond),
                    verdict=verdict,
                )
            )
    reports.sort(key=lambda r: (r.fn, r.line))
    return reports


def summarize(reports: List[AssertionReport]) -> Dict[Verdict, int]:
    """Count reports per verdict."""
    counts = {verdict: 0 for verdict in Verdict}
    for report in reports:
        counts[report.verdict] += 1
    return counts


@dataclass
class UnreachableReport:
    """A program point the analysis proves unreachable."""

    fn: str
    node: object
    line: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.fn}:{self.line}: unreachable program point {self.node!r}"


def find_unreachable(
    cfg: ControlFlowGraph, result: AnalysisResult
) -> List[UnreachableReport]:
    """List the program points proved unreachable by the analysis.

    Dangling nodes (code after return/break, which the CFG builder leaves
    without incoming edges) are skipped: they are trivially unreachable by
    construction, not by analysis.
    """
    reports: List[UnreachableReport] = []
    for fn_name, fn in cfg.functions.items():
        analysed = {
            pp.node for pp in result.point_envs if pp.fn == fn_name
        }
        for node in fn.nodes:
            if node == fn.entry or node not in analysed:
                continue
            if not fn.in_edges(node):
                continue  # dangling by construction
            if result.env_at(fn_name, node) is LiftedBottom:
                reports.append(
                    UnreachableReport(fn=fn_name, node=node, line=node.line)
                )
    reports.sort(key=lambda r: (r.fn, r.line, str(r.node)))
    return reports
