"""Request execution for the analysis service: cold and warm paths.

A cache miss becomes real solver work here, in the batch layer's
:class:`~repro.batch.jobs.JobSpec` shape and under the supervision
stack:

* the **cold path** runs :func:`repro.supervise.supervised_solve` --
  per-request deadline watchdog, oscillation detection, the escalation
  ladder (bounded narrowing -> pure widening) and the independent
  post-solution verifier -- and additionally captures the terminated
  solver's :class:`~repro.incremental.state.SolverState` so the cache
  entry can seed future warm starts;
* the **warm path** takes a donor entry (same analysis options, an
  earlier version of the program), diffs the two CFGs
  (:func:`repro.lang.diff.diff_cfg`), transfers the donor snapshot
  across the node matching and resumes SLR+ on exactly the destabilized
  region.  The resumed solution is re-verified independently; a warm
  result that fails verification -- or a diff too large to be worth it
  (:func:`should_warm`) -- falls back to the cold path, so warm starting
  is purely an optimization, never a soundness risk.

Like :func:`repro.batch.jobs.execute_job`, :func:`execute_service_job`
**never raises**: every failure class maps onto the CLI exit-code
taxonomy inside a structured :class:`~repro.batch.jobs.JobResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.batch.jobs import (
    EXIT_INPUT,
    EXIT_OK,
    EXIT_UNKNOWN,
    JobResult,
    JobSpec,
    _failure,
    _peak_rss_kb,
    build_domain,
    build_policy,
    solution_fingerprint,
)
from repro.incremental import (
    SolverState,
    capture,
    check_post_solution,
    transfer_state,
)
from repro.incremental.warmstart import warm_solve_slr_side
from repro.lang import LexError, ParseError, SemanticError, compile_program
from repro.lang.diff import CfgDiff, diff_cfg
from repro.solvers.registry import (
    SolverCapabilityError,
    UnknownSolverError,
    get_solver,
)
from repro.solvers.stats import DivergenceError
from repro.strategies import (
    BuildContext,
    UnknownStrategyError,
    build_combine,
    spec_needs_thresholds,
)
from repro.supervise import supervised_solve
from repro.supervise.watchdog import DeadlineWatchdog

#: Watchdog exception class names mapped onto failure-kind labels the
#: request log records (see :attr:`ServiceExecution.failure_kind`).
_FAILURE_KINDS = {
    "DeadlineExceeded": "deadline",
    "BudgetExceeded": "budget",
    "OscillationDetected": "oscillation",
}


def _classify_failure(report) -> Optional[str]:
    """The failure kind of a failed supervised run, from its attempts.

    The *first* classified trip names the cause: later attempts are the
    escalation ladder re-tripping on the same underlying problem (a
    lapsed deadline trips every subsequent rung immediately).
    """
    for attempt in report.attempts:
        kind = _FAILURE_KINDS.get(attempt.error_type)
        if kind is not None:
            return kind
    return None


#: Warm-start a near miss only when at most this fraction of the new
#: program's nodes have changed equations -- beyond it, the transitive
#: destabilization closure tends to cover most of the system and a cold
#: solve is simpler and no slower.
DEFAULT_WARM_RATIO = 0.5


@dataclass
class ServiceExecution:
    """What one executed request produced, beyond the result itself."""

    #: The structured outcome (never ``None``; never raises).
    result: JobResult
    #: Serialized solver snapshot for the cache entry (``None`` when the
    #: run failed or the producing solver cannot warm-start).
    state: Optional[str] = None
    #: ``"cold"`` or ``"warm"`` -- which path produced the result.
    mode: str = "cold"
    #: Content key of the donor entry a warm run resumed from.
    warm_donor: Optional[str] = None
    #: Dirty equation count of the warm diff (0 for cold runs).
    dirty_nodes: int = 0
    #: Whether the independent post-solution verifier passed.
    verified: bool = False
    #: Classified failure cause for non-ok results (``"deadline"``,
    #: ``"budget"``, ``"oscillation"``, ``None`` otherwise), so the
    #: daemon's request log can name *why* a request failed.
    failure_kind: Optional[str] = None


def should_warm(
    diff: CfgDiff, new_cfg, *, max_dirty_ratio: float = DEFAULT_WARM_RATIO
) -> bool:
    """Whether a donor diff is small enough to warm-start from.

    Requires at least one matched node (otherwise nothing transfers)
    and a dirty-node fraction at most ``max_dirty_ratio`` of the new
    program's points.
    """
    if not diff.node_map:
        return False
    total = sum(len(fn.nodes) for fn in new_cfg.functions.values())
    if total == 0:
        return False
    return len(diff.dirty_nodes) / total <= max_dirty_ratio


def _setup(job: JobSpec):
    """Compile and configure a request; raises input-class errors."""
    from repro.analysis import collect_thresholds
    from repro.analysis.inter import InterAnalysis

    cfg = compile_program(job.source)
    need_thresholds = job.thresholds or spec_needs_thresholds(job.op)
    thresholds = collect_thresholds(cfg) if need_thresholds else ()
    domain = build_domain(job.domain, thresholds)
    policy = build_policy(job.context, domain)
    analysis = InterAnalysis(cfg, domain, policy)
    get_solver(job.solver, side_effecting=True, scope="local", takes_op=True)
    op = build_combine(
        job.op,
        analysis.lattice,
        ctx=BuildContext(cfg=cfg, thresholds=tuple(thresholds)),
        widen_delay=job.widen_delay,
    )
    return cfg, analysis, op


def _verdicts(job: JobSpec, cfg, analysis, solver_result):
    """Assertion verdicts folded into (status, code, proved, unproved)."""
    from repro.analysis import check_assertions, summarize
    from repro.analysis.inter import collect_analysis
    from repro.analysis.verify import Verdict

    status, code = "ok", EXIT_OK
    proved = unproved = 0
    if job.verify:
        reports = check_assertions(
            cfg, collect_analysis(analysis, solver_result)
        )
        counts = summarize(reports)
        proved = counts[Verdict.PROVED]
        unproved = counts[Verdict.UNKNOWN] + counts[Verdict.VIOLATED]
        if counts[Verdict.VIOLATED]:
            status, code = "violated", EXIT_INPUT
        elif counts[Verdict.UNKNOWN]:
            status, code = "unknown", EXIT_UNKNOWN
    return status, code, proved, unproved


def _result(
    job: JobSpec, status, code, solver_result, lattice, started, **counts
) -> JobResult:
    stats = solver_result.stats
    return JobResult(
        job=job.id,
        family=job.family,
        program=job.program,
        status=status,
        code=code,
        solver=job.solver,
        domain=job.domain,
        context=job.context,
        op=job.op,
        hash=solution_fingerprint(solver_result.sigma, lattice),
        evaluations=stats.evaluations,
        updates=stats.updates,
        unknowns=stats.unknowns,
        max_queue=stats.max_queue,
        widen_updates=stats.widen_updates,
        narrow_updates=stats.narrow_updates,
        direction_switches=stats.direction_switches,
        wall_time=time.perf_counter() - started,
        peak_rss_kb=_peak_rss_kb(),
        **counts,
    )


def _capture_state(spec_name: str, solver_result, lattice) -> Optional[str]:
    """The serialized resume snapshot, when the solver supports it."""
    try:
        solver = get_solver(spec_name)
    except UnknownSolverError:  # pragma: no cover - validated upstream
        return None
    if not solver.supports_warm_start:
        return None
    return capture(solver_result, solver.name).dumps(lattice)


# --------------------------------------------------------------------- #
# Cold path: supervised solve + snapshot capture.                       #
# --------------------------------------------------------------------- #

def _execute_cold(job: JobSpec, started: float) -> ServiceExecution:
    try:
        cfg, analysis, op = _setup(job)
    except (
        LexError,
        ParseError,
        SemanticError,
        UnknownSolverError,
        UnknownStrategyError,
        SolverCapabilityError,
        ValueError,
    ) as err:
        return ServiceExecution(
            result=_failure(job, "input-error", err, started)
        )

    report = supervised_solve(
        analysis.system(),
        op,
        analysis.root(),
        solver=job.solver,
        deadline=job.deadline,
        max_evals=job.max_evals,
        verify=True,
    )
    if not report.ok:
        last = report.attempts[-1].outcome if report.attempts else "trip"
        status = (
            "fault"
            if last == "fault" or report.consistency_problems
            else "divergence"
        )
        err = DivergenceError(report.fatal or "supervised solve failed")
        failure = _failure(job, status, err, started)
        failure = JobResult(
            **{
                **failure.to_json(),
                "evaluations": report.total_evaluations,
            }
        )
        return ServiceExecution(
            result=failure, failure_kind=_classify_failure(report)
        )

    solver_result = report.result
    status, code, proved, unproved = _verdicts(
        job, cfg, analysis, solver_result
    )
    result = _result(
        job,
        status,
        code,
        solver_result,
        analysis.lattice,
        started,
        proved=proved,
        unproved=unproved,
    )
    # The cascade may have degraded to a different solver; only capture
    # a snapshot the *requested* solver's warm start can consume.
    state = None
    if report.solver == get_solver(job.solver).name:
        state = _capture_state(job.solver, solver_result, analysis.lattice)
    return ServiceExecution(
        result=result, state=state, mode="cold", verified=bool(report.verified)
    )


# --------------------------------------------------------------------- #
# Warm path: diff, transfer, resume, re-verify.                         #
# --------------------------------------------------------------------- #

def _execute_warm(
    job: JobSpec,
    donor_key: str,
    donor_source: str,
    donor_state: str,
    started: float,
    max_dirty_ratio: float,
) -> Optional[ServiceExecution]:
    """Try the warm path; ``None`` means "fall back to cold"."""
    try:
        cfg, analysis, op = _setup(job)
        old_cfg = compile_program(donor_source)
    except (
        LexError,
        ParseError,
        SemanticError,
        UnknownStrategyError,
        ValueError,
    ):
        return None  # cold path re-raises for proper classification

    diff = diff_cfg(old_cfg, cfg)
    if not should_warm(diff, cfg, max_dirty_ratio=max_dirty_ratio):
        return None
    try:
        state = SolverState.loads(donor_state, analysis.lattice)
    except Exception:
        return None  # corrupt or incompatible snapshot: solve cold
    if state.solver != get_solver(job.solver).name:
        return None

    transferred, dirty = transfer_state(state, diff, cfg)
    observers = []
    if job.deadline is not None:
        observers.append(DeadlineWatchdog(job.deadline))
    system = analysis.system()
    try:
        solver_result = warm_solve_slr_side(
            system,
            op,
            analysis.root(),
            transferred,
            dirty,
            max_evals=job.max_evals,
            observers=observers,
        )
    except DivergenceError as err:
        return ServiceExecution(
            result=_failure(job, "divergence", err, started),
            mode="warm",
            warm_donor=donor_key,
            dirty_nodes=len(diff.dirty_nodes),
            failure_kind=_FAILURE_KINDS.get(type(err).__name__),
        )
    except Exception:
        return None  # any warm-path fault: retry cold

    if check_post_solution(system, solver_result.sigma):
        # A warm resume that is not a post solution must never be
        # served; re-solve cold (and let supervision verify that).
        return None
    status, code, proved, unproved = _verdicts(
        job, cfg, analysis, solver_result
    )
    result = _result(
        job,
        status,
        code,
        solver_result,
        analysis.lattice,
        started,
        proved=proved,
        unproved=unproved,
    )
    return ServiceExecution(
        result=result,
        state=_capture_state(job.solver, solver_result, analysis.lattice),
        mode="warm",
        warm_donor=donor_key,
        dirty_nodes=len(diff.dirty_nodes),
        verified=True,
    )


# --------------------------------------------------------------------- #
# Check path: the batch executor, verbatim.                             #
# --------------------------------------------------------------------- #

def _execute_check(job: JobSpec) -> ServiceExecution:
    """One ``kind="check"`` request; always the cold path.

    Checks delegate to :func:`repro.batch.jobs.execute_job` -- the same
    code path ``repro check`` and the farm run -- so the service can
    never report different diagnostics than the CLI for the same
    request.  There is no warm path: rules read *every* program point's
    abstract value, so a resumed solve saves nothing the rule pass does
    not immediately spend, and the deterministic result caches fine
    without a snapshot (``state=None`` keeps check entries out of the
    warm-donor pool).
    """
    from repro.batch.jobs import execute_job

    result = execute_job(job)
    return ServiceExecution(
        result=result,
        state=None,
        mode="cold",
        # Diagnostics documents are deterministic, so a completed check
        # (clean or with findings) is cacheable as-is; failures are not.
        verified=result.status in ("ok", "findings"),
    )


# --------------------------------------------------------------------- #
# Entry point.                                                          #
# --------------------------------------------------------------------- #

def execute_service_job(
    job: JobSpec,
    donors: Sequence[Tuple[str, str, str]] = (),
    *,
    max_dirty_ratio: float = DEFAULT_WARM_RATIO,
) -> ServiceExecution:
    """Execute one service request; never raises.

    :param job: the normalized request (see
        :func:`repro.service.protocol.solve_request_to_jobspec`).
    :param donors: warm-start candidates as ``(key, source, state)``
        triples, best first (the daemon passes the cache's
        :meth:`~repro.service.cache.ResultCache.warm_candidates`).  The
        first donor whose diff is small enough and whose resumed
        solution passes the independent verifier wins; otherwise the
        request is solved cold under full supervision.
    """
    started = time.perf_counter()
    if job.kind == "check":
        return _execute_check(job)
    for key, source, state in donors:
        execution = _execute_warm(
            job, key, source, state, started, max_dirty_ratio
        )
        if execution is not None:
            return execution
    return _execute_cold(job, started)
