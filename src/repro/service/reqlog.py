"""Structured request logging: one JSON object per served request.

The daemon appends a single compact JSON line per request to a file (or
any writable stream), carrying the operational facts a service operator
grieves for when they are missing: the request id, the cache outcome
(``hit``/``warm``/``miss``/``bypass``/``error``), the exit-code taxonomy
classification, evaluation counts and wall time.  Lines are
self-contained and append-only, so the log is ``jq``-able and safe to
rotate externally.
"""

from __future__ import annotations

import json
import time
from typing import IO, Optional


class RequestLog:
    """Append-only NDJSON request log.

    :param path: target file, opened in append mode (created if
        missing).  Mutually exclusive with ``stream``.
    :param stream: an already-open writable text stream (tests, stderr).
        With neither, the log swallows records (a disabled log object is
        simpler for callers than ``if log is not None`` everywhere).
    """

    def __init__(
        self, path: Optional[str] = None, stream: Optional[IO] = None
    ) -> None:
        if path is not None and stream is not None:
            raise ValueError("pass either path or stream, not both")
        self._owned = path is not None
        self._stream: Optional[IO] = stream
        if path is not None:
            self._stream = open(path, "a", encoding="utf-8")
        #: Records written over the log's lifetime.
        self.records = 0

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def log(self, **fields) -> None:
        """Write one record; a ``ts`` wall-clock field is added."""
        self.records += 1
        if self._stream is None:
            return
        record = {"ts": round(time.time(), 3), **fields}
        self._stream.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._stream.flush()

    def close(self) -> None:
        if self._owned and self._stream is not None:
            self._stream.close()
            self._stream = None
