"""Admission control for the analysis daemon: shed load, don't queue it.

An unbounded daemon does not fail under overload -- it *lies*: requests
queue silently, latencies grow without bound, and by the time the client
notices, the work it asked for is stale.  The admission controller makes
overload an explicit, structured, *early* answer instead:

* a **bounded pending-request budget** with high/low watermarks -- once
  ``queue_high`` requests are admitted-but-unanswered the daemon sheds
  new work with an ``overloaded`` error and a ``retry_after_ms`` hint,
  and keeps shedding until the backlog falls back to ``queue_low``
  (hysteresis, so the daemon does not flap at the boundary);
* a **max-connections cap**, refusing sockets beyond it so a client
  herd cannot exhaust file descriptors before a single request is read;
* a **retry-after hint** scaled by how far past the watermark the
  backlog is, giving well-behaved retrying clients
  (:class:`~repro.service.client.ServiceClient`) a load-proportional
  backoff floor.

The controller is plain synchronous state -- the daemon calls it from
the event loop only -- and every decision is counted, so ``status``
can report exactly how much load was shed and why.
"""

from __future__ import annotations

from typing import Optional


class AdmissionController:
    """Bounded admission with watermark hysteresis and a connection cap.

    :param queue_high: pending requests beyond which new work is shed.
    :param queue_low: backlog at which shedding stops (default: half of
        ``queue_high``); must be below ``queue_high``.
    :param max_connections: concurrently open client connections the
        daemon accepts; further connects are answered with an
        ``overloaded`` error and closed.
    :param retry_ms: base retry-after hint in milliseconds; the hint
        grows with the backlog overage and is capped at ten times this.
    """

    def __init__(
        self,
        queue_high: int = 32,
        queue_low: Optional[int] = None,
        max_connections: int = 64,
        retry_ms: int = 250,
    ) -> None:
        if queue_high < 1:
            raise ValueError("queue_high must be at least 1")
        if queue_low is None:
            queue_low = queue_high // 2
        if not 0 <= queue_low < queue_high:
            raise ValueError("queue_low must satisfy 0 <= low < high")
        if max_connections < 1:
            raise ValueError("max_connections must be at least 1")
        if retry_ms < 1:
            raise ValueError("retry_ms must be positive")
        self.queue_high = queue_high
        self.queue_low = queue_low
        self.max_connections = max_connections
        self.retry_ms = retry_ms
        #: Requests admitted and not yet answered.
        self.pending = 0
        #: Whether the controller is currently shedding (hysteresis).
        self.shedding = False
        #: Requests shed since start.
        self.shed = 0
        #: Open client connections.
        self.connections = 0
        #: Connections refused at the cap since start.
        self.connections_refused = 0
        #: High-water marks, for capacity planning.
        self.peak_pending = 0
        self.peak_connections = 0

    # ----------------------------------------------------------------- #
    # Requests.                                                         #
    # ----------------------------------------------------------------- #

    def try_admit(self) -> bool:
        """Admit one request, or decide to shed it.

        Sheds when the backlog has reached ``queue_high`` and keeps
        shedding until it has drained to ``queue_low``.  An admitted
        request must be paired with exactly one :meth:`release`.
        """
        if self.shedding and self.pending > self.queue_low:
            self.shed += 1
            return False
        self.shedding = False
        if self.pending >= self.queue_high:
            self.shedding = True
            self.shed += 1
            return False
        self.pending += 1
        self.peak_pending = max(self.peak_pending, self.pending)
        return True

    def release(self) -> None:
        """One admitted request was answered (any outcome)."""
        if self.pending <= 0:  # pragma: no cover - pairing invariant
            raise RuntimeError("release() without a matching try_admit()")
        self.pending -= 1
        if self.shedding and self.pending <= self.queue_low:
            self.shedding = False

    def retry_after_ms(self) -> int:
        """Load-proportional retry hint for a shed request.

        The base hint, scaled linearly by how far the backlog sits past
        the low watermark relative to the hysteresis band, capped at
        ten times the base -- enough signal to spread a retrying herd
        without promising the client false precision.
        """
        band = max(1, self.queue_high - self.queue_low)
        overage = max(0, self.pending - self.queue_low)
        scaled = int(self.retry_ms * (1 + overage / band))
        return min(scaled, 10 * self.retry_ms)

    # ----------------------------------------------------------------- #
    # Connections.                                                      #
    # ----------------------------------------------------------------- #

    def try_connect(self) -> bool:
        """Account one new connection, or refuse it at the cap."""
        if self.connections >= self.max_connections:
            self.connections_refused += 1
            return False
        self.connections += 1
        self.peak_connections = max(self.peak_connections, self.connections)
        return True

    def disconnect(self) -> None:
        """One accepted connection closed."""
        if self.connections <= 0:  # pragma: no cover - pairing invariant
            raise RuntimeError("disconnect() without try_connect()")
        self.connections -= 1

    # ----------------------------------------------------------------- #
    # Introspection.                                                    #
    # ----------------------------------------------------------------- #

    def stats(self) -> dict:
        """Counters and configuration, as served by the ``status`` op."""
        return {
            "queue_depth": self.pending,
            "queue_high": self.queue_high,
            "queue_low": self.queue_low,
            "shedding": self.shedding,
            "shed": self.shed,
            "connections": self.connections,
            "max_connections": self.max_connections,
            "connections_refused": self.connections_refused,
            "peak_pending": self.peak_pending,
            "peak_connections": self.peak_connections,
        }
