"""Crash-safe in-flight request journal for the analysis daemon.

The daemon's contract is that an admitted request is answered -- but a
crashed process cannot answer anything, and before this journal existed
a SIGKILL mid-solve silently lost every in-flight request.  The journal
closes that hole with the cheapest durable structure there is: an
append-only NDJSON file, written at admission and settled at response.

* ``begin`` records carry the request id, content key, operation and
  the *full original message*, so an interrupted request is not merely
  reportable but **re-executable**: a restarted daemon can requeue it
  through the normal pipeline and land its result in the cache.
* ``end`` records settle a begin by request id.  The file is never
  edited in place -- crash-safety comes from append-only writes plus
  atomic whole-file compaction (tempfile + ``os.replace``, the same
  idiom as :meth:`repro.service.cache.ResultCache.save`).

On open, the journal replays the file: begins without a matching end
are the requests a previous process died holding; they are surfaced via
:attr:`recovered` and *carried forward* into the compacted file, so a
crash during recovery itself still loses nothing.  A truncated trailing
line -- the normal signature of dying mid-write -- is tolerated and
ignored.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional

#: Format marker stamped into every record.
FORMAT = "repro-service-journal/1"

#: Settled lines accumulated before an idle journal is compacted.
COMPACT_EVERY = 512


class InflightJournal:
    """Append-only journal of admitted-but-unanswered requests.

    :param path: journal file; ``None`` disables journaling entirely
        (every operation becomes a no-op, so callers need no guards).
    :param compact_every: settled records to accumulate before the
        file is rewritten empty (only when nothing is in flight).
    """

    def __init__(
        self, path: Optional[str] = None, compact_every: int = COMPACT_EVERY
    ) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be at least 1")
        self.path = path
        self.compact_every = compact_every
        #: rid -> begin record still awaiting its end.
        self._open: Dict[str, dict] = {}
        #: Begin records a previous process never settled.
        self.recovered: List[dict] = []
        self.begun = 0
        self.settled = 0
        self.compactions = 0
        self._stream = None
        self._lines = 0
        if path is not None:
            self._recover()

    @property
    def enabled(self) -> bool:
        return self._stream is not None

    def __len__(self) -> int:
        """Requests currently journaled as in flight."""
        return len(self._open)

    # ----------------------------------------------------------------- #
    # Recovery and compaction.                                          #
    # ----------------------------------------------------------------- #

    def _recover(self) -> None:
        """Replay the file, collect unsettled begins, compact, reopen."""
        pending: Dict[str, dict] = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A torn trailing line is how crashing mid-write
                        # looks; nothing before it is affected.
                        continue
                    if not isinstance(record, dict):
                        continue
                    rid = record.get("rid")
                    if record.get("event") == "begin" and rid:
                        pending[rid] = record
                    elif record.get("event") == "end" and rid:
                        pending.pop(rid, None)
        self.recovered = list(pending.values())
        # Compact to exactly the unsettled begins -- atomically, so a
        # crash here leaves either the old journal or the new one.
        self._rewrite(self.recovered)
        self._open = {r["rid"]: r for r in self.recovered}

    def _rewrite(self, records: List[dict]) -> None:
        """Atomically replace the file with ``records``, reopen append."""
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(self._dumps(record))
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._stream = open(self.path, "a", encoding="utf-8")
        self._lines = len(records)

    @staticmethod
    def _dumps(record: dict) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"

    # ----------------------------------------------------------------- #
    # The admission/response protocol.                                  #
    # ----------------------------------------------------------------- #

    def begin(self, rid: str, op: str, key: str, message: dict) -> None:
        """Journal one admitted request before any work happens on it."""
        if self._stream is None:
            return
        record = {
            "format": FORMAT,
            "event": "begin",
            "rid": rid,
            "op": op,
            "key": key,
            "message": message,
            "ts": round(time.time(), 3),
        }
        self._open[rid] = record
        self._stream.write(self._dumps(record))
        self._stream.flush()
        self._lines += 1
        self.begun += 1

    def settle(self, rid: str) -> None:
        """The journaled request was answered (any outcome)."""
        if self._stream is None or rid not in self._open:
            return
        del self._open[rid]
        self._stream.write(
            self._dumps(
                {"event": "end", "rid": rid, "ts": round(time.time(), 3)}
            )
        )
        self._stream.flush()
        self._lines += 1
        self.settled += 1
        if not self._open and self._lines >= self.compact_every:
            self._rewrite([])
            self.compactions += 1

    # ----------------------------------------------------------------- #
    # Introspection and lifecycle.                                      #
    # ----------------------------------------------------------------- #

    def stats(self) -> dict:
        """Counters and occupancy, as served by the ``status`` op."""
        return {
            "enabled": self.enabled,
            "open": len(self._open),
            "begun": self.begun,
            "settled": self.settled,
            "recovered": len(self.recovered),
            "compactions": self.compactions,
        }

    def close(self) -> None:
        """Compact (when idle) and close; safe to call twice."""
        if self._stream is None:
            return
        if not self._open:
            self._rewrite([])
        self._stream.close()
        self._stream = None
