"""Persistent analysis service: daemon, result cache, warm scheduling.

This package turns the one-shot solver pipeline into a long-running
local service.  A daemon (:mod:`.daemon`) listens on a UNIX or TCP
socket speaking newline-delimited JSON (:mod:`.protocol`); requests are
normalized into the batch layer's job shape and answered from a
content-addressed result cache (:mod:`.cache`) when possible, resumed
warm from a near miss's stored solver snapshot (:mod:`.executor`) when
profitable, and solved cold under full supervision otherwise.  The
synchronous :class:`.client.ServiceClient` and the ``repro serve`` /
``submit`` / ``status`` CLI subcommands are the front doors.

See ``docs/service.md`` for the protocol and operational story.
"""

from repro.service.admission import AdmissionController
from repro.service.cache import CacheEntry, ResultCache
from repro.service.client import (
    NO_RETRY,
    CircuitOpenError,
    DaemonUnavailableError,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeout,
    ServiceTransportError,
)
from repro.service.daemon import AnalysisDaemon, ServiceConfig
from repro.service.journal import InflightJournal
from repro.service.supervisor import RestartSupervisor
from repro.service.executor import (
    DEFAULT_WARM_RATIO,
    ServiceExecution,
    execute_service_job,
    should_warm,
)
from repro.service.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPERATIONS,
    PROTOCOL,
    ProtocolError,
    check_request_to_jobspec,
    decode,
    encode,
    solve_request_to_jobspec,
)
from repro.service.reqlog import RequestLog
from repro.service.sockets import (
    SocketInUseError,
    prepare_socket_path,
    socket_is_live,
)

__all__ = [
    "AdmissionController",
    "AnalysisDaemon",
    "CacheEntry",
    "CircuitOpenError",
    "DEFAULT_WARM_RATIO",
    "DaemonUnavailableError",
    "ERROR_CODES",
    "InflightJournal",
    "MAX_LINE_BYTES",
    "NO_RETRY",
    "OPERATIONS",
    "PROTOCOL",
    "ProtocolError",
    "RequestLog",
    "RestartSupervisor",
    "ResultCache",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceExecution",
    "ServiceOverloadedError",
    "ServiceTimeout",
    "ServiceTransportError",
    "SocketInUseError",
    "check_request_to_jobspec",
    "decode",
    "encode",
    "execute_service_job",
    "prepare_socket_path",
    "should_warm",
    "socket_is_live",
    "solve_request_to_jobspec",
]
