"""The content-addressed result cache behind the analysis daemon.

Entries are keyed by :func:`repro.batch.jobs.spec_fingerprint` -- a
SHA-256 over the program text *and* every result-relevant option -- so a
hit is, by construction, the answer to exactly the requested analysis:
two requests differing only in solver, domain, context, operator, delay,
thresholds, budget or verification mode can never alias.

Beyond the result itself an entry may carry the producing run's
serialized :class:`~repro.incremental.state.SolverState`.  That is what
makes the cache more than a memo table: a *near miss* (same options,
edited program) can locate a donor entry through the options-only index
(:func:`repro.batch.jobs.options_fingerprint`) and resume the solver
warm from the stored snapshot instead of solving cold.

Operational behaviour:

* **LRU bound** -- at most ``max_entries`` entries; inserting beyond the
  bound evicts the least recently *used* entry (gets refresh recency).
* **TTL** -- entries older than ``ttl`` seconds are expired lazily on
  access and eagerly on :meth:`sweep`.
* **Counters** -- hits, misses, warm donor hits, evictions, expirations,
  and stores, exposed verbatim through the daemon's ``status`` op.
* **Persistence** -- :meth:`save` writes the full index (entries,
  snapshots and all) as one JSON document via an atomic rename;
  :meth:`load` restores it on daemon start, honouring TTL, so a
  restarted service answers warm from its first request.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Format marker of the persisted cache index.
FORMAT = "repro-service-cache/1"


@dataclass
class CacheEntry:
    """One cached analysis result (plus optional resume snapshot)."""

    #: Content address: :func:`~repro.batch.jobs.spec_fingerprint`.
    key: str
    #: Options-only address, the warm-start candidate index.
    options: str
    #: The analysed program text (diff donor for near misses).
    source: str
    #: The :class:`~repro.batch.jobs.JobResult` as a JSON dict.
    result: dict
    #: Serialized :class:`~repro.incremental.state.SolverState` of the
    #: producing run, when the solver supports warm starts.
    state: Optional[str] = None
    #: Wall-clock creation time (``time.time``; survives restarts).
    created: float = field(default_factory=time.time)
    #: How often this entry has been served.
    hits: int = 0

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "options": self.options,
            "source": self.source,
            "result": self.result,
            "state": self.state,
            "created": self.created,
            "hits": self.hits,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CacheEntry":
        return cls(**data)


class ResultCache:
    """LRU + TTL cache of :class:`CacheEntry`, with a warm-donor index.

    :param max_entries: LRU bound (at least 1).
    :param ttl: entry lifetime in seconds (``None``: no expiry).
    :param clock: time source, injectable for tests (``time.time``).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        #: key -> entry, in LRU order (last = most recently used).
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: options fingerprint -> keys sharing it (insertion order).
        self._by_options: Dict[str, List[str]] = {}
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0
        self.evictions = 0
        self.expirations = 0
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ----------------------------------------------------------------- #
    # Core operations.                                                  #
    # ----------------------------------------------------------------- #

    def _expired(self, entry: CacheEntry) -> bool:
        return (
            self.ttl is not None
            and self._clock() - entry.created > self.ttl
        )

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key)
        keys = self._by_options.get(entry.options)
        if keys is not None:
            try:
                keys.remove(key)
            except ValueError:  # pragma: no cover - index invariant
                pass
            if not keys:
                del self._by_options[entry.options]

    def get(self, key: str) -> Optional[CacheEntry]:
        """The entry under ``key``, counting a hit; ``None`` on miss.

        Expired entries are dropped and count as a miss plus an
        expiration -- a TTL lapse *is* a miss from the client's view.
        """
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry):
            self._drop(key)
            self.expirations += 1
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Like :meth:`get` but without touching any counter or recency."""
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry):
            return None
        return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert (or replace) an entry, evicting LRU beyond the bound."""
        if entry.key in self._entries:
            self._drop(entry.key)
        self._entries[entry.key] = entry
        self._by_options.setdefault(entry.options, []).append(entry.key)
        self.stores += 1
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            self._drop(oldest)
            self.evictions += 1

    def warm_candidates(
        self, options: str, exclude: Optional[str] = None
    ) -> List[CacheEntry]:
        """Donor entries for a near-miss request, best first.

        All live entries with the same options fingerprint that carry a
        resume snapshot, ordered most-recently-used first (the most
        recent version of an evolving program is the likeliest smallest
        diff).  ``exclude`` omits the request's own key.
        """
        keys = self._by_options.get(options, ())
        recency = {k: i for i, k in enumerate(self._entries)}
        ranked = sorted(
            (k for k in keys if k != exclude),
            key=recency.__getitem__,
            reverse=True,
        )
        out = []
        for key in ranked:
            entry = self._entries[key]
            if self._expired(entry):
                continue
            if entry.state is not None:
                out.append(entry)
        return out

    def sweep(self) -> int:
        """Drop every expired entry now; returns how many went."""
        dead = [k for k, e in self._entries.items() if self._expired(e)]
        for key in dead:
            self._drop(key)
        self.expirations += len(dead)
        return len(dead)

    # ----------------------------------------------------------------- #
    # Introspection and persistence.                                    #
    # ----------------------------------------------------------------- #

    def stats(self) -> dict:
        """Counters and occupancy, as served by the ``status`` op."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "ttl": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "warm_hits": self.warm_hits,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "stores": self.stores,
        }

    def save(self, path: str) -> int:
        """Persist the index to ``path`` atomically; returns entry count.

        The document carries every live entry in LRU order (snapshots
        included) -- a restarted daemon that loads it serves its first
        identical request as a hit and its first near miss warm.
        """
        doc = {
            "format": FORMAT,
            "entries": [e.to_json() for e in self._entries.values()],
        }
        payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        directory = os.path.dirname(os.path.abspath(path))
        fd, tmp = tempfile.mkstemp(
            prefix=os.path.basename(path) + ".", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(self._entries)

    def load(self, path: str) -> int:
        """Restore entries persisted by :meth:`save`; returns how many.

        Entries past their TTL at load time are skipped (not counted as
        expirations -- they died while the daemon was down).  Counters
        are *not* restored: they describe one daemon lifetime.

        :raises ValueError: for documents in an unknown format.
        """
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        if not isinstance(doc, dict) or doc.get("format") != FORMAT:
            raise ValueError(
                f"{path}: not a {FORMAT} cache index"
            )
        loaded = 0
        for data in doc.get("entries", []):
            entry = CacheEntry.from_json(data)
            if self._expired(entry):
                continue
            stores = self.stores
            self.put(entry)
            self.stores = stores  # loading is not storing
            loaded += 1
        return loaded
