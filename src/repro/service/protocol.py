"""The analysis service wire protocol: newline-delimited JSON.

One request per line, one response line per request, UTF-8 both ways --
trivially speakable from any language (``nc``, a shell script, another
Python) and trivially debuggable on the wire.  Every message is a JSON
object; requests carry an ``op`` and responses echo it together with
``ok`` and either the operation's payload or an ``error``.

Operations (see ``docs/service.md`` for the full field tables):

``ping``
    Liveness probe; answers the protocol version.
``solve``
    Analyse a program.  The request is *normalized* into the batch
    layer's :class:`~repro.batch.jobs.JobSpec` -- the same shape the
    process farm executes -- so the service, the farm and the CLI agree
    on what an analysis configuration is, byte for byte.
``check``
    Run the :mod:`repro.checkers` diagnostics rules over a program.
    Normalized exactly like ``solve`` (same options, same strictness)
    into a ``kind="check"`` JobSpec; an optional ``rules`` list selects
    a rule subset (canonicalized, so equal selections share cache
    entries), and ``verify`` is rejected -- the assertion rules subsume
    it.  The reply carries the full diagnostics in the job result.
``status``
    Daemon counters: uptime, requests by cache outcome, cache
    hit/miss/eviction counters, in-flight count.
``solvers``
    The registry's machine-readable capability listing
    (:func:`repro.solvers.registry.capability_listing`), so clients can
    discover and validate solver choices without a local install.
``shutdown``
    Graceful drain: stop accepting work, finish in-flight jobs, persist
    the cache index, then exit.

Malformed lines never kill a connection: the daemon answers a
structured error response (``ok: false``) and keeps reading.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Tuple

from repro.batch.jobs import JobSpec
from repro.solvers.registry import (
    SolverCapabilityError,
    UnknownSolverError,
    get_solver,
)

#: Protocol identifier, answered by ``ping`` and stamped into errors.
PROTOCOL = "repro-service/1"

#: Hard cap on one request line, in bytes.  Programs the corpus solves
#: are a few KiB; 8 MiB leaves three orders of magnitude of headroom
#: while bounding a malicious or broken client's memory impact.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: The operations a daemon understands.
OPERATIONS = ("ping", "solve", "check", "status", "solvers", "shutdown")

#: Machine-readable error classes stamped into ``ok: false`` replies.
#:
#: ``bad-request``
#:     The request itself is invalid (malformed JSON, unknown op, bad
#:     field) -- retrying the same bytes can never succeed.
#: ``overloaded``
#:     Admission control shed the request (queue past its high
#:     watermark, or the connection cap was reached).  Retryable after
#:     the reply's ``retry_after_ms`` hint.
#: ``draining``
#:     The daemon is shutting down gracefully and no longer admits
#:     work.  Retryable -- against another daemon, or this one after a
#:     supervised restart.
#: ``timeout``
#:     The connection's read deadline lapsed waiting for a complete
#:     request line; the daemon closes the connection after this reply.
#: ``unavailable``
#:     The fleet router could not reach any shard for this request
#:     (every candidate failed at the transport level).  Retryable
#:     after the reply's ``retry_after_ms`` hint -- shard supervisors
#:     respawn crashed shards with backoff.
ERROR_CODES = ("bad-request", "overloaded", "draining", "timeout",
               "unavailable")

#: ``solve`` request fields that map onto :class:`JobSpec` options, with
#: their expected types and defaults (= the JobSpec defaults).  The
#: update operator travels as ``update_op`` on the wire because ``op``
#: already names the protocol operation.
_SOLVE_OPTIONS = (
    ("solver", str, "slr+"),
    ("domain", str, "interval"),
    ("context", str, "insensitive"),
    ("update_op", str, "warrow"),
    ("widen_delay", int, 1),
    ("thresholds", bool, False),
    ("max_evals", int, 5_000_000),
    ("verify", bool, False),
)


class ProtocolError(ValueError):
    """A malformed or invalid request (maps to an ``ok: false`` reply)."""


def _strategies():
    # Deferred: the strategies registry pulls in the solver package, and
    # protocol.py must stay importable from lightweight clients.
    import repro.strategies as strategies

    return strategies


def encode(message: dict) -> bytes:
    """One message as a single NDJSON line (compact, sorted keys)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one request line into a message dict.

    :raises ProtocolError: for oversized lines, invalid JSON, or
        non-object payloads.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"invalid JSON: {err}") from err
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def error_response(
    op: Optional[str], message: str, code: str = "bad-request", **extra
) -> dict:
    """A structured failure reply.

    ``code`` is the machine-readable error class (one of
    :data:`ERROR_CODES`) clients key their retry decisions on; the
    human-readable ``error`` text is advisory and may change freely.
    Load-shedding replies additionally carry a ``retry_after_ms`` hint.
    """
    if code not in ERROR_CODES:  # internal misuse, not client input
        raise ValueError(f"unknown error code {code!r}")
    reply = {
        "ok": False,
        "error": str(message),
        "code": code,
        "protocol": PROTOCOL,
    }
    if op is not None:
        reply["op"] = op
    reply.update(extra)
    return reply


def program_sha(source: str) -> str:
    """Short content digest of a program text (for ids and logs)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


def request_operation(message: dict) -> str:
    """The validated ``op`` of a request message."""
    op = message.get("op")
    if not isinstance(op, str) or op not in OPERATIONS:
        known = ", ".join(OPERATIONS)
        raise ProtocolError(f"unknown op {op!r}; known ops: {known}")
    return op


def solve_request_to_jobspec(
    message: dict, *, default_deadline: Optional[float] = None
) -> Tuple[JobSpec, bool]:
    """Normalize a ``solve`` request into a batch :class:`JobSpec`.

    Returns ``(spec, fresh)`` where ``fresh`` is the client's cache
    bypass flag.  Validation is strict and *early* -- unknown solvers,
    wrong scopes and mistyped options are rejected here, before any
    work is queued, using the same registry capability checks the batch
    executor applies (side-effecting local solver, supervisable).

    :raises ProtocolError: with a client-facing message on any problem.
    """
    source = message.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("solve requires a non-empty 'source' string")
    options = {}
    for name, kind, default in _SOLVE_OPTIONS:
        value = message.get(name, default)
        if kind is int and isinstance(value, bool):
            raise ProtocolError(f"field {name!r} must be {kind.__name__}")
        if not isinstance(value, kind):
            raise ProtocolError(f"field {name!r} must be {kind.__name__}")
        options[name] = value
    options["op"] = options.pop("update_op")
    try:
        strategy = _strategies().get_strategy(
            _strategies().parse_spec(options["op"]).name
        )
        _strategies().resolve_spec(options["op"])
    except (LookupError, ValueError) as err:
        raise ProtocolError(f"field 'update_op' is invalid: {err}") from err
    # The service runs one generic solver pass per request, so only
    # solve-ready combine strategies are admissible: phased schedules
    # need two passes, and the building blocks (join/meet/narrow/
    # override) do not terminate with a sound post solution on their own.
    if strategy.kind != "combine" or not strategy.solve_ready:
        raise ProtocolError(
            f"field 'update_op' must name a solve-ready combine strategy "
            f"({strategy.name!r} is not); e.g. 'warrow' or 'widen'"
        )
    if options["widen_delay"] < 0:
        raise ProtocolError("field 'widen_delay' must be non-negative")
    if options["max_evals"] < 1:
        raise ProtocolError("field 'max_evals' must be positive")
    try:
        spec = get_solver(
            options["solver"],
            side_effecting=True,
            scope="local",
            supervisable=True,
        )
    except (UnknownSolverError, SolverCapabilityError) as err:
        raise ProtocolError(str(err)) from err
    options["solver"] = spec.name

    deadline = message.get("deadline")
    deadline_ms = message.get("deadline_ms")
    if deadline is not None and deadline_ms is not None:
        raise ProtocolError(
            "pass either 'deadline' (seconds) or 'deadline_ms', not both"
        )
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int):
            raise ProtocolError("field 'deadline_ms' must be an integer")
        if deadline_ms <= 0:
            raise ProtocolError("field 'deadline_ms' must be positive")
        deadline = deadline_ms / 1000.0
    if deadline is None:
        deadline = default_deadline
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(
            deadline, (int, float)
        ):
            raise ProtocolError("field 'deadline' must be a number")
        if deadline <= 0:
            raise ProtocolError("field 'deadline' must be positive")
        deadline = float(deadline)
    fresh = message.get("fresh", False)
    if not isinstance(fresh, bool):
        raise ProtocolError("field 'fresh' must be a boolean")
    label = message.get("label", "")
    if not isinstance(label, str):
        raise ProtocolError("field 'label' must be a string")

    sha = program_sha(source)
    job = JobSpec(
        id=f"service/{sha}/{options['op']}",
        family="service",
        program=label or sha,
        source=source,
        deadline=deadline,
        **options,
    )
    return job, fresh


def check_request_to_jobspec(
    message: dict, *, default_deadline: Optional[float] = None
) -> Tuple[JobSpec, bool]:
    """Normalize a ``check`` request into a ``kind="check"`` JobSpec.

    Shares the whole ``solve`` normalization (sources, solver
    capability checks, solve-ready combine strategies, deadlines), then
    layers the checker-specific contract on top:

    * ``rules`` (optional) must be a list of rule-name strings; names
      are canonicalized through
      :func:`repro.checkers.canonical_rule_names` so order and
      duplicates cannot split the cache, and unknown names are rejected
      with the known-rule listing;
    * ``verify`` is rejected outright -- assertion checking *is* a pair
      of checker rules (``assert-violated``/``assert-redundant``), and a
      silent ignore would let clients believe verdicts were folded into
      the exit code.

    :raises ProtocolError: with a client-facing message on any problem.
    """
    from dataclasses import replace

    if "verify" in message:
        raise ProtocolError(
            "'check' requests do not accept 'verify': assertion verdicts "
            "are diagnostics (rules 'assert-violated'/'assert-redundant')"
        )
    rules = message.get("rules", [])
    if not isinstance(rules, list) or not all(
        isinstance(name, str) for name in rules
    ):
        raise ProtocolError(
            "field 'rules' must be a list of rule-name strings"
        )
    # Deferred: checkers pulls in the analysis stack, and protocol.py
    # must stay importable from lightweight clients.
    from repro.checkers import UnknownRuleError, canonical_rule_names

    try:
        canonical = canonical_rule_names(rules)
    except UnknownRuleError as err:
        raise ProtocolError(f"field 'rules' is invalid: {err}") from err

    job, fresh = solve_request_to_jobspec(
        message, default_deadline=default_deadline
    )
    job = replace(
        job,
        id=f"service/{program_sha(job.source)}/check/{job.op}",
        kind="check",
        rules=canonical,
    )
    return job, fresh
