"""Process-level supervision for the analysis daemon.

:class:`RestartSupervisor` keeps a daemon process alive across crashes:
``repro serve --supervise`` runs the daemon as a child process and
respawns it whenever it dies abnormally, with exponential restart
backoff and a bounded restart budget so a daemon that crashes on start
cannot flap forever.

The division of labour with :mod:`repro.supervise` is deliberate: that
package supervises a *solver run* inside one process (deadlines,
budgets, escalation); this module supervises the *process* itself --
the only defence against faults no in-process watchdog survives, such
as ``SIGKILL`` or an interpreter abort.  Crash-safety of the requests
that were in flight at the kill is the in-flight journal's job
(:mod:`.journal`): the respawned daemon replays it on start.

A clean exit (code 0 -- a graceful drain) stops the supervisor; so does
a forwarded ``SIGINT``/``SIGTERM``, which the supervisor relays to the
child so the drain semantics are unchanged.  Runs that stay up at least
``stable_after`` seconds reset the restart budget, distinguishing a
crash loop from occasional faults spread over a long service life.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from typing import Callable, List, Optional, Sequence


class RestartSupervisor:
    """Respawn a child command until it exits cleanly.

    :param command: the child argv (e.g. ``[sys.executable, "-m",
        "repro", "serve", "--socket", ...]``).
    :param max_restarts: consecutive abnormal exits tolerated before
        giving up and propagating the child's exit code.
    :param base_backoff: first restart delay in seconds; doubles per
        consecutive crash up to ``max_backoff``.
    :param max_backoff: restart delay ceiling in seconds.
    :param stable_after: a run surviving this many seconds resets the
        consecutive-crash count (it was not a crash loop).
    :param spawn: process launcher, injectable for tests; must return
        an object with ``wait()``, ``send_signal(sig)`` and ``pid``.
    :param sleep: delay function, injectable for tests.
    :param clock: monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        command: Sequence[str],
        max_restarts: int = 5,
        base_backoff: float = 0.5,
        max_backoff: float = 10.0,
        stable_after: float = 30.0,
        spawn: Optional[Callable] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if base_backoff < 0 or max_backoff < 0:
            raise ValueError("backoff delays must be non-negative")
        self.command = list(command)
        self.max_restarts = max_restarts
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.stable_after = stable_after
        self._spawn = spawn if spawn is not None else subprocess.Popen
        self._sleep = sleep
        self._clock = clock
        #: Total respawns performed across the supervisor's lifetime.
        self.restarts = 0
        #: ``(exit_code, uptime_seconds)`` per finished child run.
        self.history: List[tuple] = []
        self._consecutive = 0
        self._stopping = False
        self._child = None

    def _note(self, message: str) -> None:
        print(f"supervise: {message}", file=sys.stderr, flush=True)

    def _relay(self, signum, frame) -> None:  # pragma: no cover - signals
        self._stopping = True
        child = self._child
        if child is not None:
            try:
                child.send_signal(signum)
            except (ProcessLookupError, OSError):
                pass

    def stop(self, sig: int = signal.SIGTERM) -> None:
        """Stop supervising: signal the child and exit after it dies.

        The fleet's :class:`~repro.fleet.manager.ShardManager` uses this
        to tear down shards whose graceful drain failed; it is also the
        programmatic equivalent of the relayed ``SIGTERM``.
        """
        self._stopping = True
        child = self._child
        if child is not None:
            try:
                child.send_signal(sig)
            except (ProcessLookupError, OSError):
                pass

    def backoff_delay(self, consecutive: int) -> float:
        """The delay before restart number ``consecutive`` (1-based)."""
        return min(
            self.max_backoff,
            self.base_backoff * (2 ** max(0, consecutive - 1)),
        )

    def run(self) -> int:
        """Run the child until it exits cleanly or the budget is spent.

        Returns the final child exit code (0 after a graceful drain).
        """
        previous = {}
        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                previous[sig] = signal.signal(sig, self._relay)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            previous = {}
        try:
            while True:
                started = self._clock()
                self._child = self._spawn(self.command)
                try:
                    code = self._child.wait()
                except KeyboardInterrupt:  # pragma: no cover - Ctrl-C race
                    self._stopping = True
                    code = self._child.wait()
                uptime = self._clock() - started
                self._child = None
                self.history.append((code, uptime))
                if code == 0 or self._stopping:
                    return code
                if uptime >= self.stable_after:
                    self._consecutive = 0
                self._consecutive += 1
                if self._consecutive > self.max_restarts:
                    self._note(
                        f"daemon exited with code {code}; giving up after "
                        f"{self._consecutive - 1} consecutive restarts"
                    )
                    return code
                delay = self.backoff_delay(self._consecutive)
                self.restarts += 1
                self._note(
                    f"daemon exited with code {code} after {uptime:.1f}s; "
                    f"restart {self._consecutive}/{self.max_restarts} "
                    f"in {delay:.1f}s"
                )
                self._sleep(delay)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)


def serve_command(args) -> List[str]:
    """The child argv replaying a parsed ``repro serve`` invocation.

    Reconstructs the ``serve`` command line from the parsed namespace,
    *without* ``--supervise`` -- the child must run the daemon directly.
    """
    argv = [sys.executable, "-m", "repro", "serve"]
    if args.socket is not None:
        argv += ["--socket", args.socket]
    if args.port is not None:
        argv += ["--host", args.host, "--port", str(args.port)]
    argv += ["--workers", str(args.workers)]
    argv += ["--cache-entries", str(args.cache_entries)]
    if args.cache_ttl is not None:
        argv += ["--cache-ttl", str(args.cache_ttl)]
    if args.cache_file is not None:
        argv += ["--cache-file", args.cache_file]
    if args.deadline is not None:
        argv += ["--deadline", str(args.deadline)]
    argv += ["--warm-ratio", str(args.warm_ratio)]
    if args.log_file is not None:
        argv += ["--log-file", args.log_file]
    argv += ["--queue-high", str(args.queue_high)]
    if args.queue_low is not None:
        argv += ["--queue-low", str(args.queue_low)]
    argv += ["--max-connections", str(args.max_connections)]
    argv += ["--shed-retry-ms", str(args.shed_retry_ms)]
    if args.read_timeout is not None:
        argv += ["--read-timeout", str(args.read_timeout)]
    if args.journal_file is not None:
        argv += ["--journal-file", args.journal_file]
    if getattr(args, "shared_dir", None) is not None:
        argv += ["--shared-dir", args.shared_dir]
    return argv
