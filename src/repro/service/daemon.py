"""The long-running analysis daemon: asyncio server over TCP or UNIX.

:class:`AnalysisDaemon` is the composition layer the ROADMAP's
"serve heavy traffic" line has been building toward: requests arrive
over a local socket in the NDJSON protocol (:mod:`.protocol`), are
normalized into batch :class:`~repro.batch.jobs.JobSpec` values, and
are answered in cache-outcome order of preference:

1. **hit** -- the content-addressed cache (:mod:`.cache`) already holds
   a verified result for this exact (program, options) fingerprint:
   answer immediately, zero solver work;
2. **warm** -- a donor entry with the same options and a *small* CFG
   diff exists: resume SLR+ from its stored snapshot
   (:mod:`.executor`), re-verify, answer;
3. **miss** -- solve cold under full supervision (deadline watchdog,
   escalation ladder, independent verification), then cache the result
   together with its resume snapshot.

``check`` requests ride the same pipeline with a different normalizer
(:func:`~repro.service.protocol.check_request_to_jobspec`): they are
cached by the same content-addressed keys (the job ``kind`` and the
canonical rule set are part of the fingerprint) but never warm-start --
diagnostics are either exact cache hits or recomputed cold.

Identical requests arriving concurrently are **coalesced**: the second
awaits the first's execution instead of repeating it.  Execution runs
on a bounded worker pool off the event loop, so slow solves never block
protocol handling.  ``shutdown`` drains in-flight work, persists the
cache index for a warm restart, and only then stops the loop; every
request is recorded in the structured JSON request log (:mod:`.reqlog`).

Production hardening (see ``docs/service-reliability.md``):

* **admission control** (:mod:`.admission`) -- a bounded pending budget
  with high/low watermarks sheds excess ``solve``/``check`` load with a
  structured ``overloaded`` error and a ``retry_after_ms`` hint instead
  of queueing unboundedly, and a max-connections cap refuses socket
  floods before they cost a file descriptor each;
* **read deadlines** -- a connection that stalls mid-request line is
  answered with a ``timeout`` error and closed, so slow clients cannot
  pin protocol handling forever;
* **crash-safe journaling** (:mod:`.journal`) -- admitted requests are
  journaled before work starts and settled at response; a restarted
  daemon reports interrupted requests and re-executes them into the
  cache, so a SIGKILL loses no admitted request;
* **honest request logging** -- shed, stalled, disconnected-mid-request
  and deadline-exceeded requests are logged alongside completions.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.batch.jobs import JobSpec, options_fingerprint, spec_fingerprint
from repro.service.admission import AdmissionController
from repro.service.cache import CacheEntry, ResultCache
from repro.service.journal import InflightJournal
from repro.service.executor import (
    DEFAULT_WARM_RATIO,
    ServiceExecution,
    execute_service_job,
)
from repro.service.protocol import (
    PROTOCOL,
    ProtocolError,
    check_request_to_jobspec,
    decode,
    encode,
    error_response,
    program_sha,
    request_operation,
    solve_request_to_jobspec,
)
from repro.service.reqlog import RequestLog
from repro.service.sockets import prepare_socket_path
from repro.solvers.registry import capability_listing

#: Result statuses worth caching: complete, independently verified
#: analyses, plus completed check runs (``findings`` is a *successful*
#: check that found bugs, not a failure).  Failures (input errors,
#: divergence, faults) are never cached -- a retry must re-attempt them.
_CACHEABLE = ("ok", "unknown", "violated", "findings")


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance."""

    #: UNIX socket path; when set, wins over TCP.
    socket_path: Optional[str] = None
    #: TCP bind address (``port=0``: ephemeral, read it back off
    #: :attr:`AnalysisDaemon.address`).
    host: str = "127.0.0.1"
    port: int = 0
    #: Executor threads = maximum concurrently solving requests.
    workers: int = 2
    #: Cache bound, TTL (seconds; ``None`` = no expiry) and persistence
    #: path (loaded at start when present, written on drain).
    cache_entries: int = 256
    cache_ttl: Optional[float] = None
    cache_path: Optional[str] = None
    #: Default per-request deadline (seconds), overridable per request.
    default_deadline: Optional[float] = None
    #: Warm-start threshold (see :func:`.executor.should_warm`).
    warm_ratio: float = DEFAULT_WARM_RATIO
    #: Request-log file (NDJSON); ``None`` disables logging.
    log_path: Optional[str] = None
    #: Admission control: pending ``solve``/``check`` requests beyond
    #: which new work is shed with an ``overloaded`` error, and the
    #: backlog at which shedding stops again (``None``: half of high).
    queue_high: int = 32
    queue_low: Optional[int] = None
    #: Concurrently open client connections; further connects are
    #: answered ``overloaded`` and closed.
    max_connections: int = 64
    #: Base retry-after hint (milliseconds) for shed requests.
    shed_retry_ms: int = 250
    #: Per-connection read deadline (seconds) waiting for a complete
    #: request line; ``None`` disables it.
    read_timeout: Optional[float] = None
    #: In-flight journal file (NDJSON); ``None`` disables journaling.
    journal_path: Optional[str] = None
    #: Re-execute journaled requests a previous process died holding.
    requeue_recovered: bool = True
    #: Fleet shared-store directory (:class:`repro.fleet.store.
    #: SharedStore`); ``None`` keeps the daemon standalone.  When set,
    #: verified results (and their warm snapshots) are published
    #: fleet-wide, exact repeats missed locally are answered from the
    #: store, and sibling shards' snapshots serve as warm donors.
    shared_dir: Optional[str] = None
    #: Shared-store entry bound (pruned oldest-first beyond it).
    shared_max_entries: int = 4096


class AnalysisDaemon:
    """One persistent analysis service instance."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        cache: Optional[ResultCache] = None,
        log: Optional[RequestLog] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.cache = cache or ResultCache(
            max_entries=self.config.cache_entries,
            ttl=self.config.cache_ttl,
        )
        self.log = log or RequestLog(path=self.config.log_path)
        self.started_at = time.time()
        #: Request counters by outcome, served via ``status``.
        self.counters: Dict[str, int] = {
            "total": 0,
            "solve": 0,
            "check": 0,
            "hit": 0,
            "warm": 0,
            "miss": 0,
            "bypass": 0,
            "coalesced": 0,
            "errors": 0,
            "rejected": 0,
            "shed": 0,
            "stalled": 0,
            "disconnected": 0,
            "deadline": 0,
            "requeued": 0,
            "shared_hit": 0,
            "shared_warm": 0,
        }
        self.shared = None
        if self.config.shared_dir is not None:
            # Deferred import: repro.fleet depends on repro.service, so
            # the service package must not import it at module time.
            from repro.fleet.store import SharedStore

            self.shared = SharedStore(
                self.config.shared_dir,
                max_entries=self.config.shared_max_entries,
            )
        self.admission = AdmissionController(
            queue_high=self.config.queue_high,
            queue_low=self.config.queue_low,
            max_connections=self.config.max_connections,
            retry_ms=self.config.shed_retry_ms,
        )
        self.journal = InflightJournal(self.config.journal_path)
        self._requeue_task: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-service",
        )
        self._seq = 0
        self._draining = False
        self._done = asyncio.Event()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: spec fingerprint -> in-flight execution (single-flight).
        self._singleflight: Dict[str, asyncio.Future] = {}
        self.cache_loaded = 0
        #: Whether :meth:`start` removed a stale predecessor's socket.
        self.stale_socket_removed = False

    # ----------------------------------------------------------------- #
    # Lifecycle.                                                        #
    # ----------------------------------------------------------------- #

    @property
    def address(self) -> Tuple:
        """``("unix", path)`` or ``("tcp", host, port)`` once started."""
        if self.config.socket_path is not None:
            return ("unix", self.config.socket_path)
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return ("tcp", host, port)

    async def start(self) -> None:
        """Bind the socket and restore the persisted cache index."""
        cfg = self.config
        if cfg.cache_path and os.path.exists(cfg.cache_path):
            self.cache_loaded = self.cache.load(cfg.cache_path)
        if cfg.socket_path is not None:
            # Probe before binding: unlink only a *stale* socket (a
            # crashed predecessor's corpse); a live listener raises
            # SocketInUseError instead of being hijacked.
            self.stale_socket_removed = prepare_socket_path(cfg.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=cfg.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=cfg.host, port=cfg.port
            )
        if self.journal.recovered and cfg.requeue_recovered:
            self._requeue_task = asyncio.ensure_future(self._requeue())

    async def _requeue(self) -> None:
        """Re-execute journaled requests a crashed process died holding.

        Each recovered ``begin`` record carries the original message, so
        the request replays through the normal pipeline: the result
        lands in the cache (unless already there) and the journal entry
        is settled.  Every replay is logged with outcome ``recovered``.
        """
        for record in list(self.journal.recovered):
            if self._draining:
                break
            rid = str(record.get("rid", "?"))
            op = str(record.get("op", "solve"))
            message = record.get("message")
            try:
                if not isinstance(message, dict):
                    raise ProtocolError("journal record carries no message")
                normalize = (
                    check_request_to_jobspec if op == "check"
                    else solve_request_to_jobspec
                )
                spec, _ = normalize(
                    message, default_deadline=self.config.default_deadline
                )
                key = spec_fingerprint(spec)
                if self.cache.peek(key) is None:
                    await self._execute(spec, key, False)
                self.counters["requeued"] += 1
                self.log.log(
                    request=rid, op=op, outcome="recovered", key=key
                )
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception as err:
                self.log.log(
                    request=rid,
                    op=op,
                    outcome="recovered-error",
                    error=str(err),
                )
            finally:
                self.journal.settle(rid)

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        await self._done.wait()
        await self._close()

    async def run(self) -> None:
        """Start and serve; the CLI's whole daemon lifetime."""
        await self.start()
        await self.serve_until_shutdown()

    def request_shutdown(self) -> None:
        """Trigger a graceful drain from outside the protocol (signals)."""
        self._draining = True
        self._done.set()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._requeue_task is not None and not self._requeue_task.done():
            # The requeue loop checks _draining between records, so this
            # finishes promptly once a drain has begun.
            try:
                await self._requeue_task
            except asyncio.CancelledError:  # pragma: no cover - teardown
                pass
        await self._drain()
        self._persist()
        self.journal.close()
        self._pool.shutdown(wait=True)
        if (
            self.config.socket_path is not None
            and os.path.exists(self.config.socket_path)
        ):
            os.unlink(self.config.socket_path)
        self.log.close()

    async def _drain(self) -> None:
        """Wait until no request is executing."""
        while self._inflight:
            self._idle.clear()
            await self._idle.wait()

    def _persist(self) -> int:
        if not self.config.cache_path:
            return 0
        return self.cache.save(self.config.cache_path)

    # ----------------------------------------------------------------- #
    # Connection handling.                                              #
    # ----------------------------------------------------------------- #

    async def _read_request_line(self, reader: asyncio.StreamReader) -> bytes:
        """The next request line, bounded by the read deadline."""
        if self.config.read_timeout is None:
            return await reader.readline()
        return await asyncio.wait_for(
            reader.readline(), timeout=self.config.read_timeout
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername") or "unix"
        if not self.admission.try_connect():
            await self._refuse_connection(writer)
            return
        try:
            while True:
                try:
                    line = await self._read_request_line(reader)
                except asyncio.TimeoutError:
                    # A stalled client: no complete request line within
                    # the read deadline.  Answer, close, free the slot.
                    self.counters["stalled"] += 1
                    self.log.log(
                        request="-", op="?", outcome="stalled",
                        peer=str(peer),
                    )
                    writer.write(
                        encode(
                            error_response(
                                None,
                                f"no request line within the "
                                f"{self.config.read_timeout:g}s read "
                                f"deadline",
                                code="timeout",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(error_response(None, "request line too long"))
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF mid-line: the client died (or the connection
                    # was cut) partway through writing a request.  There
                    # is nothing well-formed to answer.
                    self.counters["disconnected"] += 1
                    self.log.log(
                        request="-",
                        op="?",
                        outcome="disconnected",
                        peer=str(peer),
                        partial_bytes=len(line),
                    )
                    break
                if not line.strip():
                    continue
                response, close = await self._dispatch(line, peer)
                try:
                    writer.write(encode(response))
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    # The client vanished between request and response;
                    # the work is done (and cached) but unclaimed.
                    self.counters["disconnected"] += 1
                    self.log.log(
                        request=response.get("request", "-"),
                        op=response.get("op", "?"),
                        outcome="disconnected",
                        peer=str(peer),
                    )
                    break
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.admission.disconnect()
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # Peer went away, or the loop is tearing down around us
                # after a drain -- either way the connection is gone.
                pass

    async def _refuse_connection(
        self, writer: asyncio.StreamWriter
    ) -> None:
        """Answer ``overloaded`` and close a connection past the cap."""
        try:
            writer.write(
                encode(
                    error_response(
                        None,
                        f"connection limit reached "
                        f"({self.admission.max_connections} active)",
                        code="overloaded",
                        retry_after_ms=self.admission.retry_after_ms(),
                    )
                )
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes, peer) -> Tuple[dict, bool]:
        """Route one request line; returns (response, close-connection)."""
        self._seq += 1
        rid = f"r{self._seq:06d}"
        self.counters["total"] += 1
        try:
            message = decode(line)
            op = request_operation(message)
        except ProtocolError as err:
            self.counters["errors"] += 1
            self.log.log(request=rid, op="?", outcome="error", error=str(err))
            return error_response(None, str(err), request=rid), False

        if op == "ping":
            return {
                "ok": True,
                "op": "ping",
                "protocol": PROTOCOL,
                "request": rid,
                "role": "daemon",
            }, False
        if op == "solvers":
            return {
                "ok": True,
                "op": "solvers",
                "request": rid,
                "solvers": capability_listing(),
            }, False
        if op == "status":
            return self._status(rid), False
        if op == "shutdown":
            return await self._shutdown(rid), True

        # solve / check: admission control before any work is queued.
        self.counters[op] += 1
        if self._draining:
            self.counters["rejected"] += 1
            self.log.log(
                request=rid, op=op, outcome="shed", reason="draining"
            )
            return error_response(
                op,
                "daemon is draining; resubmit elsewhere",
                code="draining",
                request=rid,
            ), False
        if not self.admission.try_admit():
            self.counters["shed"] += 1
            hint = self.admission.retry_after_ms()
            self.log.log(
                request=rid,
                op=op,
                outcome="shed",
                reason="overloaded",
                queue_depth=self.admission.pending,
                retry_after_ms=hint,
            )
            return error_response(
                op,
                f"daemon overloaded: {self.admission.pending} requests "
                f"pending (high watermark "
                f"{self.admission.queue_high}); retry after the hint",
                code="overloaded",
                retry_after_ms=hint,
                request=rid,
            ), False
        try:
            return await self._solve(message, rid, peer, op), False
        finally:
            self.admission.release()

    # ----------------------------------------------------------------- #
    # Operations.                                                       #
    # ----------------------------------------------------------------- #

    def _status(self, rid: str) -> dict:
        return {
            "ok": True,
            "op": "status",
            "request": rid,
            "protocol": PROTOCOL,
            "role": "daemon",
            "shared": (
                self.shared.stats() if self.shared is not None else None
            ),
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": self.config.workers,
            "draining": self._draining,
            "in_flight": self._inflight,
            "requests": dict(self.counters),
            "cache": self.cache.stats(),
            "cache_loaded": self.cache_loaded,
            "admission": self.admission.stats(),
            "journal": self.journal.stats(),
        }

    async def _shutdown(self, rid: str) -> dict:
        """Drain in-flight work, persist the cache, then stop the loop."""
        self._draining = True
        await self._drain()
        persisted = self._persist()
        self.log.log(request=rid, op="shutdown", outcome="drained")
        self._done.set()
        return {
            "ok": True,
            "op": "shutdown",
            "request": rid,
            "drained": True,
            "persisted_entries": persisted,
            "journal_open": len(self.journal),
        }

    async def _solve(self, message: dict, rid: str, peer, op: str) -> dict:
        """``solve`` and ``check``: one pipeline, two normalizers.

        The two operations differ only in request normalization (a
        ``check`` adds the rule selection and lands in a ``kind="check"``
        JobSpec) -- caching, single-flighting and the worker pool are
        shared, and the spec fingerprint keys on ``kind`` and ``rules``
        so the two can never serve each other's cache entries.
        """
        started = time.perf_counter()
        normalize = (
            check_request_to_jobspec if op == "check"
            else solve_request_to_jobspec
        )
        try:
            spec, fresh = normalize(
                message, default_deadline=self.config.default_deadline
            )
        except ProtocolError as err:
            self.counters["errors"] += 1
            self.log.log(request=rid, op=op, outcome="error", error=str(err))
            return error_response(op, str(err), request=rid)

        key = spec_fingerprint(spec)
        # Journal at admission, settle at response: the window in
        # between is exactly what a crash may interrupt, and the journal
        # record (carrying the original message) is what makes the
        # request re-executable on restart.
        self.journal.begin(rid, op, key, message)
        try:
            if not fresh:
                entry = self.cache.get(key)
                if entry is None and self.shared is not None:
                    # A sibling shard (or a previous fleet lifetime) may
                    # have solved this exact request; promote its entry
                    # into the local LRU so repeats stay local.
                    entry = self.shared.get(key)
                    if entry is not None:
                        self.counters["shared_hit"] += 1
                        self.cache.put(entry)
                if entry is not None:
                    self.counters["hit"] += 1
                    return self._respond(
                        rid, message, spec, key, "hit", entry.result, 0,
                        started, op=op,
                    )
            else:
                self.counters["bypass"] += 1

            execution, coalesced = await self._execute(spec, key, fresh)
            outcome = "warm" if execution.mode == "warm" else "miss"
            if fresh:
                outcome = "bypass"
            if coalesced:
                self.counters["coalesced"] += 1
            elif outcome == "warm":
                self.counters["warm"] += 1
                self.cache.warm_hits += 1
            elif outcome == "miss":
                self.counters["miss"] += 1
            result = execution.result
            return self._respond(
                rid,
                message,
                spec,
                key,
                outcome,
                result.to_json(),
                result.evaluations,
                started,
                warm_donor=execution.warm_donor,
                dirty_nodes=execution.dirty_nodes,
                op=op,
                failure_kind=execution.failure_kind,
            )
        finally:
            self.journal.settle(rid)

    async def _execute(
        self, spec: JobSpec, key: str, fresh: bool
    ) -> Tuple[ServiceExecution, bool]:
        """Run a request on the worker pool, single-flighted per key."""
        pending = self._singleflight.get(key)
        if pending is not None and not fresh:
            return await asyncio.shield(pending), True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._singleflight[key] = future
        self._inflight += 1
        try:
            options = options_fingerprint(spec)
            donors = [
                (e.key, e.source, e.state)
                for e in self.cache.warm_candidates(options, exclude=key)
            ]
            shared_keys = set()
            if self.shared is not None:
                local = {donor_key for donor_key, _, _ in donors}
                for e in self.shared.warm_candidates(options, exclude=key):
                    if e.key not in local:
                        donors.append((e.key, e.source, e.state))
                        shared_keys.add(e.key)
            execution = await loop.run_in_executor(
                self._pool,
                lambda: execute_service_job(
                    spec, donors, max_dirty_ratio=self.config.warm_ratio
                ),
            )
            if execution.warm_donor in shared_keys:
                # The winning donor came off the shared index: a warm
                # start this shard could never have served alone.
                self.counters["shared_warm"] += 1
            if (
                execution.result.status in _CACHEABLE
                and execution.verified
            ):
                entry = CacheEntry(
                    key=key,
                    options=options,
                    source=spec.source,
                    result=execution.result.to_json(),
                    state=execution.state,
                )
                self.cache.put(entry)
                if self.shared is not None:
                    self.shared.put(entry)
                    if self.shared.stores % 64 == 0:
                        self.shared.prune()
            future.set_result(execution)
            return execution, False
        except BaseException as err:  # pragma: no cover - defensive
            future.set_exception(err)
            raise
        finally:
            self._singleflight.pop(key, None)
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()

    def _respond(
        self,
        rid: str,
        message: dict,
        spec: JobSpec,
        key: str,
        outcome: str,
        result: dict,
        served_evaluations: int,
        started: float,
        warm_donor: Optional[str] = None,
        dirty_nodes: int = 0,
        op: str = "solve",
        failure_kind: Optional[str] = None,
    ) -> dict:
        wall_ms = round((time.perf_counter() - started) * 1000.0, 3)
        extra = {}
        if op == "check":
            extra = {
                "rules": list(spec.rules),
                "findings": result.get("findings", 0),
            }
        log_outcome = outcome
        if failure_kind is not None:
            # Name *why* the request failed, not just that the cache
            # missed; a server-side deadline kill is an operational
            # outcome of its own.
            extra["failure"] = failure_kind
            if failure_kind == "deadline":
                log_outcome = "deadline"
                self.counters["deadline"] += 1
        self.log.log(
            request=rid,
            op=op,
            outcome=log_outcome,
            program=program_sha(spec.source),
            key=key,
            status=result["status"],
            code=result["code"],
            evaluations=served_evaluations,
            solver=spec.solver,
            domain=spec.domain,
            context=spec.context,
            update_op=spec.op,
            warm_donor=warm_donor,
            dirty_nodes=dirty_nodes,
            wall_ms=wall_ms,
            **extra,
        )
        response = {
            "ok": True,
            "op": op,
            "request": rid,
            "cache": outcome,
            "key": key,
            "served_evaluations": served_evaluations,
            "result": result,
            "wall_ms": wall_ms,
        }
        if failure_kind is not None:
            response["failure"] = failure_kind
        if "id" in message:
            response["id"] = message["id"]
        if warm_donor is not None:
            response["warm_donor"] = warm_donor
            response["dirty_nodes"] = dirty_nodes
        return response
