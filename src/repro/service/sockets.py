"""UNIX-socket path hygiene shared by the daemon and the fleet router.

A daemon that dies without draining (SIGKILL, interpreter abort, power
loss) leaves its socket *file* behind -- a filesystem entry nothing
listens on.  The naive restart behaviours are both wrong:

* binding anyway fails with ``Address already in use`` (the historical
  failure this module removes), turning every crash into a manual
  ``rm`` before the supervisor's respawn can succeed;
* unlinking unconditionally *steals the address from a live daemon*,
  silently splitting clients between two processes that share nothing.

:func:`prepare_socket_path` does the only safe thing: **probe first**.
A short connect attempt distinguishes a live listener (somebody
accepts) from a stale corpse (``ECONNREFUSED``/``ENOENT``); only the
corpse is unlinked, and a live listener raises a clear
:class:`SocketInUseError` naming the offending path.
"""

from __future__ import annotations

import errno
import os
import socket
import stat

#: How long the liveness probe waits for a connect, in seconds.  Local
#: UNIX-socket accepts are effectively instant; anything slower than
#: this is either dead or so wedged it should be treated as dead.
PROBE_TIMEOUT_S = 0.5


class SocketInUseError(OSError):
    """The socket path is owned by a *live* listener; refusing to bind."""

    def __init__(self, path: str) -> None:
        super().__init__(
            errno.EADDRINUSE,
            f"socket {path!r} is owned by a live daemon; stop it (or "
            f"point this one at a different --socket path)",
        )
        self.path = path


def socket_is_live(path: str, timeout: float = PROBE_TIMEOUT_S) -> bool:
    """Whether something currently accepts connections on ``path``."""
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(timeout)
    try:
        probe.connect(path)
        return True
    except OSError:
        return False
    finally:
        probe.close()


def prepare_socket_path(path: str) -> bool:
    """Make ``path`` bindable; returns whether a stale socket was removed.

    * nothing at the path: nothing to do;
    * a socket file nobody accepts on: a crashed predecessor's corpse,
      unlinked so the caller can bind;
    * a socket file with a live listener: :class:`SocketInUseError`;
    * a non-socket file: left alone, :class:`OSError` -- refusing to
      delete data that was never ours.
    """
    try:
        mode = os.stat(path).st_mode
    except FileNotFoundError:
        return False
    if not stat.S_ISSOCK(mode):
        raise OSError(
            errno.EEXIST,
            f"{path!r} exists and is not a socket; refusing to remove it",
        )
    if socket_is_live(path):
        raise SocketInUseError(path)
    try:
        os.unlink(path)
    except FileNotFoundError:  # pragma: no cover - lost a benign race
        pass
    return True
