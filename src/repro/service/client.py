"""Synchronous, *resilient* client for the analysis daemon.

:class:`ServiceClient` speaks the NDJSON protocol over a UNIX or TCP
socket with plain blocking sockets -- no asyncio required on the client
side, so the CLI, tests and third-party scripts stay trivial::

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        reply = client.solve("int main() { return 0; }")
        assert reply["cache"] in ("hit", "warm", "miss")

One request maps to one response line; the connection is reusable for
any number of requests.

Resilience (see ``docs/service-reliability.md``):

* **typed failures** -- transport problems and daemon error replies
  surface as distinct :class:`ServiceError` subclasses, so callers can
  tell "no daemon is running" (:class:`DaemonUnavailableError`, with an
  actionable message) from "the daemon shed my request"
  (:class:`ServiceOverloadedError`) from "my request was invalid";
* **retries with exponential backoff and full jitter** -- transient
  failures (connect refused, connection reset, ``overloaded`` /
  ``draining`` replies, timeouts before the request was written) are
  retried under a :class:`RetryPolicy`, honouring the daemon's
  ``retry_after_ms`` hints and a total per-call deadline budget.
  Timeouts *after* the request was fully written are not retried
  automatically -- the work may still be running server-side;
* **a circuit breaker** -- after ``breaker_threshold`` consecutive
  transport errors the client fails fast with
  :class:`CircuitOpenError` for ``breaker_cooldown`` seconds instead of
  hammering a dead daemon, then lets a single probe through.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Optional

from repro.service.protocol import MAX_LINE_BYTES, decode, encode


class ServiceError(RuntimeError):
    """A transport failure or an ``ok: false`` reply from the daemon."""

    #: Whether an automatic retry may succeed (class default; instances
    #: may override).
    retryable = False

    def __init__(self, message: str, response: Optional[dict] = None) -> None:
        super().__init__(message)
        #: The daemon's full error reply, when one was received.
        self.response = response

    @property
    def code(self) -> Optional[str]:
        """The daemon's machine-readable error code, when one was sent."""
        if self.response is None:
            return None
        return self.response.get("code")


class ServiceTransportError(ServiceError):
    """The connection failed below the protocol (reset, refused, EOF)."""

    retryable = True


class DaemonUnavailableError(ServiceTransportError):
    """No daemon answered at the configured address at all."""

    def __init__(self, target: str, cause: object) -> None:
        super().__init__(
            f"cannot reach the daemon at {target}: {cause} -- is the "
            f"daemon running? start one with `repro serve`"
        )
        self.target = target


class ServiceTimeout(ServiceTransportError):
    """The daemon did not answer within the socket timeout.

    Only retryable when the request was *not* yet fully written
    (``wrote=False``): after a complete write the work may still be
    running server-side, and whether to re-submit is the caller's call.
    """

    def __init__(self, message: str, wrote: bool) -> None:
        super().__init__(message)
        #: Whether the request line had been fully written.
        self.wrote = wrote
        self.retryable = not wrote


class ServiceOverloadedError(ServiceError):
    """The request was shed (``overloaded``/``draining``) or, against a
    fleet router, no shard was reachable (``unavailable``) -- all
    retryable after the reply's ``retry_after_ms`` hint."""

    retryable = True

    @property
    def retry_after_ms(self) -> Optional[int]:
        """The daemon's backoff hint, when one was sent."""
        if self.response is None:
            return None
        return self.response.get("retry_after_ms")


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open; no attempt was made."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`ServiceClient` call retries transient failures.

    Delays follow exponential backoff with **full jitter**: attempt
    ``n`` sleeps a uniform random time in ``[0, min(max_delay,
    base_delay * multiplier**(n-1))]``, floored by the daemon's
    ``retry_after_ms`` hint when one was sent.  ``total_timeout``
    bounds the whole call (attempts plus sleeps); the breaker fields
    configure the consecutive-transport-error circuit breaker
    (``breaker_threshold=None`` disables it).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    total_timeout: Optional[float] = 60.0
    breaker_threshold: Optional[int] = 5
    breaker_cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.total_timeout is not None and self.total_timeout <= 0:
            raise ValueError("total_timeout must be positive")
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")


#: A policy that never retries and never opens the breaker -- the
#: pre-hardening single-attempt behaviour, for callers that want it.
NO_RETRY = RetryPolicy(attempts=1, breaker_threshold=None)


class ServiceClient:
    """A blocking connection to one analysis daemon.

    :param socket_path: UNIX socket path (wins over host/port).
    :param host: TCP host (with ``port``) when no socket path is given.
    :param port: TCP port.
    :param timeout: per-attempt socket timeout in seconds (``None``:
        block indefinitely -- solves can legitimately take a while).
    :param retry: the :class:`RetryPolicy`; ``None`` uses the default
        (3 attempts, jittered backoff, breaker at 5).  Pass
        :data:`NO_RETRY` for strict single-attempt behaviour.
    :param chaos: optional transport fault injector
        (:class:`repro.supervise.chaos.TransportChaosPolicy`) -- the
        socket chaos suite's hook, never set in production.
    :param rng: randomness source for jitter, injectable for tests.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        retry: Optional[RetryPolicy] = None,
        chaos=None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self._rng = rng if rng is not None else random.Random()
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        # Operational counters (see :meth:`stats`).
        self.requests_total = 0
        self.attempts_total = 0
        self.retries = 0
        self.transport_errors = 0
        self._consecutive_errors = 0
        self._opened_at: Optional[float] = None

    # ----------------------------------------------------------------- #
    # Connection plumbing.                                              #
    # ----------------------------------------------------------------- #

    @property
    def target(self) -> str:
        """Human-readable address, for error messages."""
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except (ConnectionRefusedError, FileNotFoundError) as err:
            raise DaemonUnavailableError(self.target, err) from err
        except socket.timeout as err:
            raise ServiceTimeout(
                f"timed out after {self.timeout}s connecting to "
                f"{self.target}",
                wrote=False,
            ) from err
        except OSError as err:
            raise ServiceTransportError(
                f"cannot reach the daemon: {err}"
            ) from err
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ServiceError("response line too long")
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout as err:
                self.close()
                raise ServiceTimeout(
                    f"timed out after {self.timeout}s waiting for the "
                    f"daemon",
                    wrote=True,
                ) from err
            except OSError as err:
                self.close()
                raise ServiceTransportError(
                    f"connection failed: {err}"
                ) from err
            if not chunk:
                self.close()
                raise ServiceTransportError("daemon closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    # ----------------------------------------------------------------- #
    # The retry loop.                                                   #
    # ----------------------------------------------------------------- #

    def request(self, message: dict) -> dict:
        """Send one request and return its (``ok: true``) reply.

        Transient failures are retried under :attr:`retry`; see the
        module docstring for what counts as transient.

        :raises ServiceError: (a concrete subclass where one applies)
            on non-retryable failures, or once retries are exhausted.
        """
        policy = self.retry
        self.requests_total += 1
        budget = (
            None
            if policy.total_timeout is None
            else time.monotonic() + policy.total_timeout
        )
        attempt = 1
        while True:
            self._breaker_gate()
            try:
                reply = self._attempt(message)
            except ServiceError as err:
                if isinstance(err, ServiceTransportError):
                    self.transport_errors += 1
                    self._record_transport_failure()
                if not err.retryable or attempt >= policy.attempts:
                    raise
                delay = self._backoff_delay(attempt, err)
                if budget is not None and time.monotonic() + delay > budget:
                    raise
                self.retries += 1
                attempt += 1
                time.sleep(delay)
                continue
            self._record_success()
            return reply

    def _attempt(self, message: dict) -> dict:
        """One connect-write-read round trip; classifies every failure."""
        self.attempts_total += 1
        self.connect()
        payload = encode(message)
        kind = self.chaos.decide() if self.chaos is not None else None
        if kind == "stall":
            time.sleep(self.chaos.delay_seconds)
        try:
            if kind == "drop":
                self._sock.sendall(payload[: max(1, len(payload) // 2)])
                self.close()
                raise ServiceTransportError(
                    "chaos: connection dropped mid-request"
                )
            if kind == "truncate":
                self._sock.sendall(payload[:-1])
                self.close()
                raise ServiceTransportError(
                    "chaos: request line truncated"
                )
            self._sock.sendall(payload)
        except socket.timeout as err:
            self.close()
            raise ServiceTimeout(
                f"timed out after {self.timeout}s writing to the daemon",
                wrote=False,
            ) from err
        except OSError as err:
            self.close()
            raise ServiceTransportError(
                f"connection failed: {err}"
            ) from err
        reply = decode(self._read_line())
        if not reply.get("ok"):
            error = reply.get("error", "daemon reported an error")
            if reply.get("code") in ("overloaded", "draining", "unavailable"):
                raise ServiceOverloadedError(error, reply)
            raise ServiceError(error, reply)
        return reply

    def _backoff_delay(self, attempt: int, err: ServiceError) -> float:
        """Exponential backoff with full jitter, floored by the hint."""
        policy = self.retry
        cap = min(
            policy.max_delay,
            policy.base_delay * (policy.multiplier ** (attempt - 1)),
        )
        delay = self._rng.uniform(0.0, cap)
        hint = getattr(err, "retry_after_ms", None)
        if hint:
            delay = max(delay, hint / 1000.0)
        return delay

    # ----------------------------------------------------------------- #
    # The circuit breaker.                                              #
    # ----------------------------------------------------------------- #

    @property
    def circuit_state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        if self._opened_at is None:
            return "closed"
        elapsed = time.monotonic() - self._opened_at
        if elapsed < self.retry.breaker_cooldown:
            return "open"
        return "half-open"

    def _breaker_gate(self) -> None:
        if self.retry.breaker_threshold is None or self._opened_at is None:
            return
        elapsed = time.monotonic() - self._opened_at
        if elapsed < self.retry.breaker_cooldown:
            remaining = self.retry.breaker_cooldown - elapsed
            raise CircuitOpenError(
                f"circuit open after {self._consecutive_errors} "
                f"consecutive transport errors to {self.target}; "
                f"retry in {remaining:.1f}s"
            )
        # Half-open: let this attempt through as the probe.

    def _record_transport_failure(self) -> None:
        self._consecutive_errors += 1
        threshold = self.retry.breaker_threshold
        if threshold is not None and self._consecutive_errors >= threshold:
            self._opened_at = time.monotonic()

    def _record_success(self) -> None:
        self._consecutive_errors = 0
        self._opened_at = None

    def stats(self) -> dict:
        """Client-side operational counters and circuit state."""
        return {
            "requests": self.requests_total,
            "attempts": self.attempts_total,
            "retries": self.retries,
            "transport_errors": self.transport_errors,
            "consecutive_errors": self._consecutive_errors,
            "circuit": self.circuit_state,
        }

    # ----------------------------------------------------------------- #
    # Operations.                                                       #
    # ----------------------------------------------------------------- #

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def solve(self, source: str, **options) -> dict:
        """Submit a program; options mirror the protocol's solve fields
        (``solver``, ``domain``, ``context``, ``update_op``,
        ``widen_delay``, ``thresholds``, ``max_evals``, ``verify``,
        ``deadline``, ``deadline_ms``, ``fresh``, ``label``, ``id``)."""
        return self.request({"op": "solve", "source": source, **options})

    def check(self, source: str, rules=None, **options) -> dict:
        """Run the checker rules over a program.

        Options mirror :meth:`solve` minus ``verify`` (rejected by the
        protocol for checks); ``rules`` selects a rule subset (``None``:
        all rules).  The reply's ``result`` carries ``findings`` and the
        full ``diagnostics`` list.
        """
        message = {"op": "check", "source": source, **options}
        if rules is not None:
            message["rules"] = list(rules)
        return self.request(message)

    def status(self) -> dict:
        return self.request({"op": "status"})

    def solvers(self) -> list:
        """The daemon's solver capability listing."""
        return self.request({"op": "solvers"})["solvers"]

    def shutdown(self) -> dict:
        """Ask for a graceful drain; the daemon exits after replying."""
        reply = self.request({"op": "shutdown"})
        self.close()
        return reply
