"""Synchronous client for the analysis daemon.

:class:`ServiceClient` speaks the NDJSON protocol over a UNIX or TCP
socket with plain blocking sockets -- no asyncio required on the client
side, so the CLI, tests and third-party scripts stay trivial::

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        reply = client.solve("int main() { return 0; }")
        assert reply["cache"] in ("hit", "warm", "miss")

One request maps to one response line; the connection is reusable for
any number of requests.  Transport and daemon-side failures surface as
:class:`ServiceError` with the daemon's message when one was sent.
"""

from __future__ import annotations

import socket
from typing import Optional

from repro.service.protocol import MAX_LINE_BYTES, decode, encode


class ServiceError(RuntimeError):
    """A transport failure or an ``ok: false`` reply from the daemon."""

    def __init__(self, message: str, response: Optional[dict] = None) -> None:
        super().__init__(message)
        #: The daemon's full error reply, when one was received.
        self.response = response


class ServiceClient:
    """A blocking connection to one analysis daemon.

    :param socket_path: UNIX socket path (wins over host/port).
    :param host: TCP host (with ``port``) when no socket path is given.
    :param port: TCP port.
    :param timeout: per-request socket timeout in seconds (``None``:
        block indefinitely -- solves can legitimately take a while).
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a socket path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    # ----------------------------------------------------------------- #
    # Connection plumbing.                                              #
    # ----------------------------------------------------------------- #

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.socket_path)
            else:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
        except OSError as err:
            raise ServiceError(f"cannot reach the daemon: {err}") from err
        self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._buffer = b""

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _read_line(self) -> bytes:
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_LINE_BYTES:
                raise ServiceError("response line too long")
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout as err:
                raise ServiceError(
                    f"timed out after {self.timeout}s waiting for the daemon"
                ) from err
            except OSError as err:
                raise ServiceError(f"connection failed: {err}") from err
            if not chunk:
                raise ServiceError("daemon closed the connection")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def request(self, message: dict) -> dict:
        """Send one request and return its (``ok: true``) reply.

        :raises ServiceError: on transport problems or error replies.
        """
        self.connect()
        try:
            self._sock.sendall(encode(message))
        except OSError as err:
            raise ServiceError(f"connection failed: {err}") from err
        reply = decode(self._read_line())
        if not reply.get("ok"):
            raise ServiceError(
                reply.get("error", "daemon reported an error"), reply
            )
        return reply

    # ----------------------------------------------------------------- #
    # Operations.                                                       #
    # ----------------------------------------------------------------- #

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def solve(self, source: str, **options) -> dict:
        """Submit a program; options mirror the protocol's solve fields
        (``solver``, ``domain``, ``context``, ``update_op``,
        ``widen_delay``, ``thresholds``, ``max_evals``, ``verify``,
        ``deadline``, ``fresh``, ``label``, ``id``)."""
        return self.request({"op": "solve", "source": source, **options})

    def check(self, source: str, rules=None, **options) -> dict:
        """Run the checker rules over a program.

        Options mirror :meth:`solve` minus ``verify`` (rejected by the
        protocol for checks); ``rules`` selects a rule subset (``None``:
        all rules).  The reply's ``result`` carries ``findings`` and the
        full ``diagnostics`` list.
        """
        message = {"op": "check", "source": source, **options}
        if rules is not None:
            message["rules"] = list(rules)
        return self.request(message)

    def status(self) -> dict:
        return self.request({"op": "status"})

    def solvers(self) -> list:
        """The daemon's solver capability listing."""
        return self.request({"op": "solvers"})["solvers"]

    def shutdown(self) -> dict:
        """Ask for a graceful drain; the daemon exits after replying."""
        reply = self.request({"op": "shutdown"})
        self.close()
        return reply
