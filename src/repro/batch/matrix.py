"""The precision x cost strategy matrix: Figure 7 at corpus scale.

The paper's headline claim is a *relative* one: solving with the
combined operator ⌴ instead of plain widening/narrowing improves the
abstract value at roughly 39% of program points on the Malardalen WCET
suite (Figure 7), at a bounded evaluation-count cost.  The matrix
generalizes that measurement to *every* registered combine strategy
(:mod:`repro.strategies`): each corpus program is solved once per
strategy, every solution is compared point-by-point against the
baseline strategy's solution (:func:`repro.analysis.compare_results`),
and the per-cell precision counts plus solver costs are packaged in a
stable, machine-readable document -- ``repro bench --matrix``.

Schema (``format: repro-strategy-matrix/1``)::

    {
      "format":   "repro-strategy-matrix/1",
      "revision": "<git short rev or 'local'>",
      "python":   "3.12.1",
      "quick":    true,
      "baseline": "widen:delay=1",       # canonical baseline spec
      "strategies": ["widen:delay=1", "warrow:delay=1", ...],
      "cells": [        # one entry per (program, strategy), fixed order
        {
          "family": "wcet", "program": "bs",
          "strategy": "warrow:delay=1",
          "status": "ok", "code": 0,
          "hash": "<sha256 of the post solution>",
          "evaluations": 275, "updates": 144,
          "wall_time": 0.0104,
          "better": 9, "worse": 0, "equal": 24, "incomparable": 0,
          "total": 33,       # vs the baseline cell of the same program
          "error": ""
        }, ...
      ],
      "totals": {
        "cells": 42, "ok": 42, "failed": 0,
        "strategies": [    # aggregated over ok cells, strategy order
          {
            "strategy": "warrow:delay=1", "ok": 14, "failed": 0,
            "evaluations": 12345, "wall_time": 0.61,
            "improved_points": 123, "regressed_points": 0,
            "compared_points": 456, "improved_fraction": 0.2697,
            "programs_improved": 9
          }, ...
        ]
      }
    }

Precision counts are byte-stable across machines; wall times are not
and exist for trend plots only.  The Fig. 7 reproduction reads off the
``warrow`` row: a nonzero ``improved_fraction`` over the ``widen``
baseline with ``regressed_points == 0``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.batch.bench import git_revision
from repro.batch.jobs import build_domain, build_policy, solution_fingerprint
from repro.lang import LexError, ParseError, SemanticError, compile_program
from repro.solvers.stats import DivergenceError

#: Format marker of the strategy-matrix document schema.
MATRIX_FORMAT = "repro-strategy-matrix/1"

#: Strategy column set of a default matrix run: the Fig. 7 comparison
#: (widening baseline vs ⌴) plus the classical two-phase schedule.
DEFAULT_MATRIX_STRATEGIES = ("widen", "warrow", "twophase")

#: Evaluation budget per matrix cell.
_MAX_EVALS = 5_000_000

#: Per-cell fields persisted in a document's ``cells`` entries, in
#: schema order.
_CELL_FIELDS = (
    "family",
    "program",
    "strategy",
    "status",
    "code",
    "hash",
    "evaluations",
    "updates",
    "wall_time",
    "better",
    "worse",
    "equal",
    "incomparable",
    "total",
    "error",
)

_INT_CELL_FIELDS = (
    "code",
    "evaluations",
    "updates",
    "better",
    "worse",
    "equal",
    "incomparable",
    "total",
)


def split_column(column: str) -> Tuple[str, Optional[str]]:
    """Split a matrix column into ``(strategy spec, solver name)``.

    Columns are strategy specs, optionally suffixed with ``@solver`` to
    run the strategy under a non-default solver -- e.g. ``warrow@slr3``
    solves with ⌴ under the restarting solver.  No suffix leaves the
    solver at the analysis default (``slr+``).
    """
    spec, sep, solver = column.partition("@")
    return spec, (solver if sep else None)


def _run_cell(source: str, column: str, *, context: str, max_evals: int):
    """One (program, strategy) solve; returns (AnalysisResult, seconds).

    Phased strategies run the two-pass schedule, combine strategies a
    single generic solve -- both seeded with the CLI's default widening
    delay of 1 so the matrix isolates the *operator*, not the schedule.
    A ``spec@solver`` column threads the solver name through; precision
    then measures the operator *and* the evaluation order it induces.
    """
    from repro.analysis import analyze_program, collect_thresholds
    from repro.analysis.inter import analyze_program_twophase
    from repro.strategies import is_phased, resolve_spec, spec_needs_thresholds

    spec, solver = split_column(column)
    cfg = compile_program(source)
    thresholds = collect_thresholds(cfg) if spec_needs_thresholds(spec) else ()
    domain = build_domain("interval", thresholds)
    policy = build_policy(context, domain)
    started = time.perf_counter()
    if is_phased(spec):
        resolved = resolve_spec(spec, widen_delay=1)
        result = analyze_program_twophase(
            cfg,
            domain,
            policy=policy,
            max_evals=max_evals,
            widen_delay=resolved.get("delay", 1),
            track_contributions=(resolved.name == "decoupled"),
            solver=solver if solver is not None else "slr+",
        )
    else:
        result = analyze_program(
            cfg,
            domain,
            policy=policy,
            max_evals=max_evals,
            op_spec=spec,
            widen_delay=1,
            solver=solver if solver is not None else "slr+",
        )
    return result, time.perf_counter() - started


def _blank_cell(family: str, program: str, strategy: str) -> dict:
    return {
        "family": family,
        "program": program,
        "strategy": strategy,
        "status": "ok",
        "code": 0,
        "hash": "",
        "evaluations": 0,
        "updates": 0,
        "wall_time": 0.0,
        "better": 0,
        "worse": 0,
        "equal": 0,
        "incomparable": 0,
        "total": 0,
        "error": "",
    }


def _canonical_column(column: str) -> str:
    """Canonicalize one ``spec`` or ``spec@solver`` column.

    The spec part goes through the strategy registry's canonicalizer;
    the solver part through the solver registry (resolving aliases like
    ``slr-restart`` -> ``slr3`` and rejecting solvers that cannot run a
    combine strategy on a side-effecting system up front, before any
    solving starts).
    """
    from repro.solvers.registry import get_solver
    from repro.strategies import canonical_spec

    spec, solver = split_column(column)
    canon = canonical_spec(spec, widen_delay=1)
    if solver is None:
        return canon
    resolved = get_solver(
        solver, scope="local", side_effecting=True, takes_op=True
    )
    return f"{canon}@{resolved.name}"


def resolve_matrix_strategies(
    strategies: Sequence[str], baseline: str
) -> Tuple[List[str], str]:
    """Canonicalize and dedupe the strategy columns; baseline first.

    Columns are strategy specs, optionally ``spec@solver`` (see
    :func:`split_column`).

    :returns: ``(canonical specs, canonical baseline)``; the baseline
        is prepended when the column list does not already contain it.
    :raises SpecError, UnknownStrategyError: for invalid specs.
    :raises UnknownSolverError, SolverCapabilityError: for invalid
        ``@solver`` suffixes.
    """
    base = _canonical_column(baseline)
    columns: List[str] = [base]
    for spec in strategies:
        canon = _canonical_column(spec)
        if canon not in columns:
            columns.append(canon)
    return columns, base


def run_matrix(
    programs: Sequence[Tuple[str, str, str]],
    strategies: Sequence[str] = DEFAULT_MATRIX_STRATEGIES,
    *,
    baseline: str = "widen",
    context: str = "insensitive",
    max_evals: int = _MAX_EVALS,
    quick: bool = False,
    revision: Optional[str] = None,
) -> dict:
    """Solve every program under every strategy; build the document.

    :param programs: ``(family, name, source)`` rows, e.g. from
        :func:`repro.batch.corpus.matrix_programs`.
    :param strategies: strategy specs forming the columns; canonicalized
        and deduplicated, with ``baseline`` always included.
    :param baseline: the column every other cell's precision counts are
        measured against (the paper's is pure widening).
    :raises SpecError, UnknownStrategyError: for invalid strategy specs
        (before any solving starts).
    """
    columns, base = resolve_matrix_strategies(strategies, baseline)
    cells: List[dict] = []
    for family, program, source in programs:
        results: Dict[str, object] = {}
        for spec in columns:
            cell = _blank_cell(family, program, spec)
            try:
                result, seconds = _run_cell(
                    source, spec, context=context, max_evals=max_evals
                )
            except DivergenceError as err:
                cell.update(status="divergence", code=3, error=str(err))
            except (LexError, ParseError, SemanticError) as err:
                cell.update(status="input-error", code=2, error=str(err))
            except Exception as err:  # pragma: no cover - defensive
                cell.update(status="fault", code=4, error=repr(err))
            else:
                results[spec] = result
                stats = result.solver_result.stats
                cell.update(
                    hash=solution_fingerprint(
                        result.solver_result.sigma, result.lattice
                    ),
                    evaluations=stats.evaluations,
                    updates=stats.updates,
                    wall_time=round(seconds, 6),
                )
            cells.append(cell)
        baseline_result = results.get(base)
        if baseline_result is None:
            continue  # baseline failed: cost columns stand, precision empty
        from repro.analysis.compare import compare_results

        for cell in cells[-len(columns):]:
            result = results.get(cell["strategy"])
            if result is None:
                continue
            cmp_ = compare_results(result, baseline_result)
            cell.update(
                better=cmp_.better,
                worse=cmp_.worse,
                equal=cmp_.equal,
                incomparable=cmp_.incomparable,
                total=cmp_.total,
            )

    failed = sum(1 for cell in cells if cell["code"] != 0)
    per_strategy = []
    for spec in columns:
        mine = [c for c in cells if c["strategy"] == spec]
        ok = [c for c in mine if c["code"] == 0]
        compared = sum(c["total"] for c in ok)
        improved = sum(c["better"] for c in ok)
        per_strategy.append(
            {
                "strategy": spec,
                "ok": len(ok),
                "failed": len(mine) - len(ok),
                "evaluations": sum(c["evaluations"] for c in ok),
                "wall_time": round(sum(c["wall_time"] for c in ok), 6),
                "improved_points": improved,
                "regressed_points": sum(c["worse"] for c in ok),
                "compared_points": compared,
                "improved_fraction": (
                    round(improved / compared, 4) if compared else 0.0
                ),
                "programs_improved": sum(1 for c in ok if c["better"]),
            }
        )
    return {
        "format": MATRIX_FORMAT,
        "revision": revision if revision is not None else git_revision(),
        "python": platform.python_version(),
        "quick": bool(quick),
        "baseline": base,
        "strategies": columns,
        "cells": cells,
        "totals": {
            "cells": len(cells),
            "ok": len(cells) - failed,
            "failed": failed,
            "strategies": per_strategy,
        },
    }


def validate_matrix(doc: dict) -> List[str]:
    """Schema problems of a matrix document; empty when valid."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("format") != MATRIX_FORMAT:
        problems.append(
            f"format must be {MATRIX_FORMAT!r}, got {doc.get('format')!r}"
        )
    for key, kind in (
        ("revision", str),
        ("python", str),
        ("quick", bool),
        ("baseline", str),
        ("strategies", list),
        ("cells", list),
        ("totals", dict),
    ):
        if not isinstance(doc.get(key), kind):
            problems.append(f"missing or mistyped field {key!r}")
    strategies = doc.get("strategies")
    if isinstance(strategies, list) and doc.get("baseline") not in strategies:
        problems.append("baseline is not among the strategies")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        return problems
    seen = set()
    for pos, cell in enumerate(cells):
        where = f"cells[{pos}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} is not an object")
            continue
        for name in _CELL_FIELDS:
            if name not in cell:
                problems.append(f"{where} lacks field {name!r}")
        for name in _INT_CELL_FIELDS:
            if name in cell and not isinstance(cell[name], int):
                problems.append(f"{where}.{name} is not an integer")
        if "wall_time" in cell and not isinstance(
            cell["wall_time"], (int, float)
        ):
            problems.append(f"{where}.wall_time is not a number")
        key = (cell.get("family"), cell.get("program"), cell.get("strategy"))
        if key in seen:
            problems.append(f"duplicate cell {key!r}")
        seen.add(key)
        if cell.get("status") == "ok" and not cell.get("hash"):
            problems.append(f"{where} is ok but lacks a post-solution hash")
    totals = doc.get("totals")
    if isinstance(totals, dict):
        if totals.get("cells") != len(cells):
            problems.append("totals.cells does not match the cell count")
        rows = totals.get("strategies")
        if not isinstance(rows, list):
            problems.append("totals.strategies is not a list")
        elif isinstance(strategies, list) and [
            row.get("strategy") for row in rows if isinstance(row, dict)
        ] != list(strategies):
            problems.append("totals.strategies does not match the columns")
    return problems


def write_matrix(doc: dict, path) -> Path:
    """Write a document as stable, human-diffable JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_matrix(path) -> dict:
    """Load and validate a matrix document.

    :raises ValueError: when the file is not a schema-valid document.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_matrix(doc)
    if problems:
        raise ValueError(
            f"{path}: not a valid {MATRIX_FORMAT} document: "
            + "; ".join(problems[:5])
        )
    return doc


@dataclass
class MatrixComparison:
    """The verdict of gating a matrix document against a baseline."""

    #: Gate-failing findings, human-readable.
    regressions: List[str] = field(default_factory=list)
    #: Noteworthy non-failing findings (improvements, new cells).
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"note: {note}")
        for regression in self.regressions:
            lines.append(f"REGRESSION: {regression}")
        lines.append(
            "matrix gate: "
            + ("ok" if self.ok else f"{len(self.regressions)} regression(s)")
        )
        return "\n".join(lines)


def compare_matrices(current: dict, baseline: dict) -> MatrixComparison:
    """Gate ``current`` against a committed baseline matrix.

    Precision counts are byte-stable across machines, so the gate is
    exact -- no thresholds.  Regressions (any fails the gate):

    * the two documents measure against different baseline strategies
      (the precision counts would be apples to oranges);
    * a baseline strategy column missing from the current document;
    * a baseline cell missing from the current document;
    * a cell ok in the baseline but failing now;
    * a cell proving *fewer* points better than the widening baseline,
      or *more* points worse, than it did in the committed baseline --
      i.e. any precision loss anywhere in the matrix;
    * per-strategy aggregate ``improved_points`` dropping or
      ``regressed_points`` rising (belts and braces: catches doctored
      totals even when every cell agrees).

    Precision *gains*, hash changes, and new strategies/cells are notes:
    ``repro bench --matrix --update-baseline`` refreshes the baseline
    when a gain is intended.
    """
    cmp_ = MatrixComparison()
    if current.get("baseline") != baseline.get("baseline"):
        cmp_.regressions.append(
            f"baseline strategy differs: current {current.get('baseline')!r} "
            f"vs committed {baseline.get('baseline')!r}"
        )
        return cmp_

    missing = [
        spec
        for spec in baseline.get("strategies", [])
        if spec not in current.get("strategies", [])
    ]
    for spec in missing:
        cmp_.regressions.append(
            f"strategy {spec!r} missing from the current matrix"
        )
    for spec in current.get("strategies", []):
        if spec not in baseline.get("strategies", []):
            cmp_.notes.append(f"strategy {spec!r}: new, not in the baseline")

    def key(cell):
        return (cell["family"], cell["program"], cell["strategy"])

    base_cells = {key(c): c for c in baseline.get("cells", [])}
    cur_cells = {key(c): c for c in current.get("cells", [])}
    for cell_key, base in base_cells.items():
        where = "/".join(cell_key)
        if base["strategy"] in missing:
            continue  # already reported at strategy granularity
        cur = cur_cells.get(cell_key)
        if cur is None:
            cmp_.regressions.append(f"{where}: missing from the current matrix")
            continue
        if cur["code"] != 0 and base["code"] == 0:
            cmp_.regressions.append(
                f"{where}: was ok, now {cur['status']} "
                f"(code {cur['code']}): {cur['error'] or 'no detail'}"
            )
            continue
        if cur["code"] != 0:
            continue  # failing in both: visible in totals, not a regression
        if cur["better"] < base["better"] or cur["worse"] > base["worse"]:
            cmp_.regressions.append(
                f"{where}: precision regressed to better={cur['better']} "
                f"worse={cur['worse']} from baseline "
                f"better={base['better']} worse={base['worse']}"
            )
        elif cur["better"] > base["better"] or cur["worse"] < base["worse"]:
            cmp_.notes.append(
                f"{where}: precision improved to better={cur['better']} "
                f"worse={cur['worse']} (refresh the baseline to lock it in)"
            )
        if cur["hash"] != base["hash"]:
            cmp_.notes.append(f"{where}: post-solution hash changed")
    for cell_key in cur_cells:
        if cell_key not in base_cells:
            cmp_.notes.append(
                f"{'/'.join(cell_key)}: new cell, not in the baseline"
            )

    base_rows = {
        row["strategy"]: row
        for row in baseline.get("totals", {}).get("strategies", [])
    }
    cur_rows = {
        row["strategy"]: row
        for row in current.get("totals", {}).get("strategies", [])
    }
    for spec, base in base_rows.items():
        cur = cur_rows.get(spec)
        if cur is None:
            continue  # missing strategies already reported above
        if cur["improved_points"] < base["improved_points"]:
            cmp_.regressions.append(
                f"{spec}: improved_points fell to {cur['improved_points']} "
                f"from baseline {base['improved_points']}"
            )
        if cur["regressed_points"] > base["regressed_points"]:
            cmp_.regressions.append(
                f"{spec}: regressed_points rose to {cur['regressed_points']} "
                f"from baseline {base['regressed_points']}"
            )
    return cmp_


def render_matrix(doc: dict) -> str:
    """The human-readable summary table of a matrix document."""
    lines = [
        f"strategy matrix vs baseline {doc['baseline']} "
        f"({doc['totals']['cells']} cells, {doc['totals']['failed']} failed)"
    ]
    width = max(len(row["strategy"]) for row in doc["totals"]["strategies"])
    header = (
        f"  {'strategy'.ljust(width)}  {'ok':>4}  {'evals':>10}  "
        f"{'improved':>16}  {'worse':>6}  {'time':>8}"
    )
    lines.append(header)
    for row in doc["totals"]["strategies"]:
        improved = (
            f"{row['improved_points']}/{row['compared_points']} "
            f"({100.0 * row['improved_fraction']:.1f}%)"
        )
        lines.append(
            f"  {row['strategy'].ljust(width)}  {row['ok']:>4}  "
            f"{row['evaluations']:>10}  {improved:>16}  "
            f"{row['regressed_points']:>6}  {row['wall_time']:>7.2f}s"
        )
    for cell in doc["cells"]:
        if cell["code"] != 0:
            lines.append(
                f"  FAILED {cell['family']}/{cell['program']}/"
                f"{cell['strategy']}: {cell['status']} (code "
                f"{cell['code']}) {cell['error']}"
            )
    return "\n".join(lines)
