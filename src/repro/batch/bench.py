"""Corpus benchmarking: measure, persist, and gate on regressions.

:func:`run_bench` drives the farm over a corpus ``repeats`` times in
interleaved rounds (round 1 runs every job, then round 2 runs every job
again, ...), takes the minimum wall time per job across rounds -- the
standard noise filter for small benchmarks -- and cross-checks that every
deterministic field agreed between rounds.  The merged measurements are
packaged as a ``BENCH_<rev>.json`` document in the stable schema below,
and :func:`compare_benches` gates a document against a committed baseline
(``benchmarks/baseline.json``) with configurable thresholds: that
comparison's nonzero verdict is what CI fails PRs on.

Schema (``format: repro-bench/1``)::

    {
      "format":   "repro-bench/1",
      "revision": "<git short rev or 'local'>",
      "python":   "3.12.1",
      "quick":    true,
      "repeats":  2,
      "workers":  4,
      "jobs": [            # one entry per corpus job, corpus order
        {
          "job": "wcet/bs/warrow", "family": "wcet", "program": "bs",
          "kind": "solve",           # or "check" for checker jobs
          "status": "ok", "code": 0,
          "hash": "<sha256 of the post solution>",
          "evaluations": 275, "updates": 144, "unknowns": 33,
          "max_queue": 7, "widen_updates": 120, "narrow_updates": 24,
          "direction_switches": 9, "proved": 0, "unproved": 0,
          "findings": 0,             # diagnostics count of check jobs
          "wall_time": 0.0104,       # min over rounds, seconds
          "peak_rss_kb": 34816, "error": ""
        }, ...
      ],
      "totals": {
        "jobs": 30, "ok": 30, "failed": 0,
        "evaluations": 12345, "wall_time": 1.9
      },
      "deterministic": true   # rounds agreed on every per-job field
    }

Wall times are machine-dependent and live in the schema for trend
plots and the (coarse, total-only) time gate; everything else in a job
entry is byte-stable across worker counts and repeat counts.
"""

from __future__ import annotations

import json
import platform
import subprocess
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.batch.farm import run_jobs
from repro.batch.jobs import JobResult, JobSpec

#: Format marker of the benchmark document schema.
BENCH_FORMAT = "repro-bench/1"

#: Default regression thresholds (fractions), the CI gate's contract:
#: >15% more evaluations on any job or in total, >30% more total wall
#: time, fails the gate.
EVAL_THRESHOLD = 0.15
TIME_THRESHOLD = 0.30

#: Per-job result fields persisted in a document's ``jobs`` entries, in
#: schema order.  Keep in sync with :class:`~repro.batch.jobs.JobResult`.
_JOB_FIELDS = (
    "job",
    "family",
    "program",
    "kind",
    "status",
    "code",
    "hash",
    "evaluations",
    "updates",
    "unknowns",
    "max_queue",
    "widen_updates",
    "narrow_updates",
    "direction_switches",
    "restarts",
    "proved",
    "unproved",
    "findings",
    "wall_time",
    "peak_rss_kb",
    "error",
)

_INT_FIELDS = (
    "code",
    "evaluations",
    "updates",
    "unknowns",
    "max_queue",
    "widen_updates",
    "narrow_updates",
    "direction_switches",
    "restarts",
    "proved",
    "unproved",
    "findings",
    "peak_rss_kb",
)


def git_revision(root: Optional[Path] = None) -> str:
    """The checkout's short revision, or ``"local"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def run_bench(
    jobs: Sequence[JobSpec],
    *,
    repeats: int = 3,
    workers: Optional[int] = None,
    quick: bool = False,
    revision: Optional[str] = None,
    on_result: Optional[Callable[[JobResult], None]] = None,
) -> dict:
    """Measure ``jobs`` over ``repeats`` interleaved rounds.

    Returns a schema-valid benchmark document.  Per-job wall time is the
    minimum over rounds; deterministic fields must agree across rounds,
    and any disagreement is surfaced in the document
    (``deterministic: false`` plus a ``nondeterministic`` job list) --
    the bench gate treats that as a failure.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    rounds: List[List[JobResult]] = []
    for _ in range(repeats):
        rounds.append(run_jobs(jobs, workers=workers, on_result=on_result))

    merged: List[JobResult] = []
    unstable: List[str] = []
    for per_job in zip(*rounds):
        best = per_job[0]
        for other in per_job[1:]:
            if other.deterministic() != best.deterministic():
                unstable.append(best.job)
            if other.wall_time < best.wall_time:
                best = replace(best, wall_time=other.wall_time)
            if other.peak_rss_kb > best.peak_rss_kb:
                best = replace(best, peak_rss_kb=other.peak_rss_kb)
        merged.append(best)

    entries = [
        {name: getattr(result, name) for name in _JOB_FIELDS}
        for result in merged
    ]
    # ``findings`` is the expected outcome of the buggy check corpus, not
    # a job failure; drift in the findings themselves is gated per job by
    # :func:`compare_benches`.
    failed = sum(1 for r in merged if r.code != 0 and r.status != "findings")
    doc = {
        "format": BENCH_FORMAT,
        "revision": revision if revision is not None else git_revision(),
        "python": platform.python_version(),
        "quick": bool(quick),
        "repeats": repeats,
        "workers": workers,
        "jobs": entries,
        "totals": {
            "jobs": len(merged),
            "ok": len(merged) - failed,
            "failed": failed,
            "evaluations": sum(r.evaluations for r in merged),
            "wall_time": round(sum(r.wall_time for r in merged), 6),
        },
        "deterministic": not unstable,
    }
    if unstable:
        doc["nondeterministic"] = sorted(set(unstable))
    return doc


def validate_bench(doc: dict) -> List[str]:
    """Schema problems of a benchmark document; empty when valid."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("format") != BENCH_FORMAT:
        problems.append(
            f"format must be {BENCH_FORMAT!r}, got {doc.get('format')!r}"
        )
    for key, kind in (
        ("revision", str),
        ("python", str),
        ("quick", bool),
        ("repeats", int),
        ("jobs", list),
        ("totals", dict),
        ("deterministic", bool),
    ):
        if not isinstance(doc.get(key), kind):
            problems.append(f"missing or mistyped field {key!r}")
    jobs = doc.get("jobs")
    if not isinstance(jobs, list):
        return problems
    seen = set()
    for pos, entry in enumerate(jobs):
        where = f"jobs[{pos}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        for name in _JOB_FIELDS:
            if name not in entry:
                problems.append(f"{where} lacks field {name!r}")
        for name in _INT_FIELDS:
            if name in entry and not isinstance(entry[name], int):
                problems.append(f"{where}.{name} is not an integer")
        if "wall_time" in entry and not isinstance(
            entry["wall_time"], (int, float)
        ):
            problems.append(f"{where}.wall_time is not a number")
        job_id = entry.get("job")
        if job_id in seen:
            problems.append(f"duplicate job id {job_id!r}")
        seen.add(job_id)
        if entry.get("status") == "ok" and not entry.get("hash"):
            problems.append(f"{where} is ok but lacks a post-solution hash")
    totals = doc.get("totals")
    if isinstance(totals, dict) and isinstance(jobs, list):
        if totals.get("jobs") != len(jobs):
            problems.append("totals.jobs does not match the job count")
    return problems


def write_bench(doc: dict, path) -> Path:
    """Write a document as stable, human-diffable JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(doc, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_bench(path) -> dict:
    """Load and validate a benchmark document.

    :raises ValueError: when the file is not a schema-valid document.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_bench(doc)
    if problems:
        raise ValueError(
            f"{path}: not a valid {BENCH_FORMAT} document: "
            + "; ".join(problems[:5])
        )
    return doc


@dataclass
class BenchComparison:
    """The verdict of comparing a benchmark document against a baseline."""

    #: Gate-failing findings, human-readable.
    regressions: List[str] = field(default_factory=list)
    #: Noteworthy non-failing findings (improvements, new jobs).
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = []
        for note in self.notes:
            lines.append(f"note: {note}")
        for regression in self.regressions:
            lines.append(f"REGRESSION: {regression}")
        lines.append(
            "bench gate: "
            + ("ok" if self.ok else f"{len(self.regressions)} regression(s)")
        )
        return "\n".join(lines)


def compare_benches(
    current: dict,
    baseline: dict,
    *,
    eval_threshold: float = EVAL_THRESHOLD,
    time_threshold: float = TIME_THRESHOLD,
) -> BenchComparison:
    """Gate ``current`` against ``baseline``.

    Regressions (any of these fails the gate):

    * a baseline job missing from the current run;
    * a job ok in the baseline but failing now (or crashing either way);
    * a check job's findings count differing from the baseline -- checker
      behaviour is deterministic, so any drift (new false positives on a
      clean twin, a lost detection on a seeded bug) is a regression until
      the baseline is deliberately refreshed;
    * a job's evaluation count above ``baseline * (1 + eval_threshold)``;
    * the corpus-total evaluation count above the same factor;
    * the corpus-total wall time above ``baseline * (1 + time_threshold)``
      (totals only -- per-job times on a sub-second corpus are noise);
    * a nondeterministic current run (rounds disagreed).

    Hash changes and eval-count *improvements* are reported as notes:
    solutions legitimately change when solvers or domains change, and the
    baseline refresh workflow (``docs/batch.md``) handles that.
    """
    cmp_ = BenchComparison()
    if not current.get("deterministic", False):
        unstable = ", ".join(current.get("nondeterministic", [])) or "?"
        cmp_.regressions.append(
            f"current run is nondeterministic across rounds ({unstable})"
        )

    base_jobs: Dict[str, dict] = {e["job"]: e for e in baseline["jobs"]}
    cur_jobs: Dict[str, dict] = {e["job"]: e for e in current["jobs"]}

    for job_id, base in base_jobs.items():
        cur = cur_jobs.get(job_id)
        if cur is None:
            cmp_.regressions.append(f"{job_id}: missing from the current run")
            continue
        if cur["code"] != 0 and base["code"] == 0:
            cmp_.regressions.append(
                f"{job_id}: was ok, now {cur['status']} "
                f"(code {cur['code']}): {cur['error'] or 'no detail'}"
            )
            continue
        if cur.get("findings", 0) != base.get("findings", 0):
            cmp_.regressions.append(
                f"{job_id}: {cur.get('findings', 0)} findings vs baseline "
                f"{base.get('findings', 0)} (checker behaviour changed; "
                f"refresh the baseline if intended)"
            )
        if cur["code"] != 0 and cur.get("status") == "findings":
            continue  # expected checker outcome; findings drift gated above
        if cur["code"] != 0:
            continue  # failing in both: not a regression, visible in totals
        allowed = base["evaluations"] * (1.0 + eval_threshold)
        if cur["evaluations"] > allowed:
            cmp_.regressions.append(
                f"{job_id}: {cur['evaluations']} evaluations vs baseline "
                f"{base['evaluations']} "
                f"(+{_pct(cur['evaluations'], base['evaluations'])}, "
                f"threshold +{eval_threshold:.0%})"
            )
        elif cur["evaluations"] < base["evaluations"]:
            cmp_.notes.append(
                f"{job_id}: improved to {cur['evaluations']} evaluations "
                f"from {base['evaluations']}"
            )
        if cur["hash"] != base["hash"]:
            cmp_.notes.append(
                f"{job_id}: post-solution hash changed "
                f"(precision change? refresh the baseline if intended)"
            )

    for job_id in cur_jobs:
        if job_id not in base_jobs:
            cmp_.notes.append(f"{job_id}: new job, not in the baseline")

    base_evals = baseline["totals"]["evaluations"]
    cur_evals = current["totals"]["evaluations"]
    if base_evals and cur_evals > base_evals * (1.0 + eval_threshold):
        cmp_.regressions.append(
            f"total evaluations {cur_evals} vs baseline {base_evals} "
            f"(+{_pct(cur_evals, base_evals)}, "
            f"threshold +{eval_threshold:.0%})"
        )
    base_time = baseline["totals"]["wall_time"]
    cur_time = current["totals"]["wall_time"]
    if current.get("workers") != baseline.get("workers"):
        # Per-job wall times time-share the machine differently under a
        # different worker count, so cross-worker-count comparisons are
        # apples to oranges -- the eval gates above carry the regression
        # signal, the time gate stands down.
        cmp_.notes.append(
            f"wall-time gate skipped: worker counts differ "
            f"({current.get('workers')} vs baseline "
            f"{baseline.get('workers')})"
        )
    elif base_time and cur_time > base_time * (1.0 + time_threshold):
        cmp_.regressions.append(
            f"total wall time {cur_time:.3f}s vs baseline {base_time:.3f}s "
            f"(+{_pct(cur_time, base_time)}, "
            f"threshold +{time_threshold:.0%})"
        )
    return cmp_


def _pct(cur: float, base: float) -> str:
    return f"{(cur - base) / base:.0%}" if base else "inf"
