"""The work-stealing process farm: solve many jobs concurrently.

Analysis runs are embarrassingly independent, so the farm is a pull-based
process pool: every worker process draws the next job index from one
shared queue the moment it goes idle (work stealing by construction --
a slow job never blocks the rest of the corpus), executes it with
:func:`~repro.batch.jobs.execute_job`, and streams the structured result
back.  Three properties the bench layer builds on:

* **Determinism.**  Jobs are self-contained and executed in isolated
  processes, results are re-ordered to the submission order before being
  returned, and nothing about a result's deterministic core depends on
  which worker ran it -- ``--workers 1`` and ``--workers 8`` produce
  byte-identical deterministic fields.
* **Failure isolation.**  :func:`~repro.batch.jobs.execute_job` already
  maps in-band failures (divergence, faults, bad inputs) onto per-job
  codes; the farm additionally survives a worker process *dying* (a
  segfault, an ``os._exit``, the OOM killer): the killed worker's
  claimed job is recorded as a ``crash`` result (code 4) and a
  replacement worker is spawned, so sibling jobs are unaffected.
* **Timeouts.**  Per-job deadlines ride on the supervision layer's
  :class:`~repro.supervise.watchdog.DeadlineWatchdog` (in-band, so the
  partial work is accounted before the job reports code 3).

With ``workers=1`` the farm degrades to an inline sequential loop with
identical semantics (and no multiprocessing dependency at all).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
from typing import Callable, Dict, List, Optional, Sequence

from repro.batch.jobs import EXIT_FAULT, JobResult, JobSpec, execute_job

#: How long the collector waits on the result queue between liveness
#: checks of the worker processes, in seconds.
_POLL_SECONDS = 0.1


def _worker(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: pull job indices until the ``None`` sentinel.

    Every claim is announced as ``("start", idx, worker_id)`` before
    execution, so the parent can attribute the in-flight job when this
    process dies mid-run.
    """
    while True:
        item = task_queue.get()
        if item is None:
            break
        idx, job = item
        result_queue.put(("start", idx, worker_id, None))
        result = execute_job(job)
        result_queue.put(("done", idx, worker_id, result.to_json()))


def _crash_result(job: JobSpec, exitcode) -> JobResult:
    return JobResult(
        job=job.id,
        family=job.family,
        program=job.program,
        status="crash",
        code=EXIT_FAULT,
        error=f"worker process died (exitcode {exitcode})",
    )


def run_jobs(
    jobs: Sequence[JobSpec],
    *,
    workers: Optional[int] = None,
    on_result: Optional[Callable[[JobResult], None]] = None,
) -> List[JobResult]:
    """Execute ``jobs`` and return their results in submission order.

    :param workers: worker process count; ``None`` picks the CPU count
        (capped at 8), ``1`` or fewer runs inline without subprocesses.
    :param on_result: optional progress callback, invoked once per
        finished job *in completion order* (which is scheduling-dependent
        -- only the returned list is deterministic).
    """
    if workers is None:
        workers = min(multiprocessing.cpu_count(), 8)
    workers = max(1, min(int(workers), len(jobs) or 1))

    if workers == 1:
        results = []
        for job in jobs:
            result = execute_job(job)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results
    return _run_farm(jobs, workers, on_result)


def _run_farm(
    jobs: Sequence[JobSpec],
    workers: int,
    on_result: Optional[Callable[[JobResult], None]],
) -> List[JobResult]:
    methods = multiprocessing.get_all_start_methods()
    method = "fork" if "fork" in methods else "spawn"
    ctx = multiprocessing.get_context(method)

    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    for idx, job in enumerate(jobs):
        task_queue.put((idx, job))
    for _ in range(workers):
        task_queue.put(None)

    next_id = 0
    pool: Dict[int, multiprocessing.process.BaseProcess] = {}

    def spawn() -> None:
        nonlocal next_id
        wid = next_id
        next_id += 1
        proc = ctx.Process(
            target=_worker, args=(wid, task_queue, result_queue), daemon=True
        )
        proc.start()
        pool[wid] = proc

    for _ in range(workers):
        spawn()

    #: worker id -> job index it announced and has not finished yet.
    claims: Dict[int, int] = {}
    results: Dict[int, JobResult] = {}
    pending = len(jobs)

    def record(idx: int, result: JobResult) -> None:
        nonlocal pending
        if idx in results:  # pragma: no cover - defensive
            return
        results[idx] = result
        pending -= 1
        if on_result is not None:
            on_result(result)

    try:
        while pending:
            try:
                kind, idx, wid, payload = result_queue.get(
                    timeout=_POLL_SECONDS
                )
            except queue_mod.Empty:
                # Liveness sweep: a dead worker with an unfinished claim
                # crashed mid-job.  Record the crash, spawn a replacement
                # (its unconsumed sentinel is still queued for it).
                for wid in [
                    w for w, p in pool.items() if p.exitcode is not None
                ]:
                    proc = pool.pop(wid)
                    claimed = claims.pop(wid, None)
                    if claimed is not None and claimed not in results:
                        record(
                            claimed,
                            _crash_result(jobs[claimed], proc.exitcode),
                        )
                        if pending:
                            spawn()
                if pending and not pool:
                    # Every worker is gone.  Give in-flight messages a
                    # grace drain (queue feeder threads flush lazily),
                    # then account whatever never arrived as crashes
                    # rather than spinning forever.
                    while pending:
                        try:
                            kind, idx, wid, payload = result_queue.get(
                                timeout=1.0
                            )
                        except queue_mod.Empty:
                            break
                        if kind == "done":
                            record(idx, JobResult.from_json(payload))
                    for i in range(len(jobs)):
                        if i not in results:
                            record(i, _crash_result(jobs[i], "unknown"))
                continue
            if kind == "start":
                claims[wid] = idx
            else:
                claims.pop(wid, None)
                record(idx, JobResult.from_json(payload))
    finally:
        for proc in pool.values():
            if proc.exitcode is None:
                proc.join(timeout=2.0)
            if proc.exitcode is None:
                proc.terminate()
                proc.join(timeout=2.0)
        task_queue.close()
        result_queue.close()

    return [results[i] for i in range(len(jobs))]
