"""Batch jobs: one (program, analysis, solver) unit of corpus work.

A :class:`JobSpec` is plain, picklable data -- the farm ships it to a
worker process, and :func:`execute_job` turns it into a structured
:class:`JobResult` *without ever raising*: every failure class is caught
in-process and mapped onto the CLI's exit-code taxonomy (``repro
--help``), so one diverging or crashing job can never poison its batch.

The deterministic core of a result -- the post-solution fingerprint, the
evaluation count, and the widen/narrow counters from the engine event
bus -- depends only on the job spec, never on scheduling: two runs of the
same corpus produce byte-identical deterministic fields regardless of the
worker count.  Wall time and peak RSS are measured too, but kept apart
(:meth:`JobResult.deterministic` excludes them).
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from dataclasses import asdict, dataclass, replace
from typing import Optional, Tuple

#: Per-job outcome codes, mirroring the CLI taxonomy (``repro --help``).
EXIT_OK = 0
EXIT_UNKNOWN = 1
EXIT_INPUT = 2
EXIT_DIVERGENCE = 3
EXIT_FAULT = 4

#: Job status strings, keyed by what produced them.
STATUS_CODES = {
    "ok": EXIT_OK,
    "unknown": EXIT_UNKNOWN,
    "findings": EXIT_UNKNOWN,
    "input-error": EXIT_INPUT,
    "violated": EXIT_INPUT,
    "divergence": EXIT_DIVERGENCE,
    "fault": EXIT_FAULT,
    "crash": EXIT_FAULT,
}


def build_domain(name: str, thresholds: Tuple = ()):
    """A numeric domain by CLI name (shared with ``repro analyze``)."""
    from repro.analysis import (
        CongruenceDomain,
        IntervalCongruenceDomain,
        IntervalDomain,
        SignDomain,
    )

    if name == "interval":
        return IntervalDomain(thresholds=thresholds)
    if name == "interval-congruence":
        return IntervalCongruenceDomain(thresholds=thresholds)
    if name == "sign":
        return SignDomain()
    if name == "congruence":
        return CongruenceDomain()
    raise ValueError(f"unknown domain {name!r}")


def build_policy(name: str, domain):
    """A context policy by CLI name (shared with ``repro analyze``)."""
    from repro.analysis import FullValueContext, InsensitiveContext
    from repro.analysis.inter import sign_context

    if name == "insensitive":
        return InsensitiveContext()
    if name == "sign":
        return sign_context(domain)
    if name == "full":
        return FullValueContext()
    raise ValueError(f"unknown context policy {name!r}")


@dataclass(frozen=True)
class JobSpec:
    """One batch job: program source plus the full analysis configuration.

    Everything is plain data so instances pickle across process
    boundaries and hash/compare deterministically.
    """

    #: Stable identifier, unique within a corpus (e.g. ``wcet/bs/warrow``).
    id: str
    #: Workload family the job belongs to (``examples``, ``wcet``, ...).
    family: str
    #: Program name within the family.
    program: str
    #: mini-C source text.
    source: str
    #: Numeric value domain (CLI name).
    domain: str = "interval"
    #: Context policy (CLI name).
    context: str = "insensitive"
    #: Registry name of the side-effecting local solver.
    solver: str = "slr+"
    #: Update-strategy spec string (:mod:`repro.strategies`), e.g.
    #: ``"warrow"``, ``"widen:delay=2"``, ``"warrow-k:k=3"``,
    #: ``"twophase"``.  The raw client string is preserved verbatim in
    #: results and cache keys.
    op: str = "warrow"
    #: Widening delay of the update operator; seeds the strategy's
    #: ``delay`` parameter when the spec does not set one itself.
    widen_delay: int = 1
    #: Collect widening thresholds from the program's constants.
    thresholds: bool = False
    #: Evaluation budget (the divergence guard).
    max_evals: int = 5_000_000
    #: Per-job wall-clock deadline in seconds, enforced in-band by the
    #: supervision layer's :class:`DeadlineWatchdog` (``None``: no limit).
    deadline: Optional[float] = None
    #: Also check ``assert()`` statements and fold the verdict into the
    #: job code (``1`` unknown, ``2`` violated).
    verify: bool = False
    #: What to do with the solution: ``"solve"`` fingerprints it,
    #: ``"check"`` additionally runs the :mod:`repro.checkers` rules and
    #: reports diagnostics (status ``findings``/code 1 when any fire).
    #: Check jobs require a solve-ready combine strategy and ignore
    #: ``verify`` (the assertion rules subsume it).
    kind: str = "solve"
    #: Checker rule selection for ``kind="check"`` (empty: all rules).
    #: Stored canonically (registry order, deduplicated) so equal
    #: selections produce equal cache keys.
    rules: Tuple[str, ...] = ()
    #: Deterministic chaos injection (testing the farm itself): per-eval
    #: fault rate, kinds, optional exact fail index, fault cap, seed.
    chaos_rate: float = 0.0
    chaos_kinds: Tuple[str, ...] = ("raise",)
    chaos_fail_at: Optional[int] = None
    chaos_max_faults: int = 1
    chaos_seed: int = 0

    def with_deadline(self, deadline: Optional[float]) -> "JobSpec":
        """A copy with ``deadline`` (used for farm-wide defaults)."""
        return replace(self, deadline=deadline)


#: JobSpec fields that determine the *result content* of a job.  The
#: service cache keys on exactly these: labels (``id``/``family``/
#: ``program``) name a job but do not change its answer, the ``deadline``
#: only schedules it, and chaos options disqualify a job from caching
#: altogether (see :func:`spec_fingerprint`).
CACHE_KEY_FIELDS = (
    "source",
    "domain",
    "context",
    "solver",
    "op",
    "widen_delay",
    "thresholds",
    "max_evals",
    "verify",
    "kind",
    "rules",
)


def _config_blob(job: JobSpec, fields: Tuple[str, ...]) -> bytes:
    payload = {name: getattr(job, name) for name in fields}
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def spec_fingerprint(job: JobSpec) -> str:
    """SHA-256 content address of a job's *semantic* configuration.

    Covers the program text **and** every option that can change the
    result (:data:`CACHE_KEY_FIELDS`) -- two jobs differing only in
    solver, domain, context, operator, delay, thresholds, budget or
    verification mode hash differently, so a result cache keyed on this
    digest can never serve one configuration's answer for another.

    :raises ValueError: for chaos-injecting jobs, whose outcomes are
        deliberately non-reproducible analysis results; they must never
        be content-addressed.
    """
    if job.chaos_rate or job.chaos_fail_at:
        raise ValueError("chaos-injecting jobs cannot be content-addressed")
    return hashlib.sha256(_config_blob(job, CACHE_KEY_FIELDS)).hexdigest()


def options_fingerprint(job: JobSpec) -> str:
    """SHA-256 over the configuration *without* the program text.

    Two jobs share this digest exactly when they run the same analysis
    configuration on (possibly) different programs -- the candidate
    criterion for warm-starting one from the other's solver snapshot.
    """
    fields = tuple(f for f in CACHE_KEY_FIELDS if f != "source")
    return hashlib.sha256(_config_blob(job, fields)).hexdigest()


#: JobResult fields that vary run-to-run (excluded from determinism
#: comparisons and from the byte-stability guarantee).
NONDETERMINISTIC_FIELDS = ("wall_time", "peak_rss_kb")


@dataclass(frozen=True)
class JobResult:
    """The structured outcome of one executed job."""

    #: The job's stable identifier.
    job: str
    family: str
    program: str
    #: Outcome class; see :data:`STATUS_CODES`.
    status: str
    #: Exit code under the CLI taxonomy (0/1/2/3/4).
    code: int
    #: Echo of the analysis configuration that produced this result.
    #: Results are routinely stored detached from their spec (bench
    #: documents, the service's content-addressed cache), and a result
    #: that does not say *which* solver/domain/context/operator produced
    #: it invites exactly the collision the cache key exists to prevent.
    solver: str = ""
    domain: str = ""
    context: str = ""
    op: str = ""
    #: SHA-256 fingerprint of the post solution (empty on failure).
    hash: str = ""
    #: Right-hand-side evaluations performed.
    evaluations: int = 0
    #: Committed value changes.
    updates: int = 0
    #: Distinct unknowns encountered.
    unknowns: int = 0
    #: Worklist high-water mark.
    max_queue: int = 0
    #: Widening-direction commits (engine event bus).
    widen_updates: int = 0
    #: Narrowing-direction commits (engine event bus).
    narrow_updates: int = 0
    #: Per-unknown direction reversals, summed.
    direction_switches: int = 0
    #: Region restarts performed (restarting solvers only; else 0).
    restarts: int = 0
    #: Assertion verdict counts, only for ``verify`` jobs.
    proved: int = 0
    unproved: int = 0
    #: Job kind echo (``solve`` or ``check``).
    kind: str = "solve"
    #: Number of checker diagnostics, only for ``check`` jobs.
    findings: int = 0
    #: The diagnostics themselves, as plain JSON dicts (picklable across
    #: the farm's process boundary, serialisable in the service cache).
    #: Deterministic and canonically sorted; see :mod:`repro.checkers`.
    diagnostics: Tuple[dict, ...] = ()
    #: Wall-clock seconds for this execution (nondeterministic).
    wall_time: float = 0.0
    #: Process RSS high-water mark in KiB at job end (nondeterministic;
    #: monotone per worker process, so an upper bound for the job).
    peak_rss_kb: int = 0
    #: Failure detail (exception repr) for non-ok statuses.
    error: str = ""

    def deterministic(self) -> dict:
        """The scheduling-independent fields, as a plain dict."""
        data = asdict(self)
        for key in NONDETERMINISTIC_FIELDS:
            data.pop(key)
        return data

    def to_json(self) -> dict:
        """The full result as a JSON-able dict (stable key order)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "JobResult":
        data = dict(data)
        if "diagnostics" in data:
            data["diagnostics"] = tuple(data["diagnostics"])
        return cls(**data)


def solution_fingerprint(sigma: dict, lattice) -> str:
    """SHA-256 over a canonical JSON encoding of a post solution.

    Unknowns and lattice values are encoded with the incremental layer's
    deterministic codecs and sorted by encoded unknown, so the digest is
    independent of dict iteration order, process, and worker count.
    """
    from repro.incremental import UnknownCodec, value_codec

    uc = UnknownCodec()
    vc = value_codec(lattice)
    pairs = sorted(
        ([uc.encode(x), vc.encode(v)] for x, v in sigma.items()),
        key=lambda pair: json.dumps(pair[0], sort_keys=True),
    )
    blob = json.dumps(pairs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _peak_rss_kb() -> int:
    """The process's RSS high-water mark in KiB (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to KiB.
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        rss //= 1024
    return int(rss)


def _chaos_policy(job: JobSpec):
    from repro.supervise import ChaosPolicy, FaultSpec

    if not (job.chaos_rate or job.chaos_fail_at):
        return None
    faults = []
    if job.chaos_fail_at:
        faults.append(FaultSpec("raise", at=job.chaos_fail_at))
    return ChaosPolicy(
        seed=job.chaos_seed,
        faults=faults,
        rate=job.chaos_rate,
        kinds=job.chaos_kinds,
        max_faults=job.chaos_max_faults,
    )


def _failure(job: JobSpec, status: str, err, started: float) -> JobResult:
    stats = getattr(err, "stats", None)
    return JobResult(
        job=job.id,
        family=job.family,
        program=job.program,
        status=status,
        code=STATUS_CODES[status],
        solver=job.solver,
        domain=job.domain,
        context=job.context,
        op=job.op,
        kind=job.kind,
        evaluations=stats.evaluations if stats is not None else 0,
        updates=stats.updates if stats is not None else 0,
        wall_time=time.perf_counter() - started,
        peak_rss_kb=_peak_rss_kb(),
        error=repr(err),
    )


def execute_job(job: JobSpec) -> JobResult:
    """Run one job in-process and classify the outcome; never raises.

    Input problems (parse/semantic errors, unknown domains/solvers) map
    to code ``2``, divergence (budget or the reused supervision deadline
    watchdog) to ``3``, faults out of right-hand sides -- injected or
    genuine -- to ``4``; ``verify`` jobs additionally fold the assertion
    verdicts in (``1`` unknown, ``2`` violated), exactly like the
    ``repro verify`` subcommand.
    """
    from repro.analysis import check_assertions, collect_thresholds, summarize
    from repro.analysis.inter import (
        InterAnalysis,
        analyze_program_twophase,
        collect_analysis,
    )
    from repro.analysis.verify import Verdict
    from repro.checkers import UnknownRuleError
    from repro.lang import LexError, ParseError, SemanticError, compile_program
    from repro.solvers.registry import (
        SolverCapabilityError,
        UnknownSolverError,
        get_solver,
    )
    from repro.solvers.stats import DivergenceError
    from repro.strategies import (
        BuildContext,
        UnknownStrategyError,
        build_combine,
        get_strategy,
        parse_spec,
        resolve_spec,
    )
    from repro.supervise import ChaosSystem
    from repro.supervise.watchdog import DeadlineWatchdog

    started = time.perf_counter()
    try:
        if job.kind not in ("solve", "check"):
            raise ValueError(f"unknown job kind {job.kind!r}")
        check_rules = None
        if job.kind == "check":
            from repro.checkers import resolve_rules

            check_rules = resolve_rules(job.rules or None)
        cfg = compile_program(job.source)
        strategy = get_strategy(parse_spec(job.op).name)
        phased = strategy.kind == "phased"
        if phased and job.kind == "check":
            raise ValueError(
                "check jobs require a solve-ready combine strategy; "
                f"{job.op!r} is phased"
            )
        resolved = resolve_spec(job.op, widen_delay=job.widen_delay)
        need_thresholds = job.thresholds or strategy.needs_thresholds
        thresholds = collect_thresholds(cfg) if need_thresholds else ()
        domain = build_domain(job.domain, thresholds)
        policy = build_policy(job.context, domain)
        analysis = InterAnalysis(cfg, domain, policy)
        op = None
        if phased:
            spec = get_solver(job.solver, side_effecting=True, scope="local")
            if job.chaos_rate or job.chaos_fail_at:
                raise ValueError(
                    "chaos injection is not supported for phased strategies"
                )
        else:
            spec = get_solver(
                job.solver, side_effecting=True, scope="local", takes_op=True
            )
            op = build_combine(
                resolved,
                analysis.lattice,
                ctx=BuildContext(cfg=cfg, thresholds=tuple(thresholds)),
            )
    except (
        LexError,
        ParseError,
        SemanticError,
        UnknownSolverError,
        UnknownStrategyError,
        UnknownRuleError,
        SolverCapabilityError,
        ValueError,
    ) as err:
        return _failure(job, "input-error", err, started)

    try:
        system = analysis.system()
        chaos = _chaos_policy(job)
        if chaos is not None:
            system = ChaosSystem(system, chaos)
        observers = []
        if job.deadline is not None:
            observers.append(DeadlineWatchdog(job.deadline))
    except ValueError as err:  # bad deadline or chaos spec
        return _failure(job, "input-error", err, started)

    analysis_result = None
    try:
        if phased:
            analysis_result = analyze_program_twophase(
                cfg,
                domain,
                policy,
                max_evals=job.max_evals,
                track_contributions=(resolved.name == "decoupled"),
                widen_delay=resolved.get("delay", job.widen_delay),
                solver=job.solver,
                observers=observers,
            )
            result = analysis_result.solver_result
        else:
            result = spec(
                system,
                op,
                analysis.root(),
                max_evals=job.max_evals,
                observers=observers,
            )
    except DivergenceError as err:
        return _failure(job, "divergence", err, started)
    except Exception as err:
        return _failure(job, "fault", err, started)

    status, code = "ok", EXIT_OK
    proved = unproved = 0
    findings = 0
    diagnostics: Tuple[dict, ...] = ()
    if job.kind == "check":
        from repro.checkers import apply_rules

        analysis_result = collect_analysis(analysis, result)
        diags = apply_rules(cfg, analysis_result, check_rules)
        findings = len(diags)
        diagnostics = tuple(d.to_json() for d in diags)
        if findings:
            status, code = "findings", EXIT_UNKNOWN
    elif job.verify:
        if analysis_result is None:
            analysis_result = collect_analysis(analysis, result)
        reports = check_assertions(cfg, analysis_result)
        counts = summarize(reports)
        proved = counts[Verdict.PROVED]
        unproved = counts[Verdict.UNKNOWN] + counts[Verdict.VIOLATED]
        if counts[Verdict.VIOLATED]:
            status, code = "violated", EXIT_INPUT
        elif counts[Verdict.UNKNOWN]:
            status, code = "unknown", EXIT_UNKNOWN

    stats = result.stats
    return JobResult(
        job=job.id,
        family=job.family,
        program=job.program,
        status=status,
        code=code,
        solver=job.solver,
        domain=job.domain,
        context=job.context,
        op=job.op,
        hash=solution_fingerprint(result.sigma, analysis.lattice),
        evaluations=stats.evaluations,
        updates=stats.updates,
        unknowns=stats.unknowns,
        max_queue=stats.max_queue,
        widen_updates=stats.widen_updates,
        narrow_updates=stats.narrow_updates,
        direction_switches=stats.direction_switches,
        restarts=stats.restarts,
        proved=proved,
        unproved=unproved,
        kind=job.kind,
        findings=findings,
        diagnostics=diagnostics,
        wall_time=time.perf_counter() - started,
        peak_rss_kb=_peak_rss_kb(),
    )
