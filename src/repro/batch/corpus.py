"""The benchmark corpus: every program the repo can throw at a solver.

Five deterministic workload families, mirroring the paper's evaluation
(Section 8) plus the repo's own worked examples:

* ``examples`` -- the mini-C programs embedded in ``examples/*.py``
  (extracted textually, so the corpus never executes example scripts);
* ``buggy``    -- the seeded-bug corpus under ``examples/buggy/*.c``,
  run as checker jobs (``kind="check"``): every program through all the
  :mod:`repro.checkers` rules, exercising the diagnostics path at batch
  scale;
* ``wcet``     -- the Malardalen WCET renditions behind Figure 7, solved
  with the paper's combined operator ⌴;
* ``fig7``     -- the same suite under plain widening: together with
  ``wcet`` this is exactly the precision comparison of Figure 7, and the
  eval-count gap between the two families is tracked by the bench gate;
* ``restart``  -- the WCET suite again, solved by the restarting and
  localized solvers (``slr2``, ``slr3``) of the successor paper: the
  committed baseline pins their evaluation counts and restart counts
  against the plain ``slr+`` rows of ``wcet``;
* ``table1``   -- the synthetic SpecCPU-style programs of Table 1 in the
  paper's four configurations ({context-insensitive, context-sensitive}
  x {widening-only, combined}).

Enumeration order is fixed (family order above, programs sorted within a
family) and job ids are stable, so a corpus enumerated twice -- or on
machines with different worker counts -- compares entry for entry.

``quick=True`` selects the committed-baseline subset the CI bench gate
runs: the smallest programs of each family, chosen to keep a full
``repro bench --quick`` round under a few seconds.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.batch.jobs import JobSpec

#: Family enumeration order (also the display order).
FAMILIES = ("examples", "buggy", "wcet", "fig7", "restart", "table1")

#: WCET benchmarks in the quick subset (the smallest by LoC).
_QUICK_WCET = 12
#: WCET benchmarks under the widening-only baseline in the quick subset.
_QUICK_FIG7 = 6
#: Table-1 programs in the quick subset (the smallest rows).
_QUICK_TABLE1 = 2
#: WCET benchmarks per restarting solver in the quick subset.
_QUICK_RESTART = 3

#: The restarting/localized solver family of the successor paper.
RESTART_SOLVERS = ("slr2", "slr3")

#: Evaluation budget for corpus jobs; generous, the jobs are small.
_MAX_EVALS = 5_000_000

_SOURCE_RE = re.compile(r'^SOURCE = """\n(.*?)"""', re.S | re.M)


def repo_root() -> Optional[Path]:
    """The repository checkout containing this package, if any.

    Resolved relative to the installed package (``src/repro`` ->
    repository root), so ``repro bench`` finds the example programs no
    matter the working directory.  ``None`` for site-package installs
    without the ``examples/`` tree.
    """
    root = Path(__file__).resolve().parents[3]
    return root if (root / "examples").is_dir() else None


def example_sources() -> Dict[str, str]:
    """mini-C sources embedded in the repo's ``examples/*.py`` scripts.

    Extracted with a regex over the file text -- enumeration must not
    execute example code.  Empty when the ``examples/`` tree is absent
    (a bare package install).
    """
    root = repo_root()
    if root is None:
        return {}
    sources: Dict[str, str] = {}
    for path in sorted((root / "examples").glob("*.py")):
        match = _SOURCE_RE.search(path.read_text(encoding="utf-8"))
        if match is not None:
            sources[path.stem] = match.group(1)
    return sources


def _examples_jobs(quick: bool) -> List[JobSpec]:
    return [
        JobSpec(
            id=f"examples/{name}/warrow",
            family="examples",
            program=name,
            source=source,
            max_evals=_MAX_EVALS,
        )
        for name, source in sorted(example_sources().items())
    ]


def buggy_sources() -> Dict[str, str]:
    """The seeded-bug corpus: ``examples/buggy/*.c`` (buggy programs and
    their clean twins).  Empty for bare package installs."""
    root = repo_root()
    if root is None:
        return {}
    return {
        path.stem: path.read_text(encoding="utf-8")
        for path in sorted((root / "examples" / "buggy").glob("*.c"))
    }


def _buggy_jobs(quick: bool) -> List[JobSpec]:
    # The buggy corpus is part of the quick subset in full: the programs
    # are tiny, and the CI checkers job wants every golden covered.
    return [
        JobSpec(
            id=f"buggy/{name}/check",
            family="buggy",
            program=name,
            source=source,
            op="warrow:delay=1",
            kind="check",
            max_evals=_MAX_EVALS,
        )
        for name, source in sorted(buggy_sources().items())
    ]


def _wcet_programs():
    from repro.bench.wcet import by_size

    return by_size()


def _wcet_jobs(quick: bool) -> List[JobSpec]:
    programs = _wcet_programs()
    if quick:
        programs = programs[:_QUICK_WCET]
    return [
        JobSpec(
            id=f"wcet/{p.name}/warrow",
            family="wcet",
            program=p.name,
            source=p.source,
            max_evals=_MAX_EVALS,
        )
        for p in programs
    ]


def _fig7_jobs(quick: bool) -> List[JobSpec]:
    programs = _wcet_programs()
    if quick:
        programs = programs[:_QUICK_FIG7]
    return [
        JobSpec(
            id=f"fig7/{p.name}/widen",
            family="fig7",
            program=p.name,
            source=p.source,
            op="widen",
            max_evals=_MAX_EVALS,
        )
        for p in programs
    ]


def _restart_jobs(quick: bool) -> List[JobSpec]:
    programs = _wcet_programs()
    if quick:
        programs = programs[:_QUICK_RESTART]
    return [
        JobSpec(
            id=f"restart/{p.name}/{solver}",
            family="restart",
            program=p.name,
            source=p.source,
            solver=solver,
            max_evals=_MAX_EVALS,
        )
        for p in programs
        for solver in RESTART_SOLVERS
    ]


def _table1_jobs(quick: bool) -> List[JobSpec]:
    from repro.bench.spec import PROGRAMS

    programs = list(PROGRAMS)
    if quick:
        programs = programs[:_QUICK_TABLE1]
    jobs = []
    for prog in programs:
        source = prog.source
        for context in ("insensitive", "sign"):
            for op in ("widen", "warrow"):
                jobs.append(
                    JobSpec(
                        id=f"table1/{prog.name}/{context}/{op}",
                        family="table1",
                        program=prog.name,
                        source=source,
                        context=context,
                        op=op,
                        max_evals=10_000_000,
                    )
                )
    return jobs


_BUILDERS = {
    "examples": _examples_jobs,
    "buggy": _buggy_jobs,
    "wcet": _wcet_jobs,
    "fig7": _fig7_jobs,
    "restart": _restart_jobs,
    "table1": _table1_jobs,
}

#: Program families the strategy matrix enumerates.  ``fig7`` is absent
#: by design: it is the wcet suite under a fixed baseline operator, and
#: the matrix varies the operator itself.  ``buggy`` programs join as
#: plain solve rows: they are small, loop-heavy, and written so that the
#: operators genuinely disagree -- prime precision-matrix material.
MATRIX_FAMILIES = ("examples", "buggy", "wcet", "table1")

#: WCET benchmarks in the quick matrix subset (smallest by LoC).
_QUICK_MATRIX_WCET = 6
#: Example programs in the quick matrix subset (alphabetically first).
_QUICK_MATRIX_EXAMPLES = 4
#: Buggy-corpus programs in the quick matrix subset (alphabetically
#: first; the full family rides in the bench quick subset instead).
_QUICK_MATRIX_BUGGY = 4


def matrix_programs(
    families: Optional[Iterable[str]] = None, *, quick: bool = False
) -> List[tuple]:
    """Deterministic ``(family, name, source)`` rows for the matrix.

    Every program is solved once per strategy by
    :func:`repro.batch.matrix.run_matrix`; enumeration order is fixed
    (family order of :data:`MATRIX_FAMILIES`, programs sorted within a
    family) so two matrices compare cell for cell.

    :param families: restrict to these families; ``None``: all of
        :data:`MATRIX_FAMILIES`.
    :param quick: the CI smoke subset (smallest programs per family).
    :raises ValueError: for unknown family names.
    """
    if families is None:
        wanted = MATRIX_FAMILIES
    else:
        wanted = list(families)
        unknown = sorted(set(wanted) - set(MATRIX_FAMILIES))
        if unknown:
            raise ValueError(
                f"unknown matrix families {unknown}; "
                f"known: {list(MATRIX_FAMILIES)}"
            )
    programs: List[tuple] = []
    if "examples" in wanted:
        rows = sorted(example_sources().items())
        if quick:
            rows = rows[:_QUICK_MATRIX_EXAMPLES]
        programs.extend(("examples", name, source) for name, source in rows)
    if "buggy" in wanted:
        rows = sorted(buggy_sources().items())
        if quick:
            rows = rows[:_QUICK_MATRIX_BUGGY]
        programs.extend(("buggy", name, source) for name, source in rows)
    if "wcet" in wanted:
        rows = _wcet_programs()
        if quick:
            rows = rows[:_QUICK_MATRIX_WCET]
        programs.extend(("wcet", p.name, p.source) for p in rows)
    if "table1" in wanted:
        from repro.bench.spec import PROGRAMS

        rows = list(PROGRAMS)
        if quick:
            rows = rows[:_QUICK_TABLE1]
        programs.extend(("table1", p.name, p.source) for p in rows)
    return programs


def family_names() -> List[str]:
    """All family names, in enumeration order."""
    return list(FAMILIES)


def corpus_jobs(
    families: Optional[Iterable[str]] = None,
    *,
    quick: bool = False,
    deadline: Optional[float] = None,
) -> List[JobSpec]:
    """Enumerate the corpus, deterministically.

    :param families: restrict to these families (any order; enumeration
        order stays fixed).  ``None``: all of them.
    :param quick: the CI gate subset (smallest programs per family).
    :param deadline: per-job wall-clock deadline to stamp on every job.
    :raises ValueError: for unknown family names.
    """
    wanted: Sequence[str]
    if families is None:
        wanted = FAMILIES
    else:
        wanted = list(families)
        unknown = sorted(set(wanted) - set(FAMILIES))
        if unknown:
            raise ValueError(
                f"unknown families {unknown}; known: {list(FAMILIES)}"
            )
    jobs: List[JobSpec] = []
    for family in FAMILIES:
        if family not in wanted:
            continue
        jobs.extend(_BUILDERS[family](quick))
    if deadline is not None:
        jobs = [job.with_deadline(deadline) for job in jobs]
    return jobs
