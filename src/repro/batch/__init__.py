"""Parallel batch solving and corpus benchmarking.

The paper's experimental claims are corpus-scale claims -- precision at
~39% of program points, bounded ⌴-solver cost, both measured across whole
benchmark suites -- so this package solves *corpora*, not programs:

* :mod:`repro.batch.jobs`   -- picklable job specs, isolated execution,
  the per-job exit-code taxonomy, post-solution fingerprints;
* :mod:`repro.batch.farm`   -- the work-stealing process pool with crash
  isolation and watchdog-based per-job deadlines;
* :mod:`repro.batch.corpus` -- deterministic enumeration of the
  examples/WCET/fig7/table1 workload families;
* :mod:`repro.batch.bench`  -- min-of-N interleaved measurement, the
  ``BENCH_<rev>.json`` schema, and baseline regression gating (the
  ``repro bench`` subcommand and the CI bench gate).

See ``docs/batch.md`` for the architecture tour.
"""

from repro.batch.bench import (
    BENCH_FORMAT,
    EVAL_THRESHOLD,
    TIME_THRESHOLD,
    BenchComparison,
    compare_benches,
    git_revision,
    load_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.batch.corpus import corpus_jobs, example_sources, family_names
from repro.batch.farm import run_jobs
from repro.batch.jobs import (
    EXIT_DIVERGENCE,
    EXIT_FAULT,
    EXIT_INPUT,
    EXIT_OK,
    EXIT_UNKNOWN,
    JobResult,
    JobSpec,
    execute_job,
    options_fingerprint,
    solution_fingerprint,
    spec_fingerprint,
)

__all__ = [
    "BENCH_FORMAT",
    "EVAL_THRESHOLD",
    "TIME_THRESHOLD",
    "BenchComparison",
    "EXIT_DIVERGENCE",
    "EXIT_FAULT",
    "EXIT_INPUT",
    "EXIT_OK",
    "EXIT_UNKNOWN",
    "JobResult",
    "JobSpec",
    "compare_benches",
    "corpus_jobs",
    "example_sources",
    "execute_job",
    "family_names",
    "git_revision",
    "load_bench",
    "options_fingerprint",
    "run_bench",
    "run_jobs",
    "solution_fingerprint",
    "spec_fingerprint",
    "validate_bench",
    "write_bench",
]
