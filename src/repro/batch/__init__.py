"""Parallel batch solving and corpus benchmarking.

The paper's experimental claims are corpus-scale claims -- precision at
~39% of program points, bounded ⌴-solver cost, both measured across whole
benchmark suites -- so this package solves *corpora*, not programs:

* :mod:`repro.batch.jobs`   -- picklable job specs, isolated execution,
  the per-job exit-code taxonomy, post-solution fingerprints;
* :mod:`repro.batch.farm`   -- the work-stealing process pool with crash
  isolation and watchdog-based per-job deadlines;
* :mod:`repro.batch.corpus` -- deterministic enumeration of the
  examples/WCET/fig7/table1 workload families;
* :mod:`repro.batch.bench`  -- min-of-N interleaved measurement, the
  ``BENCH_<rev>.json`` schema, and baseline regression gating (the
  ``repro bench`` subcommand and the CI bench gate);
* :mod:`repro.batch.matrix` -- the precision x cost strategy matrix
  (``repro bench --matrix``): every corpus program under every
  registered combine strategy, compared point-by-point against a
  baseline strategy (Figure 7 at corpus scale).

See ``docs/batch.md`` for the architecture tour.
"""

from repro.batch.bench import (
    BENCH_FORMAT,
    EVAL_THRESHOLD,
    TIME_THRESHOLD,
    BenchComparison,
    compare_benches,
    git_revision,
    load_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.batch.corpus import (
    MATRIX_FAMILIES,
    buggy_sources,
    corpus_jobs,
    example_sources,
    family_names,
    matrix_programs,
)
from repro.batch.farm import run_jobs
from repro.batch.jobs import (
    EXIT_DIVERGENCE,
    EXIT_FAULT,
    EXIT_INPUT,
    EXIT_OK,
    EXIT_UNKNOWN,
    JobResult,
    JobSpec,
    execute_job,
    options_fingerprint,
    solution_fingerprint,
    spec_fingerprint,
)
from repro.batch.matrix import (
    DEFAULT_MATRIX_STRATEGIES,
    MATRIX_FORMAT,
    MatrixComparison,
    compare_matrices,
    load_matrix,
    render_matrix,
    run_matrix,
    validate_matrix,
    write_matrix,
)

__all__ = [
    "BENCH_FORMAT",
    "DEFAULT_MATRIX_STRATEGIES",
    "MATRIX_FAMILIES",
    "MATRIX_FORMAT",
    "EVAL_THRESHOLD",
    "TIME_THRESHOLD",
    "BenchComparison",
    "MatrixComparison",
    "EXIT_DIVERGENCE",
    "EXIT_FAULT",
    "EXIT_INPUT",
    "EXIT_OK",
    "EXIT_UNKNOWN",
    "JobResult",
    "JobSpec",
    "buggy_sources",
    "compare_benches",
    "compare_matrices",
    "corpus_jobs",
    "example_sources",
    "execute_job",
    "family_names",
    "git_revision",
    "load_bench",
    "load_matrix",
    "matrix_programs",
    "options_fingerprint",
    "render_matrix",
    "run_bench",
    "run_jobs",
    "run_matrix",
    "solution_fingerprint",
    "spec_fingerprint",
    "validate_bench",
    "validate_matrix",
    "write_bench",
    "write_matrix",
]
