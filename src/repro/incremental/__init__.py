"""Incremental re-solving: snapshots, program diffs, warm starts.

The subsystem turns the one-shot solvers of the reproduction into a
warm-startable analysis pipeline::

    from repro.incremental import analyze_and_snapshot, reanalyze_program

    result, state = analyze_and_snapshot(old_cfg, IntervalDomain())
    report = reanalyze_program(old_cfg, new_cfg, state, IntervalDomain(),
                               compare_scratch=True)
    assert report.sound

See :doc:`docs/incremental.md` for the state model, the diff algorithm,
and the destabilization closure.
"""

from repro.incremental.analysis import (
    IncrementalReport,
    PostViolation,
    analyze_and_snapshot,
    check_post_solution,
    check_post_solution_pure,
    diff_finite_systems,
    reanalyze_program,
    transfer_state,
)
from repro.incremental.codecs import (
    CodecError,
    UnknownCodec,
    ValueCodec,
    register_value_codec,
    value_codec,
)
from repro.incremental.state import (
    SolverState,
    StateFormatError,
    capture,
    capture_engine,
    resume_dirty,
)
from repro.incremental.warmstart import (
    influence_closure,
    warm_solve,
    warm_solve_slr,
    warm_solve_slr2,
    warm_solve_slr3,
    warm_solve_slr_restart,
    warm_solve_slr_side,
    warm_solve_sw,
)

__all__ = [
    "CodecError",
    "IncrementalReport",
    "PostViolation",
    "SolverState",
    "StateFormatError",
    "UnknownCodec",
    "ValueCodec",
    "analyze_and_snapshot",
    "capture",
    "capture_engine",
    "resume_dirty",
    "check_post_solution",
    "check_post_solution_pure",
    "diff_finite_systems",
    "influence_closure",
    "reanalyze_program",
    "register_value_codec",
    "transfer_state",
    "value_codec",
    "warm_solve",
    "warm_solve_slr",
    "warm_solve_slr2",
    "warm_solve_slr3",
    "warm_solve_slr_restart",
    "warm_solve_slr_side",
    "warm_solve_sw",
]


def _register_warm_starts() -> None:
    from repro.solvers.registry import register_warm_start

    register_warm_start("sw", warm_solve_sw)
    register_warm_start("slr", warm_solve_slr)
    register_warm_start("slr+", warm_solve_slr_side)
    register_warm_start("slr2", warm_solve_slr2)
    register_warm_start("slr3", warm_solve_slr3)


_register_warm_starts()
