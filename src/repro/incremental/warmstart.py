"""Warm-started solving: resume SW/SLR/SLR+ from a restored state.

The idea follows directly from the structure of the paper's local solvers
(Fig. 6, Section 6): at termination every encountered unknown is *stable*
and the recorded influence sets describe exactly who reads whom.  After an
edit, therefore, it suffices to

1. restore ``sigma``/``infl``/``keys``/``stable`` into a fresh
   :class:`~repro.solvers.engine.SolverEngine`,
2. *destabilize* the unknowns whose right-hand side changed (the *dirty*
   set) plus their transitive influence closure
   (:func:`influence_closure`), and
3. resume priority-queue iteration until quiescence.

Because the engine resets the update operator at construction, every
destabilized unknown re-enters ⌴-iteration with **fresh widening state**
-- exactly the condition under which the combined operator's termination
arguments (Theorems 2-4) apply to the re-solve, even though the edit may
have moved values non-monotonically in either direction.

Soundness of the resumed solution rests on the paper's partial
post-solution invariant: an unknown that stays stable throughout the warm
run satisfies ``sigma[x] ⊒ f_x(sigma)`` *before* the run (it did at the
previous quiescence) and keeps satisfying it, since neither its
right-hand side (it is not dirty) nor the values it reads (all its
dependencies that change get destabilized through the influence edges,
and a change of a non-destabilized unknown destabilizes its readers via
the engine as usual) moved under it.

Dirty-set contract: the caller must include **every** unknown whose
right-hand-side function differs between the two system versions; new
unknowns need no entry (local solvers discover them through ``eval``, SW
treats unknowns without restored values as dirty).  For SLR+, the stored
contributions whose *origin* is dirty are cleared, so a re-run origin
re-establishes (or drops) them from scratch; targets are destabilized by
the solver when the re-contribution differs, which mirrors the solver's
own no-retraction treatment of side effects within a single run.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence, Set, Tuple

from repro.incremental.state import SolverState
from repro.solvers._deepcall import call_with_deep_stack
from repro.solvers.combine import Combine
from repro.solvers.engine import SolverEngine
from repro.solvers.slr import LocalResult
from repro.solvers.slr_side import SideEffectError, SideResult
from repro.solvers.stats import SolverResult


def influence_closure(
    dirty: Iterable[Hashable],
    infl: Dict[Hashable, Set[Hashable]],
    contribs: Iterable[Tuple[Hashable, Hashable]] = (),
) -> Set[Hashable]:
    """Transitive closure of ``dirty`` under recorded influence edges.

    Edges are ``x -> infl[x]`` (the readers of ``x``) plus, when SLR+
    contribution pairs are supplied, ``x -> z`` for every stored
    contribution ``(x, z)`` -- a side effect is an influence the ``infl``
    sets do not record.
    """
    extra: Dict[Hashable, Set[Hashable]] = {}
    for x, z in contribs:
        extra.setdefault(x, set()).add(z)
    seen: Set[Hashable] = set()
    work = list(dirty)
    while work:
        x = work.pop()
        if x in seen:
            continue
        seen.add(x)
        work.extend(y for y in infl.get(x, ()) if y not in seen)
        work.extend(y for y in extra.get(x, ()) if y not in seen)
    return seen


def _restore_engine(eng: SolverEngine, state: SolverState) -> None:
    """Load a snapshot into a freshly constructed engine."""
    eng.sigma.update(state.sigma)
    eng.dom.update(state.dom)
    eng.keys.update(state.keys)
    for x, influenced in state.infl.items():
        eng.infl[x] = set(influenced)
    eng.stable.update(state.stable)
    eng._counter = state.counter


def _seeds(
    state: SolverState,
    dirty: Iterable[Hashable],
    closure: str,
    contribs: Iterable[Tuple[Hashable, Hashable]] = (),
) -> Set[Hashable]:
    """The unknowns to destabilize at warm-start time."""
    if closure not in ("transitive", "direct"):
        raise ValueError(f"closure must be 'transitive' or 'direct', got {closure!r}")
    dirty_known = {x for x in dirty if x in state.dom}
    if closure == "direct":
        return dirty_known
    return influence_closure(dirty_known, state.infl, contribs)


def _check_reset(reset: str, closure: str) -> None:
    if reset not in ("none", "destabilized"):
        raise ValueError(f"reset must be 'none' or 'destabilized', got {reset!r}")
    if reset == "destabilized" and closure != "transitive":
        # Resetting is only sound when every (transitive) reader of a
        # reset unknown is itself destabilized -- which is exactly what
        # the transitive closure guarantees.
        raise ValueError("reset='destabilized' requires closure='transitive'")


# --------------------------------------------------------------------- #
# SW.                                                                   #
# --------------------------------------------------------------------- #

def warm_solve_sw(
    system,
    op: Combine,
    state: SolverState,
    dirty: Iterable[Hashable],
    order: Optional[Sequence] = None,
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
    closure: str = "transitive",
    reset: str = "none",
) -> SolverResult:
    """Warm-started structured worklist iteration over a finite system.

    ``sigma`` is seeded from the snapshot where the snapshot covers the
    (new) unknown set; unknowns without a restored value are initialised
    fresh and treated as dirty.  Only the destabilized unknowns enter the
    initial queue -- a change during re-iteration propagates through the
    system's static influence map exactly as in a cold SW run.

    With ``reset='destabilized'`` the destabilized unknowns restart from
    their initial values instead of their stale ones; see
    :func:`warm_solve_slr` for the trade-off.
    """
    if closure not in ("transitive", "direct"):
        raise ValueError(f"closure must be 'transitive' or 'direct', got {closure!r}")
    _check_reset(reset, closure)
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    xs = list(order) if order is not None else list(system.unknowns)
    key = {x: i for i, x in enumerate(xs)}
    sigma = eng.sigma
    fresh = set()
    for x in xs:
        if x in state.sigma:
            sigma[x] = state.sigma[x]
        else:
            sigma[x] = system.init(x)
            fresh.add(x)
    eng.stats.unknowns = len(sigma)
    infl = system.infl()
    if closure == "transitive":
        seeds = influence_closure(
            {x for x in dirty if x in key} | fresh, infl
        )
    else:
        seeds = ({x for x in dirty if x in key} | fresh)
    if reset == "destabilized":
        for x in seeds:
            sigma[x] = system.init(x)
    queue = eng.make_queue(key.__getitem__)
    for x in sorted(seeds, key=key.__getitem__):
        queue.add(x)

    def get(y):
        return sigma[y]

    while queue:
        x = queue.extract_min()
        old = sigma[x]
        if eng.commit(x, op(x, old, eng.eval_rhs(x, get))):
            work = infl.get(x, [x])
            queue.add(x)
            for z in work:
                queue.add(z)
            eng.bus.emit_destabilize(x, work)
    eng.finish(unknowns=len(sigma))
    return SolverResult(sigma, eng.stats)


# --------------------------------------------------------------------- #
# SLR.                                                                  #
# --------------------------------------------------------------------- #

def warm_solve_slr(
    system,
    op: Combine,
    x0: Hashable,
    state: SolverState,
    dirty: Iterable[Hashable],
    max_evals: Optional[int] = None,
    *,
    observers=(),
    memoize: bool = False,
    closure: str = "transitive",
    reset: str = "none",
) -> LocalResult:
    """Warm-started SLR from a restored snapshot.

    The restored priority keys order the work exactly as the discovery
    order of the original run did; unknowns discovered during the warm
    run (reachable only through edited right-hand sides) continue the key
    sequence below the restored minimum.

    ``reset`` picks what the destabilized unknowns resume *from*:

    * ``'none'`` (default) -- their stale values.  Fewest re-evaluations,
      but finite stale bounds survive (narrowing only improves infinite
      ones), so the result can be less precise than from-scratch.
    * ``'destabilized'`` -- their initial values, recomputed by a fresh
      ⌴-iteration against the untouched fringe.  Matches from-scratch
      precision at the cost of re-iterating the destabilized region; only
      sound with the transitive closure, which guarantees that every
      reader of a reset unknown is itself reset.
    """
    _check_reset(reset, closure)
    eng = SolverEngine(
        system, op, max_evals=max_evals, observers=observers, memoize=memoize
    )
    op = eng.op  # the engine's per-run fresh instance
    _restore_engine(eng, state)
    sigma, keys = eng.sigma, eng.keys
    queue = eng.make_queue(lambda x: keys[x])

    def solve(x) -> None:
        if x in eng.stable:
            return
        eng.stable.add(x)
        old = sigma[x]
        tmp = op(x, old, eng.eval_rhs(x, eng.fresh_solving_eval(x, solve)))
        if eng.commit(x, tmp):
            eng.destabilize(x, queue)
        while queue and queue.min_key() <= keys[x]:
            solve(queue.extract_min())

    seeds = _seeds(state, dirty, closure)
    eng.stable.difference_update(seeds)
    if reset == "destabilized":
        for x in seeds:
            sigma[x] = system.init(x)

    def run() -> None:
        if x0 not in eng.dom:
            eng.init_unknown(x0)
        for x in seeds:
            queue.add(x)
        solve(x0)
        while queue:
            solve(queue.extract_min())

    call_with_deep_stack(run)
    eng.finish()
    return LocalResult(sigma=sigma, stats=eng.stats, infl=eng.infl, keys=keys)


# --------------------------------------------------------------------- #
# SLR+.                                                                 #
# --------------------------------------------------------------------- #

def warm_solve_slr_side(
    system,
    op: Combine,
    x0: Hashable,
    state: SolverState,
    dirty: Iterable[Hashable],
    max_evals: Optional[int] = None,
    track_contributions: bool = True,
    *,
    observers=(),
    closure: str = "transitive",
    reset: str = "none",
) -> SideResult:
    """Warm-started SLR+ from a restored snapshot.

    Contributions whose origin is dirty are dropped before iteration: the
    origin's new right-hand side re-establishes whatever side effects it
    still performs, and since the cleared slot reads as bottom, any
    re-contribution registers as a change and destabilizes the target.
    (An origin that stops contributing leaves the target at its old,
    larger value -- sound, and the same no-retraction treatment the
    solver applies within a single run.)  Contributions from clean
    origins are restored, so a destabilized target re-joins them without
    re-running their origins.  See :func:`warm_solve_slr` for ``reset``.
    """
    _check_reset(reset, closure)
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    _restore_engine(eng, state)
    lat = eng.lattice
    sigma, keys, dom, stable = eng.sigma, eng.keys, eng.dom, eng.stable
    contribs: Dict[Tuple[Hashable, Hashable], object] = dict(state.contribs)
    contributors: Dict[Hashable, Set[Hashable]] = {
        z: set(s) for z, s in state.contributors.items()
    }
    accumulated: set = set(state.accumulated)
    eng.aux.update(
        contribs=contribs, contributors=contributors, accumulated=accumulated
    )
    queue = eng.make_queue(lambda x: keys[x])

    dirty_known = {x for x in dirty if x in dom}
    for pair in [p for p in contribs if p[0] in dirty_known]:
        del contribs[pair]
        contributors.get(pair[1], set()).discard(pair[0])

    def init(y) -> None:
        eng.init_unknown(y)
        contributors.setdefault(y, set())

    def destabilize_and_queue(y) -> None:
        stable.discard(y)
        queue.add(y)

    def solve(x) -> None:
        if x in stable:
            return
        stable.add(x)
        side = make_side(x)
        rhs = system.rhs(x)
        own = eng.eval_rhs(x, make_eval(x), lambda get: rhs(get, side))
        total = own
        if track_contributions:
            for z in contributors.get(x, ()):
                total = lat.join(total, contribs[(z, x)])
        elif x in accumulated:
            total = lat.join(total, sigma[x])
        if eng.commit(x, op(x, sigma[x], total)):
            eng.destabilize(x, queue)
        while queue and queue.min_key() <= keys[x]:
            solve(queue.extract_min())

    def make_eval(x):
        return eng.fresh_solving_eval(x, solve)

    def _side_accumulate(x, y, d) -> None:
        fresh = y not in dom
        if fresh:
            init(y)
        accumulated.add(y)
        new = op(y, sigma[y], lat.join(sigma[y], d))
        if eng.commit(y, new):
            if fresh:
                solve(y)
            else:
                eng.destabilize(y, queue)

    def make_side(x):
        effected: set = set()

        def side(y, d) -> None:
            if y == x:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects itself"
                )
            if y in effected:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects {y!r} twice "
                    f"in one evaluation"
                )
            effected.add(y)
            if not track_contributions:
                _side_accumulate(x, y, d)
                return
            pair = (x, y)
            old = contribs.get(pair, lat.bottom)
            changed = not lat.equal(old, d)
            if changed:
                contribs[pair] = d
            if y not in dom:
                init(y)
                contributors[y] = {x}
                solve(y)
            else:
                contributors.setdefault(y, set()).add(x)
                if changed:
                    destabilize_and_queue(y)

        return side

    seeds = _seeds(state, dirty, closure, state.contribs)
    stable.difference_update(seeds)
    if reset == "destabilized":
        for x in seeds:
            sigma[x] = system.init(x)
        # Every seed origin re-runs from its initial value and
        # re-establishes its side effects; its stored contributions are
        # stale by definition and would re-enter reset targets through
        # the join below.  Dropping them is sound because the transitive
        # closure also reset every target they fed.
        for pair in [p for p in contribs if p[0] in seeds]:
            del contribs[pair]
            contributors.get(pair[1], set()).discard(pair[0])

    def run() -> None:
        if x0 not in dom:
            init(x0)
        for x in seeds:
            queue.add(x)
        solve(x0)
        while queue:
            solve(queue.extract_min())

    call_with_deep_stack(run)
    eng.finish()
    return SideResult(
        sigma=sigma,
        stats=eng.stats,
        infl=eng.infl,
        keys=keys,
        contribs=contribs,
        contributors=contributors,
        accumulated=accumulated,
    )


# --------------------------------------------------------------------- #
# SLR2 / SLR3.                                                          #
# --------------------------------------------------------------------- #

def warm_solve_slr_restart(
    system,
    op: Combine,
    x0: Hashable,
    state: SolverState,
    dirty: Iterable[Hashable],
    max_evals: Optional[int] = None,
    track_contributions: bool = True,
    *,
    observers=(),
    closure: str = "transitive",
    reset: str = "none",
    restart: bool = True,
):
    """Warm-started SLR2/SLR3 from a restored snapshot.

    Identical to :func:`warm_solve_slr_side` in its treatment of dirty
    origins and contributions, except that the localized discipline of
    the restarting family applies: the combined operator fires only at
    the widening points restored from ``state.wpoints`` (new points are
    still detected dynamically during the warm run), and with
    ``restart=True`` (SLR3) a downward reversal at a point restarts its
    dependent region afresh -- the restart budget does not carry over
    from the original run.
    """
    from repro.solvers.slr_restart import RestartResult

    _check_reset(reset, closure)
    eng = SolverEngine(system, op, max_evals=max_evals, observers=observers)
    op = eng.op  # the engine's per-run fresh instance
    _restore_engine(eng, state)
    lat = eng.lattice
    sigma, keys, dom, stable = eng.sigma, eng.keys, eng.dom, eng.stable
    infl = eng.infl
    contribs: Dict[Tuple[Hashable, Hashable], object] = dict(state.contribs)
    contributors: Dict[Hashable, Set[Hashable]] = {
        z: set(s) for z, s in state.contributors.items()
    }
    accumulated: set = set(state.accumulated)
    wpoints: Set[Hashable] = set(state.wpoints)
    restarted: Set[Hashable] = set()
    evaluating: Set[Hashable] = set()
    eng.aux.update(
        contribs=contribs,
        contributors=contributors,
        accumulated=accumulated,
        wpoints=wpoints,
    )
    queue = eng.make_queue(lambda x: keys[x])

    dirty_known = {x for x in dirty if x in dom}
    for pair in [p for p in contribs if p[0] in dirty_known]:
        del contribs[pair]
        contributors.get(pair[1], set()).discard(pair[0])

    def init(y) -> None:
        eng.init_unknown(y)
        contributors.setdefault(y, set())

    def destabilize_and_queue(y) -> None:
        stable.discard(y)
        queue.add(y)

    def solve(x) -> None:
        if x in stable:
            return
        stable.add(x)
        side = make_side(x)
        rhs = system.rhs(x)
        evaluating.add(x)
        try:
            own = eng.eval_rhs(x, make_eval(x), lambda get: rhs(get, side))
        finally:
            evaluating.discard(x)
        total = own
        if track_contributions:
            for z in contributors.get(x, ()):
                total = lat.join(total, contribs[(z, x)])
        elif x in accumulated:
            total = lat.join(total, sigma[x])
        old = sigma[x]
        new = op(x, old, total) if x in wpoints else total
        grew_before = eng._direction.get(x) is False
        if eng.commit(x, new):
            if (
                restart
                and x in wpoints
                and x not in restarted
                and grew_before
                and lat.leq(new, old)
            ):
                restarted.add(x)
                eng.restart_region(x, queue)
            else:
                eng.destabilize(x, queue)
        while queue and queue.min_key() <= keys[x]:
            solve(queue.extract_min())

    def make_eval(x):
        def eval_(y):
            if y not in dom:
                init(y)
                solve(y)
            elif y in evaluating or keys[y] >= keys[x]:
                # In-flight lookup or access against priority order:
                # ``y`` heads a cycle (see repro.solvers.slr_restart).
                wpoints.add(y)
            infl[y].add(x)
            return sigma[y]

        return eval_

    def _side_accumulate(x, y, d) -> None:
        fresh = y not in dom
        if fresh:
            init(y)
        else:
            wpoints.add(y)
        accumulated.add(y)
        joined = lat.join(sigma[y], d)
        new = op(y, sigma[y], joined) if y in wpoints else joined
        if eng.commit(y, new):
            if fresh:
                solve(y)
            else:
                eng.destabilize(y, queue)

    def make_side(x):
        effected: set = set()

        def side(y, d) -> None:
            if y == x:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects itself"
                )
            if y in effected:
                raise SideEffectError(
                    f"right-hand side of {x!r} side-effects {y!r} twice "
                    f"in one evaluation"
                )
            effected.add(y)
            if not track_contributions:
                _side_accumulate(x, y, d)
                return
            pair = (x, y)
            old = contribs.get(pair, lat.bottom)
            changed = not lat.equal(old, d)
            if changed:
                contribs[pair] = d
            if y not in dom:
                init(y)
                contributors[y] = {x}
                solve(y)
            else:
                contributors.setdefault(y, set()).add(x)
                if changed:
                    wpoints.add(y)
                    destabilize_and_queue(y)

        return side

    seeds = _seeds(state, dirty, closure, state.contribs)
    stable.difference_update(seeds)
    if reset == "destabilized":
        for x in seeds:
            sigma[x] = system.init(x)
        # Same soundness argument as warm_solve_slr_side: the transitive
        # closure reset every target a dropped contribution fed.
        for pair in [p for p in contribs if p[0] in seeds]:
            del contribs[pair]
            contributors.get(pair[1], set()).discard(pair[0])

    def run() -> None:
        if x0 not in dom:
            init(x0)
        for x in seeds:
            queue.add(x)
        solve(x0)
        while queue:
            solve(queue.extract_min())

    call_with_deep_stack(run)
    eng.finish()
    return RestartResult(
        sigma=sigma,
        stats=eng.stats,
        infl=infl,
        keys=keys,
        contribs=contribs,
        contributors=contributors,
        accumulated=accumulated,
        wpoints=wpoints,
        restarted=restarted,
    )


def warm_solve_slr2(system, op, x0, state, dirty, **kwargs):
    """Warm-started SLR2 (localized, non-restarting); see
    :func:`warm_solve_slr_restart`."""
    return warm_solve_slr_restart(
        system, op, x0, state, dirty, restart=False, **kwargs
    )


def warm_solve_slr3(system, op, x0, state, dirty, **kwargs):
    """Warm-started SLR3 (localized, restarting); see
    :func:`warm_solve_slr_restart`."""
    return warm_solve_slr_restart(
        system, op, x0, state, dirty, restart=True, **kwargs
    )


# --------------------------------------------------------------------- #
# Dispatch.                                                             #
# --------------------------------------------------------------------- #

def warm_solve(
    system,
    op: Combine,
    state: SolverState,
    dirty: Iterable[Hashable],
    x0: Hashable = None,
    **kwargs,
):
    """Dispatch a warm start on the solver recorded in the snapshot."""
    name = state.solver
    if name == "sw":
        return warm_solve_sw(system, op, state, dirty, **kwargs)
    if name == "slr":
        return warm_solve_slr(system, op, x0, state, dirty, **kwargs)
    if name in ("slr+", "slr-side", "slrside"):
        return warm_solve_slr_side(system, op, x0, state, dirty, **kwargs)
    if name in ("slr2", "slr-localized"):
        return warm_solve_slr2(system, op, x0, state, dirty, **kwargs)
    if name in ("slr3", "slr-restart"):
        return warm_solve_slr3(system, op, x0, state, dirty, **kwargs)
    raise ValueError(f"no warm-start strategy for solver {name!r}")
