"""JSON codecs for lattice values and solver unknowns.

Persisting a solver state (:mod:`repro.incremental.state`) requires
turning two kinds of objects into JSON and back:

* **lattice values** -- intervals, ``N | {oo}`` elements, abstract
  environments, tagged-union elements, ...  The codec for a value is
  *derived from the lattice* that owns it: :func:`value_codec` walks the
  lattice's structure (``Lifted`` wraps an inner lattice, ``MapLattice``
  has a value lattice per key, ``TaggedUnionLattice`` has one branch per
  tag) and composes the leaf codecs accordingly.  Custom domains hook in
  via :func:`register_value_codec`.
* **unknowns** -- strings and integers for the toy systems, CFG
  :class:`~repro.lang.cfg.Node` values for the intraprocedural analysis,
  ``PP``/``GV`` records for the interprocedural one, and pairs thereof
  for SLR+'s per-origin contributions.  :class:`UnknownCodec` handles all
  of these structurally.

Every encoder produces plain JSON types only (no ``Infinity`` literals:
infinite bounds are spelled ``"-oo"``/``"+oo"``), so the output of
:meth:`SolverState.to_json` survives any strict JSON parser.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Type

from repro.lattices.base import Lattice


class CodecError(Exception):
    """Raised when a value or unknown cannot be (de)serialized."""


# --------------------------------------------------------------------- #
# Bound helpers (interval bounds, N | {oo} elements).                   #
# --------------------------------------------------------------------- #

_NEG = "-oo"
_POS = "+oo"


def _encode_bound(b) -> Any:
    if b == float("-inf"):
        return _NEG
    if b == float("inf"):
        return _POS
    return int(b)


def _decode_bound(j) -> Any:
    if j == _NEG:
        return float("-inf")
    if j == _POS:
        return float("inf")
    return int(j)


# --------------------------------------------------------------------- #
# Value codecs.                                                         #
# --------------------------------------------------------------------- #

class ValueCodec:
    """Encode/decode elements of one lattice to/from JSON-able data."""

    def __init__(
        self, encode: Callable[[Any], Any], decode: Callable[[Any], Any]
    ) -> None:
        self.encode = encode
        self.decode = decode


#: Custom codec factories: lattice type -> (lattice -> ValueCodec).
_VALUE_CODECS: Dict[Type, Callable[[Lattice], ValueCodec]] = {}


def register_value_codec(
    lattice_cls: Type, factory: Callable[[Lattice], ValueCodec]
) -> None:
    """Register a codec factory for a (custom) lattice class.

    ``factory`` receives the lattice instance and returns its codec;
    registration of a subclass shadows the structural derivation in
    :func:`value_codec`.
    """
    _VALUE_CODECS[lattice_cls] = factory


def _interval_codec(_lat) -> ValueCodec:
    from repro.lattices.interval import Interval

    def enc(v):
        if v is None:
            return None
        return [_encode_bound(v.lo), _encode_bound(v.hi)]

    def dec(j):
        if j is None:
            return None
        return Interval(_decode_bound(j[0]), _decode_bound(j[1]))

    return ValueCodec(enc, dec)


def _natinf_codec(_lat) -> ValueCodec:
    def enc(v):
        return "oo" if v == float("inf") else int(v)

    def dec(j):
        return float("inf") if j == "oo" else int(j)

    return ValueCodec(enc, dec)


def _flat_codec(_lat) -> ValueCodec:
    from repro.lattices.flat import FlatBot, FlatTop

    def enc(v):
        if v is FlatBot:
            return "_bot_"
        if v is FlatTop:
            return "_top_"
        return ["c", v]

    def dec(j):
        if j == "_bot_":
            return FlatBot
        if j == "_top_":
            return FlatTop
        return j[1]

    return ValueCodec(enc, dec)


def _bool_codec(_lat) -> ValueCodec:
    return ValueCodec(bool, bool)


def _frozenset_codec(_lat) -> ValueCodec:
    def enc(v):
        return sorted(v, key=repr)

    def dec(j):
        return frozenset(j)

    return ValueCodec(enc, dec)


def _congruence_codec(_lat) -> ValueCodec:
    def enc(v):
        if v is None:
            return None
        m, r = v
        return [int(m), int(r)]

    def dec(j):
        if j is None:
            return None
        return (int(j[0]), int(j[1]))

    return ValueCodec(enc, dec)


def _map_codec(lat) -> ValueCodec:
    from repro.lattices.maplat import FrozenMap

    inner = value_codec(lat.value_lattice)

    def enc(v):
        return {str(k): inner.encode(v[k]) for k in sorted(v, key=str)}

    def dec(j):
        return FrozenMap({k: inner.decode(x) for k, x in j.items()})

    return ValueCodec(enc, dec)


def _lifted_codec(lat) -> ValueCodec:
    from repro.lattices.lifted import LiftedBottom

    inner = value_codec(lat.inner)

    def enc(v):
        if v is LiftedBottom:
            return "_unreachable_"
        return ["v", inner.encode(v)]

    def dec(j):
        if j == "_unreachable_":
            return LiftedBottom
        return inner.decode(j[1])

    return ValueCodec(enc, dec)


def _encode_tag(tag) -> Any:
    if isinstance(tag, str):
        return tag
    if isinstance(tag, tuple):
        return list(tag)
    raise CodecError(f"unsupported union tag {tag!r}")


def _union_codec(lat) -> ValueCodec:
    from repro.lattices.union import UNION_BOT, UNION_TOP

    branch_codecs = {
        tag: value_codec(branch) for tag, branch in lat.branches.items()
    }
    by_encoded = {repr(_encode_tag(t)): t for t in branch_codecs}

    def enc(v):
        if v == UNION_BOT:
            return "_bot_"
        if v == UNION_TOP:
            return "_top_"
        tag, payload = v
        return [_encode_tag(tag), branch_codecs[tag].encode(payload)]

    def dec(j):
        if j == "_bot_":
            return UNION_BOT
        if j == "_top_":
            return UNION_TOP
        raw_tag, payload = j
        tag = by_encoded[repr(raw_tag if isinstance(raw_tag, str) else list(raw_tag))]
        return (tag, branch_codecs[tag].decode(payload))

    return ValueCodec(enc, dec)


def _product_codec(lat) -> ValueCodec:
    parts = [value_codec(f) for f in lat.factors]

    def enc(v):
        return [c.encode(x) for c, x in zip(parts, v)]

    def dec(j):
        return tuple(c.decode(x) for c, x in zip(parts, j))

    return ValueCodec(enc, dec)


def _product_domain_codec(lat) -> ValueCodec:
    first = value_codec(lat.first)
    second = value_codec(lat.second)

    def enc(v):
        if v is None:
            return None
        return [first.encode(v[0]), second.encode(v[1])]

    def dec(j):
        if j is None:
            return None
        return (first.decode(j[0]), second.decode(j[1]))

    return ValueCodec(enc, dec)


def value_codec(lattice: Lattice) -> ValueCodec:
    """Derive the JSON codec of ``lattice``'s elements from its structure.

    Handles every lattice shipped with the reproduction (and the numeric
    domain adapters of :mod:`repro.analysis.values`).  Custom domains
    either subclass a handled lattice or register a factory via
    :func:`register_value_codec`.
    """
    for cls in type(lattice).__mro__:
        if cls in _VALUE_CODECS:
            return _VALUE_CODECS[cls](lattice)
    # Domain adapters delegate to an underlying lattice attribute.
    for attr in ("iv", "flat", "cong", "sign"):
        inner = getattr(lattice, attr, None)
        if isinstance(inner, Lattice):
            return value_codec(inner)
    raise CodecError(
        f"no JSON codec for lattice {lattice!r}; register one with "
        f"repro.incremental.codecs.register_value_codec"
    )


def _install_builtin_codecs() -> None:
    from repro.lattices.boollat import BoolLattice
    from repro.lattices.congruence import CongruenceLattice
    from repro.lattices.flat import Flat
    from repro.lattices.interval import IntervalLattice
    from repro.lattices.lifted import Lifted
    from repro.lattices.maplat import MapLattice
    from repro.lattices.natinf import NatInf
    from repro.lattices.parity import Parity
    from repro.lattices.powerset import PowersetLattice
    from repro.lattices.product import ProductLattice
    from repro.lattices.sign import Sign
    from repro.lattices.union import TaggedUnionLattice

    register_value_codec(IntervalLattice, _interval_codec)
    register_value_codec(NatInf, _natinf_codec)
    register_value_codec(Flat, _flat_codec)
    register_value_codec(BoolLattice, _bool_codec)
    register_value_codec(Sign, _frozenset_codec)
    register_value_codec(Parity, _frozenset_codec)
    register_value_codec(PowersetLattice, _frozenset_codec)
    register_value_codec(CongruenceLattice, _congruence_codec)
    register_value_codec(MapLattice, _map_codec)
    register_value_codec(Lifted, _lifted_codec)
    register_value_codec(TaggedUnionLattice, _union_codec)
    register_value_codec(ProductLattice, _product_codec)

    from repro.analysis.values import ProductNumericDomain

    register_value_codec(ProductNumericDomain, _product_domain_codec)


_install_builtin_codecs()


# --------------------------------------------------------------------- #
# Unknown codecs.                                                       #
# --------------------------------------------------------------------- #

class UnknownCodec:
    """Structural codec for solver unknowns.

    Plain strings encode as themselves; every other shape becomes a
    tagged JSON list: integers, ``None``, booleans, tuples (recursively,
    covering SLR+ contribution pairs and value contexts), CFG nodes,
    interprocedural ``PP``/``GV`` unknowns, intervals and frozensets
    (which occur inside calling contexts), and frozen maps.
    """

    def encode(self, u) -> Any:
        if isinstance(u, str):
            return u
        if isinstance(u, bool):
            return ["b", u]
        if isinstance(u, int):
            return ["i", u]
        if u is None:
            return ["none"]
        if isinstance(u, tuple) and not hasattr(u, "_fields"):
            from repro.lang.cfg import Node  # noqa: F401 (type check below)

            return ["t", [self.encode(x) for x in u]]
        type_name = type(u).__name__
        if type_name == "Node":
            return ["node", u.fn, u.index, u.line]
        if type_name == "PP":
            return ["pp", u.fn, self.encode(u.ctx), self.encode(u.node)]
        if type_name == "GV":
            return ["gv", u.name]
        if type_name == "Interval":
            return ["iv", _encode_bound(u.lo), _encode_bound(u.hi)]
        if isinstance(u, frozenset):
            return ["fs", sorted((self.encode(x) for x in u), key=repr)]
        from repro.lattices.maplat import FrozenMap

        if isinstance(u, FrozenMap):
            return [
                "fm",
                [
                    [self.encode(k), self.encode(v)]
                    for k, v in sorted(u.items(), key=lambda kv: str(kv[0]))
                ],
            ]
        raise CodecError(f"unsupported unknown {u!r} of type {type_name}")

    def decode(self, j) -> Any:
        if isinstance(j, str):
            return j
        kind = j[0]
        if kind == "b":
            return bool(j[1])
        if kind == "i":
            return int(j[1])
        if kind == "none":
            return None
        if kind == "t":
            return tuple(self.decode(x) for x in j[1])
        if kind == "node":
            from repro.lang.cfg import Node

            return Node(j[1], int(j[2]), int(j[3]))
        if kind == "pp":
            from repro.analysis.inter import PP

            return PP(j[1], self.decode(j[2]), self.decode(j[3]))
        if kind == "gv":
            from repro.analysis.inter import GV

            return GV(j[1])
        if kind == "iv":
            from repro.lattices.interval import Interval

            return Interval(_decode_bound(j[1]), _decode_bound(j[2]))
        if kind == "fs":
            return frozenset(self.decode(x) for x in j[1])
        if kind == "fm":
            from repro.lattices.maplat import FrozenMap

            return FrozenMap({self.decode(k): self.decode(v) for k, v in j[1]})
        raise CodecError(f"unsupported encoded unknown {j!r}")
