"""Snapshot and restore of solver state.

A terminated run of SW/SLR/SLR+ leaves behind exactly the state that a
later *warm start* needs: the mapping ``sigma``, the recorded influence
sets, the priority keys and discovery counter of a local solve, the
stability set, and -- for SLR+ -- the per-origin side-effect contributions.
:class:`SolverState` bundles that state, :func:`capture` extracts it from
a solver result, and the JSON round-trip (:meth:`SolverState.to_json` /
:meth:`SolverState.from_json`) persists it across processes using the
per-domain codecs of :mod:`repro.incremental.codecs`.

Serialization is *deterministic*: all pair lists are sorted by the JSON
rendering of the encoded unknown, so two snapshots of the same state are
byte-identical -- the property behind the golden round-trip test.

:meth:`SolverState.transfer` re-keys a snapshot along an unknown mapping
(old version -> new version), dropping every unknown the mapping does not
cover; this is how a snapshot taken on one program version is carried to
the next (see :mod:`repro.lang.diff`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Set, Tuple

from repro.incremental.codecs import UnknownCodec, ValueCodec, value_codec

#: Format marker written into every serialized state.
FORMAT = "repro-solver-state/1"


class StateFormatError(Exception):
    """Raised when a serialized state has the wrong format marker."""


@dataclass
class SolverState:
    """The resumable state of one terminated solver run."""

    #: Registry name of the solver that produced the state.
    solver: str
    #: The final mapping over the encountered unknowns.
    sigma: Dict[Hashable, Any] = field(default_factory=dict)
    #: Influence sets as recorded at termination (SLR discipline: each
    #: set contains the unknown itself).  Empty for SW, whose influence
    #: map is static.
    infl: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    #: Priority keys of a local solve (later-discovered = smaller).
    keys: Dict[Hashable, int] = field(default_factory=dict)
    #: The encountered domain.
    dom: Set[Hashable] = field(default_factory=set)
    #: Unknowns stable at termination (= ``dom`` for a finished solve).
    stable: Set[Hashable] = field(default_factory=set)
    #: Discovery counter: the next fresh unknown receives key ``-counter``.
    counter: int = 0
    #: Widening points in effect, for selective operators (optional).
    wpoints: Set[Hashable] = field(default_factory=set)
    #: SLR+ only: latest contribution of origin ``x`` to target ``z``.
    contribs: Dict[Tuple[Hashable, Hashable], Any] = field(default_factory=dict)
    #: SLR+ only: the final contributor sets.
    contributors: Dict[Hashable, Set[Hashable]] = field(default_factory=dict)
    #: SLR+ classical mode only: targets of accumulated side effects.
    accumulated: Set[Hashable] = field(default_factory=set)
    #: Optional snapshot of the update operator's per-unknown state
    #: (:func:`repro.strategies.export_combine_state`): delayed
    #: widening's grow counts, ⌴ₖ's switch counters, ...  ``None`` for
    #: stateless operators and legacy snapshots; serialized only when
    #: present, so existing payloads stay byte-identical.
    combine: Optional[Dict[str, Any]] = None

    # ----------------------------------------------------------------- #
    # Cross-version transfer.                                           #
    # ----------------------------------------------------------------- #

    def transfer(
        self, rename: Callable[[Hashable], Optional[Hashable]]
    ) -> "SolverState":
        """Re-key the state along ``rename``; drop unmapped unknowns.

        ``rename(u)`` returns the unknown's name in the new version, or
        ``None`` when ``u`` has no counterpart (a deleted program point).
        Influence and contributor sets are mapped element-wise, silently
        shedding edges into dropped unknowns.  Priority keys and the
        counter are preserved, so unknowns discovered during the warm run
        receive fresh keys strictly smaller than all restored ones.
        The combine-operator snapshot is dropped: its counters describe
        the *old* version's trajectory, and starting the operator cold is
        always sound (it can only delay acceleration, never skip it).
        """
        cache: Dict[Hashable, Optional[Hashable]] = {}

        def m(u):
            if u not in cache:
                cache[u] = rename(u)
            return cache[u]

        def map_set(s):
            return {v for v in (m(u) for u in s) if v is not None}

        sigma = {}
        infl = {}
        keys = {}
        for u, value in self.sigma.items():
            v = m(u)
            if v is None:
                continue
            sigma[v] = value
        for u, influenced in self.infl.items():
            v = m(u)
            if v is None:
                continue
            infl[v] = map_set(influenced)
        for u, k in self.keys.items():
            v = m(u)
            if v is not None:
                keys[v] = k
        contribs = {}
        contributors = {}
        for (x, z), value in self.contribs.items():
            nx, nz = m(x), m(z)
            if nx is None or nz is None:
                continue
            contribs[(nx, nz)] = value
        for z, origins in self.contributors.items():
            nz = m(z)
            if nz is None:
                continue
            contributors[nz] = map_set(origins)
        return SolverState(
            solver=self.solver,
            sigma=sigma,
            infl=infl,
            keys=keys,
            dom=map_set(self.dom),
            stable=map_set(self.stable),
            counter=self.counter,
            wpoints=map_set(self.wpoints),
            contribs=contribs,
            contributors=contributors,
            accumulated=map_set(self.accumulated),
        )

    # ----------------------------------------------------------------- #
    # JSON round-trip.                                                  #
    # ----------------------------------------------------------------- #

    def to_json(
        self,
        values: ValueCodec,
        unknowns: Optional[UnknownCodec] = None,
    ) -> Dict[str, Any]:
        """Serialize to a JSON-able dict with deterministic ordering.

        The ``combine`` key is emitted only when a combine-operator
        snapshot is present, so snapshots without one (every snapshot
        predating the strategies subsystem) keep their exact bytes.
        """
        uc = unknowns if unknowns is not None else UnknownCodec()

        def skey(pair):
            return json.dumps(pair[0], sort_keys=True)

        def enc_pairs(mapping, enc_value):
            return sorted(
                ([uc.encode(u), enc_value(v)] for u, v in mapping.items()),
                key=skey,
            )

        def enc_set(s):
            return sorted((uc.encode(u) for u in s), key=lambda e: json.dumps(e))

        out = {
            "format": FORMAT,
            "solver": self.solver,
            "counter": self.counter,
            "sigma": enc_pairs(self.sigma, values.encode),
            "infl": enc_pairs(self.infl, enc_set),
            "keys": enc_pairs(self.keys, int),
            "dom": enc_set(self.dom),
            "stable": enc_set(self.stable),
            "wpoints": enc_set(self.wpoints),
            "contribs": sorted(
                (
                    [uc.encode(x), uc.encode(z), values.encode(v)]
                    for (x, z), v in self.contribs.items()
                ),
                key=lambda t: json.dumps(t[:2], sort_keys=True),
            ),
            "contributors": enc_pairs(self.contributors, enc_set),
            "accumulated": enc_set(self.accumulated),
        }
        if self.combine:
            out["combine"] = self.combine
        return out

    @classmethod
    def from_json(
        cls,
        data: Dict[str, Any],
        values: ValueCodec,
        unknowns: Optional[UnknownCodec] = None,
    ) -> "SolverState":
        """Restore a state serialized by :meth:`to_json`."""
        if data.get("format") != FORMAT:
            raise StateFormatError(
                f"expected format {FORMAT!r}, got {data.get('format')!r}"
            )
        uc = unknowns if unknowns is not None else UnknownCodec()

        def dec_pairs(pairs, dec_value):
            return {uc.decode(u): dec_value(v) for u, v in pairs}

        def dec_set(elems):
            return {uc.decode(e) for e in elems}

        return cls(
            solver=data["solver"],
            sigma=dec_pairs(data["sigma"], values.decode),
            infl=dec_pairs(data["infl"], dec_set),
            keys=dec_pairs(data["keys"], int),
            dom=dec_set(data["dom"]),
            stable=dec_set(data["stable"]),
            counter=int(data["counter"]),
            wpoints=dec_set(data["wpoints"]),
            contribs={
                (uc.decode(x), uc.decode(z)): values.decode(v)
                for x, z, v in data["contribs"]
            },
            contributors=dec_pairs(data["contributors"], dec_set),
            accumulated=dec_set(data["accumulated"]),
            combine=data.get("combine"),
        )

    def dumps(self, lattice, unknowns: Optional[UnknownCodec] = None) -> str:
        """Serialize to a JSON string, deriving the value codec."""
        return json.dumps(
            self.to_json(value_codec(lattice), unknowns),
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def loads(
        cls, text: str, lattice, unknowns: Optional[UnknownCodec] = None
    ) -> "SolverState":
        """Restore from a JSON string, deriving the value codec."""
        return cls.from_json(json.loads(text), value_codec(lattice), unknowns)


# --------------------------------------------------------------------- #
# Capture from solver results.                                          #
# --------------------------------------------------------------------- #

def _export_op(op) -> Optional[Dict[str, Any]]:
    """``op``'s combine-state snapshot, or ``None`` when stateless."""
    if op is None:
        return None
    from repro.strategies.state import export_combine_state

    return export_combine_state(op) or None


def capture(
    result,
    solver: str,
    wpoints: Set[Hashable] = frozenset(),
    *,
    op=None,
) -> SolverState:
    """Snapshot a terminated solver result as a :class:`SolverState`.

    Works for all three warm-startable solvers: ``SolverResult`` (SW),
    ``LocalResult`` (SLR), and ``SideResult`` (SLR+); the ``solver`` name
    records which one so :func:`repro.incremental.warmstart.warm_solve`
    can dispatch.  For local solves the stability set is the encountered
    domain (every unknown is stable at termination) and the discovery
    counter is reconstructed from the smallest priority key.

    :param op: when given, the run's update operator; its per-unknown
        state (:func:`repro.strategies.export_combine_state`) rides
        along in :attr:`SolverState.combine` so a resume can restore
        widening delays and ⌴ₖ budgets exactly.
    """
    keys = dict(getattr(result, "keys", {}) or {})
    infl = {x: set(s) for x, s in (getattr(result, "infl", {}) or {}).items()}
    sigma = dict(result.sigma)
    dom = set(keys) if keys else set(sigma)
    counter = 1 - min(keys.values()) if keys else 0
    return SolverState(
        solver=solver,
        sigma=sigma,
        infl=infl,
        keys=keys,
        dom=dom,
        stable=set(dom),
        counter=counter,
        # Restarting solvers carry their dynamically detected widening
        # points on the result; an explicit argument still wins.
        wpoints=(
            set(wpoints)
            if wpoints
            else set(getattr(result, "wpoints", ()) or ())
        ),
        contribs=dict(getattr(result, "contribs", {}) or {}),
        contributors={
            z: set(s)
            for z, s in (getattr(result, "contributors", {}) or {}).items()
        },
        accumulated=set(getattr(result, "accumulated", ()) or ()),
        combine=_export_op(op),
    )


def capture_engine(
    engine,
    solver: str,
    wpoints: Set[Hashable] = frozenset(),
    *,
    include_combine: bool = False,
) -> SolverState:
    """Snapshot a *running* :class:`~repro.solvers.engine.SolverEngine`.

    Unlike :func:`capture`, which snapshots a terminated result (where
    every encountered unknown is stable), this works mid-iteration -- it
    is what the supervision layer's periodic checkpoints use.  Two
    subtleties make the snapshot resumable:

    * unknowns whose evaluation is currently *in flight* are removed from
      the stability set: their pending evaluation never committed, so a
      resumed run must re-solve them;
    * strategy-private state that lives outside the engine (SLR+'s
      contribution maps) is read from ``engine.aux``, where the solver
      registers it;
    * with ``include_combine`` the update operator's own per-unknown
      state (widening delays, ⌴ₖ budgets) is snapshotted from
      ``engine.op`` into :attr:`SolverState.combine` -- opt-in, so
      existing checkpoint payloads stay byte-identical.

    A crash-recovery resume destabilizes ``state.dom - state.stable``
    (see :func:`resume_dirty`); for SW, whose loop does not maintain the
    stability set, that conservatively re-queues every unknown -- the
    resumed run still starts from the snapshotted ``sigma`` instead of
    bottom.
    """
    aux = getattr(engine, "aux", {})
    stable = set(engine.stable)
    stable.difference_update(getattr(engine, "inflight", ()))
    # Localized solvers (SLR2/SLR3) register their dynamically detected
    # widening points in ``aux``; fall back to them when the caller does
    # not pass a wpoint set of its own.
    if not wpoints:
        wpoints = aux.get("wpoints", frozenset())
    return SolverState(
        solver=solver,
        sigma=dict(engine.sigma),
        infl={x: set(s) for x, s in engine.infl.items()},
        keys=dict(engine.keys),
        dom=set(engine.dom) if engine.dom else set(engine.sigma),
        stable=stable,
        counter=engine._counter,
        wpoints=set(wpoints),
        contribs=dict(aux.get("contribs", {})),
        contributors={
            z: set(s) for z, s in aux.get("contributors", {}).items()
        },
        accumulated=set(aux.get("accumulated", ())),
        combine=(
            _export_op(getattr(engine, "op", None))
            if include_combine
            else None
        ),
    )


def resume_dirty(state: SolverState) -> Set[Hashable]:
    """The unknowns a crash-recovery warm start must destabilize.

    Everything the snapshot does not prove stable: the complement of
    ``state.stable`` within ``state.dom``.  Pass this as the ``dirty``
    argument of :func:`repro.incremental.warmstart.warm_solve` to resume
    an interrupted run (the program itself is unchanged, so there are no
    edit-dirty unknowns -- only work the crash cut short).
    """
    return set(state.dom) - set(state.stable)
