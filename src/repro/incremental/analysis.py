"""Incremental interprocedural analysis: diff, transfer, warm re-solve.

This module glues the pieces of the incremental subsystem together for
the mini-C analyses:

1. :func:`analyze_and_snapshot` runs the ordinary interprocedural
   analysis and captures its solver state;
2. :func:`reanalyze_program` diffs the old and new CFGs
   (:func:`repro.lang.diff.diff_cfg`), transfers the snapshot across the
   node matching, derives the dirty unknowns, and resumes SLR+ warm;
3. :func:`check_post_solution` / :func:`check_post_solution_pure`
   independently re-verify that a (warm or cold) solution is a partial
   post solution -- ``sigma[x] ⊒ f_x(sigma)`` joined with all recorded
   side contributions -- which is the paper's soundness notion for
   ⌴-solutions (Theorem 4).

The dirty-unknown derivation mirrors the equation structure of
:class:`repro.analysis.inter.InterAnalysis`: a ``PP(fn, ctx, v)`` unknown
is dirty exactly when the diff marks ``v`` dirty (its in-edge equation
changed), and the program entry point is additionally dirty when a global
initialiser changed, because its right-hand side performs the seeding
side effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.analysis.compare import PrecisionComparison, compare_results
from repro.analysis.inter import (
    GV,
    PP,
    AnalysisResult,
    ContextPolicy,
    InterAnalysis,
    _collect,
    analyze_program,
)
from repro.incremental.state import SolverState, capture
from repro.incremental.warmstart import warm_solve_slr_side
from repro.lang.cfg import ControlFlowGraph
from repro.lang.diff import CfgDiff, diff_cfg
from repro.solvers.combine import Combine, WarrowCombine


# --------------------------------------------------------------------- #
# Post-solution checking.                                               #
# --------------------------------------------------------------------- #

@dataclass
class PostViolation:
    """One unknown whose value fails the post-solution inequality."""

    unknown: Hashable
    actual: object
    required: object

    def __repr__(self) -> str:
        return (
            f"PostViolation({self.unknown!r}: {self.actual!r} "
            f"!⊒ {self.required!r})"
        )


def check_post_solution_pure(system, sigma) -> List[PostViolation]:
    """Check ``sigma[x] ⊒ f_x(sigma)`` for every unknown of ``sigma``.

    Unknowns read outside ``sigma`` evaluate to their initial value; for
    a solver-produced solution the domain is closed under dependencies,
    so this never weakens the check.
    """
    lat = system.lattice

    def get(y):
        return sigma[y] if y in sigma else system.init(y)

    violations = []
    for x in sigma:
        required = system.rhs(x)(get)
        if not lat.leq(required, sigma[x]):
            violations.append(PostViolation(x, sigma[x], required))
    return violations


def check_post_solution(system, sigma) -> List[PostViolation]:
    """Post-solution check for a side-effecting system.

    Every right-hand side is evaluated once against ``sigma``; the side
    effects of *all* evaluations are collected and joined per target, and
    each unknown must dominate its own value joined with the collected
    contributions -- the defining inequality of the paper's side-effecting
    post solutions (Section 6).
    """
    lat = system.lattice

    def get(y):
        return sigma[y] if y in sigma else system.init(y)

    own: Dict[Hashable, object] = {}
    contributions: Dict[Hashable, object] = {}
    for x in sigma:

        def side(z, d):
            contributions[z] = lat.join(contributions.get(z, lat.bottom), d)

        own[x] = system.rhs(x)(get, side)
    violations = []
    for x in sigma:
        required = lat.join(own[x], contributions.get(x, lat.bottom))
        if not lat.leq(required, sigma[x]):
            violations.append(PostViolation(x, sigma[x], required))
    return violations


# --------------------------------------------------------------------- #
# Equation-system diffing (for the toy/random systems).                 #
# --------------------------------------------------------------------- #

def diff_finite_systems(old, new) -> Set[Hashable]:
    """Dirty set between two versions of a finite system.

    An unknown is dirty when its right-hand side *callable* is a
    different object or its static dependency list changed; unknowns
    only present in the new version are dirty by definition.  Building
    the edited version by copying the equation dict and replacing the
    changed entries -- the natural way to express an edit -- therefore
    yields exactly the edited unknowns.
    """
    dirty: Set[Hashable] = set()
    old_unknowns = set(old.unknowns)
    for x in new.unknowns:
        if x not in old_unknowns:
            dirty.add(x)
        elif old.rhs(x) is not new.rhs(x) or list(old.deps(x)) != list(
            new.deps(x)
        ):
            dirty.add(x)
    return dirty


# --------------------------------------------------------------------- #
# Program-level incremental analysis.                                   #
# --------------------------------------------------------------------- #

def analyze_and_snapshot(
    cfg: ControlFlowGraph,
    domain,
    policy: Optional[ContextPolicy] = None,
    entry_fn: str = "main",
    max_evals: Optional[int] = None,
    widen_delay: int = 1,
    op_spec: Optional[str] = None,
):
    """Cold analysis plus a resumable snapshot of its solver state.

    :param op_spec: optional combine-strategy spec (see
        :mod:`repro.strategies`) driving the cold solve; the default is
        the combined operator.  Phased specs are rejected -- the
        snapshot must come from a single resumable solver pass.
    :returns: ``(AnalysisResult, SolverState)``.
    """
    result = analyze_program(
        cfg,
        domain,
        policy=policy,
        entry_fn=entry_fn,
        max_evals=max_evals,
        widen_delay=widen_delay,
        solver="slr+",
        op_spec=op_spec,
    )
    return result, capture(result.solver_result, "slr+")


@dataclass
class IncrementalReport:
    """Outcome of one warm re-analysis after a program edit."""

    #: The warm-started analysis of the new program version.
    result: AnalysisResult
    #: The CFG diff the destabilization was derived from.
    diff: CfgDiff
    #: The dirty unknowns (changed right-hand sides) that seeded it.
    dirty: Set[Hashable] = field(default_factory=set)
    #: How many unknowns of the snapshot survived the transfer.
    transferred: int = 0
    #: Snapshot of the warm run, for chaining further edits.
    state: Optional[SolverState] = None
    #: Post-solution violations of the warm solution (must be empty).
    violations: List[PostViolation] = field(default_factory=list)
    #: Per-point precision of warm vs from-scratch, when requested.
    precision: Optional[PrecisionComparison] = None
    #: The from-scratch result, when requested.
    scratch: Optional[AnalysisResult] = None

    @property
    def warm_evaluations(self) -> int:
        return self.result.solver_result.stats.evaluations

    @property
    def scratch_evaluations(self) -> Optional[int]:
        if self.scratch is None:
            return None
        return self.scratch.solver_result.stats.evaluations

    @property
    def sound(self) -> bool:
        return not self.violations


def transfer_state(
    state: SolverState,
    diff: CfgDiff,
    new_cfg: ControlFlowGraph,
    entry_fn: str = "main",
):
    """Carry a snapshot across a CFG diff.

    :returns: ``(transferred_state, dirty_unknowns)`` in new-version
        terms.  Program points of dropped functions and deleted nodes are
        pruned; the dirty set contains every transferred ``PP`` whose
        node the diff marks dirty, plus the program entry when a global
        initialiser changed (its equation performs the seeding).
    """
    new_globals = set(new_cfg.global_scalars) | set(new_cfg.global_arrays)

    def rename(u):
        if isinstance(u, PP):
            if u.fn in diff.dropped_functions or u.fn not in new_cfg.functions:
                return None
            node = diff.node_map.get(u.node)
            if node is None:
                return None
            return PP(u.fn, u.ctx, node)
        if isinstance(u, GV):
            return u if u.name in new_globals else None
        return None

    transferred = state.transfer(rename)
    dirty: Set[Hashable] = {
        u
        for u in transferred.dom
        if isinstance(u, PP) and u.node in diff.dirty_nodes
    }
    # A contribution whose origin did not survive the transfer is gone
    # from the restored state, but its value is still folded into the
    # target: the target's effective inputs changed, so it is dirty.
    for x, z in state.contribs:
        if rename(x) is None:
            zn = rename(z)
            if zn is not None and zn in transferred.dom:
                dirty.add(zn)
    if diff.changed_globals and entry_fn in new_cfg.functions:
        entry_node = new_cfg.functions[entry_fn].entry
        dirty.update(
            u
            for u in transferred.dom
            if isinstance(u, PP) and u.fn == entry_fn and u.node == entry_node
        )
    return transferred, dirty


def reanalyze_program(
    old_cfg: ControlFlowGraph,
    new_cfg: ControlFlowGraph,
    state: SolverState,
    domain,
    policy: Optional[ContextPolicy] = None,
    op: Optional[Combine] = None,
    entry_fn: str = "main",
    max_evals: Optional[int] = None,
    widen_delay: int = 1,
    closure: str = "transitive",
    reset: str = "none",
    compare_scratch: bool = False,
    op_spec: Optional[str] = None,
) -> IncrementalReport:
    """Warm re-analysis of ``new_cfg`` from a snapshot taken on ``old_cfg``.

    The snapshot must come from an SLR+ run with the *same* domain,
    policy and entry function (e.g. via :func:`analyze_and_snapshot`).
    The update operator may be given directly (``op``) or as a strategy
    spec string (``op_spec``, resolved against the new program's
    analysis lattice and CFG); the warm re-solve and the optional
    from-scratch comparison run the same strategy, so the comparison
    isolates warm-starting, not the operator.
    With ``compare_scratch`` the new version is additionally analysed
    from scratch and the report carries the per-point precision
    comparison -- the correctness bar of the paper's robustness claim for
    ⌴-iteration under non-monotonic restarts.  ``reset='destabilized'``
    trades re-evaluations of the destabilized region for from-scratch
    precision (see :func:`repro.incremental.warmstart.warm_solve_slr`).
    """
    if op is not None and op_spec is not None:
        raise ValueError("pass either op or op_spec, not both")
    diff = diff_cfg(old_cfg, new_cfg)
    analysis = InterAnalysis(new_cfg, domain, policy, entry_fn)
    if op_spec is not None:
        from repro.strategies.registry import BuildContext, build_combine

        op = build_combine(
            op_spec,
            analysis.lattice,
            ctx=BuildContext(cfg=new_cfg),
            widen_delay=widen_delay,
        )
    if op is None:
        op = WarrowCombine(analysis.lattice, delay=widen_delay)
    transferred, dirty = transfer_state(state, diff, new_cfg, entry_fn)
    system = analysis.system()
    solver_result = warm_solve_slr_side(
        system,
        op,
        analysis.root(),
        transferred,
        dirty,
        max_evals=max_evals,
        closure=closure,
        reset=reset,
    )
    report = IncrementalReport(
        result=_collect(analysis, solver_result),
        diff=diff,
        dirty=dirty,
        transferred=len(transferred.dom),
        state=capture(solver_result, "slr+"),
        violations=check_post_solution(system, solver_result.sigma),
    )
    if compare_scratch:
        scratch = analyze_program(
            new_cfg,
            domain,
            policy=policy,
            entry_fn=entry_fn,
            max_evals=max_evals,
            widen_delay=widen_delay,
            solver="slr+",
            op_spec=op_spec,
        )
        report.scratch = scratch
        report.precision = compare_results(report.result, scratch)
    return report
