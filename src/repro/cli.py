"""Command-line interface: run, analyze, and verify mini-C programs, and
regenerate the paper's experiments.

Usage (also via ``python -m repro``)::

    repro run program.mc [-- ARGS...]       execute a program concretely
    repro analyze program.mc [options]      interval analysis report
    repro verify program.mc [options]       check assert() statements
    repro check program.mc [options]        run the bug-finding checkers
    repro solve program.mc [options]        supervised analysis run
    repro incr old.mc new.mc [options]      warm re-analysis after an edit
    repro dump-cfg program.mc               print the control-flow graphs
    repro solvers [--json]                  list the registered solvers
    repro strategies [--json]               list the combine strategies
    repro fig7 [BENCH ...]                  regenerate Figure 7
    repro table1 [PROGRAM ...]              regenerate Table 1
    repro bench [options]                   batch-solve the corpus, gate CI
    repro bench --matrix [options]          precision x cost strategy matrix
    repro serve [options]                   run the analysis daemon
    repro submit program.mc [options]       analyse via a running daemon
    repro status [options]                  daemon counters and cache stats
    repro shutdown [options]                drain and stop a daemon

Exit codes distinguish failure classes (see ``repro --help``): ``0``
success, ``1`` incomplete verification (for ``repro check``: diagnostics
reported), ``2`` input errors (including violated assertions), ``3``
solver divergence (budget or watchdog), ``4`` internal faults.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import (
    analyze_program,
    check_assertions,
    collect_thresholds,
    summarize,
)
from repro.analysis.inter import analyze_program_twophase
from repro.analysis.verify import Verdict
from repro.lang import Interpreter, compile_program
from repro.lattices.lifted import LiftedBottom


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _policy(name: str, domain):
    from repro.batch.jobs import build_policy

    try:
        return build_policy(name, domain)
    except ValueError as err:
        raise SystemExit(str(err))


def _domain(args, cfg):
    from repro.batch.jobs import build_domain

    thresholds = ()
    if getattr(args, "thresholds", False):
        thresholds = collect_thresholds(cfg)
    try:
        return build_domain(getattr(args, "domain", "interval"), thresholds)
    except ValueError as err:
        raise SystemExit(str(err))


def _effective_spec(args) -> Optional[str]:
    """The strategy spec an analysis command should run.

    ``--op SPEC`` wins; the legacy ``--solver twophase`` shorthand maps
    onto the ``twophase`` strategy; otherwise ``None`` (the default
    combined-operator path, bit-identical to the pre-strategy CLI).
    """
    spec = getattr(args, "op", None)
    if spec is not None:
        return spec
    if getattr(args, "solver", "combined") == "twophase":
        return "twophase"
    return None


def _analyze(args):
    cfg = compile_program(_read_source(args.file))
    domain = _domain(args, cfg)
    policy = _policy(args.context, domain)
    spec = _effective_spec(args)
    if spec is None:
        result = analyze_program(
            cfg,
            domain,
            policy=policy,
            max_evals=args.max_evals,
            solver=args.local_solver,
        )
        return cfg, result, domain

    from repro.strategies import is_phased, resolve_spec

    if is_phased(spec):
        resolved = resolve_spec(spec, widen_delay=1)
        result = analyze_program_twophase(
            cfg,
            domain,
            policy=policy,
            max_evals=args.max_evals,
            solver=args.local_solver,
            widen_delay=resolved.get("delay", 1),
            track_contributions=(resolved.name == "decoupled"),
        )
    else:
        result = analyze_program(
            cfg,
            domain,
            policy=policy,
            max_evals=args.max_evals,
            solver=args.local_solver,
            op_spec=spec,
        )
    return cfg, result, domain


# --------------------------------------------------------------------- #
# Subcommands.                                                          #
# --------------------------------------------------------------------- #

def cmd_run(args) -> int:
    cfg = compile_program(_read_source(args.file))
    interp = Interpreter(cfg, fuel=args.fuel)
    result = interp.run("main", [int(a) for a in args.args])
    print(f"return value: {result.ret}")
    if result.globals:
        print("globals:")
        for name, value in sorted(result.globals.items()):
            print(f"  {name} = {value}")
    for name, cells in sorted(result.global_arrays.items()):
        print(f"  {name} = {cells}")
    print(f"({result.steps} edges executed)")
    return 0


def cmd_analyze(args) -> int:
    cfg, result, domain = _analyze(args)
    print(
        f"analysis: {args.domain} domain, {args.solver} solver, "
        f"{args.context} contexts -- "
        f"{result.unknown_count} unknowns, "
        f"{result.solver_result.stats.evaluations} evaluations"
    )
    if result.globals:
        print("\nflow-insensitive globals:")
        for name, value in sorted(result.globals.items()):
            print(f"  {name} = {domain.format(value)}")
    print("\ncontexts per function:")
    for fn, count in sorted(result.contexts_per_function.items()):
        print(f"  {fn}: {count}")
    from repro.analysis import find_unreachable

    dead = find_unreachable(cfg, result)
    if dead:
        print("\nunreachable program points:")
        for report in dead:
            print(f"  {report}")
    if args.points:
        print("\nabstract states (joined over contexts):")
        for fn_name, fn in sorted(cfg.functions.items()):
            for node in sorted(fn.nodes, key=lambda n: n.index):
                env = result.env_at(fn_name, node)
                if env is LiftedBottom:
                    print(f"  {node!r}: unreachable")
                else:
                    shown = ", ".join(
                        f"{var}={domain.format(env[var])}"
                        for var in sorted(env)
                        if not var.startswith("__")
                    )
                    print(f"  {node!r}: {shown}")
    return 0


def cmd_verify(args) -> int:
    cfg, result, _ = _analyze(args)
    reports = check_assertions(cfg, result)
    if not reports:
        print("no assertions found")
        return 0
    for report in reports:
        print(report)
    counts = summarize(reports)
    print(
        f"\n{counts[Verdict.PROVED]} proved, "
        f"{counts[Verdict.UNKNOWN]} unknown, "
        f"{counts[Verdict.VIOLATED]} violated, "
        f"{counts[Verdict.UNREACHABLE]} unreachable"
    )
    if counts[Verdict.VIOLATED]:
        return 2
    if counts[Verdict.UNKNOWN]:
        return 1
    return 0


def cmd_check(args) -> int:
    import json
    import os

    from repro.checkers import (
        DEFAULT_CHECK_OP,
        render_diagnostics_json,
        render_diagnostics_text,
        run_check,
        sarif_lite,
    )

    rules: List[str] = []
    for chunk in args.rules or ():
        rules.extend(name.strip() for name in chunk.split(",") if name.strip())
    spec = _effective_spec(args) or DEFAULT_CHECK_OP
    report = run_check(
        _read_source(args.file),
        program=os.path.basename(args.file),
        rules=rules or None,
        op=spec,
        domain=args.domain,
        context=args.context,
        solver=args.local_solver,
        thresholds=args.thresholds,
        max_evals=args.max_evals,
    )
    doc = report.document()
    if args.json:
        # The canonical byte encoding: goldens compare this exactly.
        sys.stdout.write(render_diagnostics_json(doc))
    elif args.sarif_lite:
        print(json.dumps(sarif_lite(doc), indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_diagnostics_text(doc))
    return report.exit_code()


def cmd_solve(args) -> int:
    from repro.analysis.inter import InterAnalysis
    from repro.strategies import (
        BuildContext,
        build_combine,
        is_phased,
        spec_needs_thresholds,
    )
    from repro.supervise import ChaosPolicy, FaultSpec, supervised_solve

    spec = _effective_spec(args) or "warrow:delay=1"
    if is_phased(spec):
        print(
            f"error: strategy {spec!r} is phased (two solver passes) and "
            "cannot run under the single-pass supervision layer; use "
            "`repro analyze --op ...` instead",
            file=sys.stderr,
        )
        return 2
    cfg = compile_program(_read_source(args.file))
    domain = _domain(args, cfg)
    policy = _policy(args.context, domain)
    analysis = InterAnalysis(cfg, domain, policy)
    thresholds = ()
    if args.thresholds or spec_needs_thresholds(spec):
        thresholds = tuple(collect_thresholds(cfg))
    op = build_combine(
        spec,
        analysis.lattice,
        ctx=BuildContext(cfg=cfg, thresholds=thresholds),
        widen_delay=1,
    )

    chaos = None
    if args.chaos_rate or args.chaos_fail_at:
        faults = []
        if args.chaos_fail_at:
            faults.append(FaultSpec("raise", at=args.chaos_fail_at))
        chaos = ChaosPolicy(
            seed=args.chaos_seed,
            faults=faults,
            rate=args.chaos_rate,
            kinds=tuple(args.chaos_kinds.split(",")),
        )

    report = supervised_solve(
        analysis.system(),
        op,
        analysis.root(),
        solver=args.local_solver,
        fallback=tuple(args.fallback or ()),
        deadline=args.deadline,
        max_evals=args.max_evals,
        descent_cap=args.descent_cap,
        escalate=not args.no_escalate,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_file,
        chaos=chaos,
        verify=not args.no_verify,
    )
    print(report.render())
    if args.stats and report.result is not None:
        stats = report.result.stats
        print("\nsolver statistics:")
        print(f"  evaluations:        {stats.evaluations}")
        print(f"  updates:            {stats.updates}")
        print(f"  widen updates:      {stats.widen_updates}")
        print(f"  narrow updates:     {stats.narrow_updates}")
        print(f"  direction switches: {stats.direction_switches}")
        print(f"  restarts:           {stats.restarts}")
        print(f"  unknowns:           {stats.unknowns}")
        print(f"  max queue:          {stats.max_queue}")
    if report.ok:
        return 0
    last = report.attempts[-1].outcome if report.attempts else "trip"
    if last == "fault" or report.consistency_problems:
        return 4
    return 3


def cmd_solvers(args) -> int:
    from repro.solvers.registry import all_specs

    if getattr(args, "json", False):
        import json

        from repro.solvers.registry import capability_listing

        print(json.dumps(capability_listing(), indent=2, sort_keys=True))
        return 0
    for spec in all_specs():
        caps = [spec.scope]
        if spec.side_effecting:
            caps.append("side-effecting")
        if not spec.takes_op:
            caps.append("fixed-op")
        if not spec.generic:
            caps.append("non-generic")
        if spec.memoizable:
            caps.append("memoizable")
        if spec.restarting:
            caps.append("restarting")
        if spec.takes_order:
            caps.append("takes-order")
        if spec.supports_warm_start:
            caps.append("supports-warm-start")
        if spec.supervisable:
            caps.append("supervisable")
        names = spec.name
        if spec.aliases:
            names += f" ({', '.join(spec.aliases)})"
        ref = f" [{spec.paper_ref}]" if spec.paper_ref else ""
        print(f"{names}: {', '.join(caps)}{ref}")
        if spec.summary:
            print(f"    {spec.summary}")
    return 0


def cmd_strategies(args) -> int:
    from repro.strategies import all_strategies, format_spec, resolve_spec

    if getattr(args, "json", False):
        import json

        from repro.strategies import strategy_listing

        print(json.dumps(strategy_listing(), indent=2, sort_keys=True))
        return 0
    for info in all_strategies():
        caps = [info.kind]
        if info.solve_ready:
            caps.append("solve-ready")
        if info.kind == "combine" and info.solve_ready:
            caps.append("restart-safe")
        if info.idempotent:
            caps.append("idempotent")
        if info.needs_thresholds:
            caps.append("needs-thresholds")
        if info.needs_cfg:
            caps.append("needs-cfg")
        names = info.name
        if info.aliases:
            names += f" ({', '.join(info.aliases)})"
        ref = f" [{info.paper_ref}]" if info.paper_ref else ""
        print(f"{names}: {', '.join(caps)}{ref}")
        if info.params:
            print(f"    canonical: {format_spec(resolve_spec(info.name))}")
        if info.summary:
            print(f"    {info.summary}")
    return 0


def cmd_dump_cfg(args) -> int:
    cfg = compile_program(_read_source(args.file))
    for fn_name, fn in cfg.functions.items():
        print(f"function {fn_name}({', '.join(fn.params)}):")
        print(f"  locals: {', '.join(fn.locals)}")
        if fn.arrays:
            arrays = ", ".join(f"{a}[{n}]" for a, n in fn.arrays.items())
            print(f"  arrays: {arrays}")
        for edge in fn.edges:
            print(f"  {edge.src!r} --{type(edge.instr).__name__}--> {edge.dst!r}")
        print()
    return 0


def cmd_incr(args) -> int:
    from repro.incremental import (
        SolverState,
        analyze_and_snapshot,
        reanalyze_program,
    )

    old_cfg = compile_program(_read_source(args.file))
    new_cfg = compile_program(_read_source(args.edited))
    domain = _domain(args, old_cfg)
    policy = _policy(args.context, domain)
    spec = _effective_spec(args)

    result, state = analyze_and_snapshot(
        old_cfg, domain, policy=policy, max_evals=args.max_evals, op_spec=spec
    )
    cold_evals = result.solver_result.stats.evaluations
    print(
        f"cold solve of {args.file}: {result.unknown_count} unknowns, "
        f"{cold_evals} evaluations"
    )

    if args.state_file:
        # Persist and reload the snapshot: the warm start below runs off
        # the deserialized state, exercising the full round-trip.
        lattice = result.lattice
        with open(args.state_file, "w", encoding="utf-8") as handle:
            handle.write(state.dumps(lattice))
        with open(args.state_file, "r", encoding="utf-8") as handle:
            state = SolverState.loads(handle.read(), lattice)
        print(f"state saved to {args.state_file} and restored")

    report = reanalyze_program(
        old_cfg,
        new_cfg,
        state,
        domain,
        policy=policy,
        max_evals=args.max_evals,
        closure=args.closure,
        reset=args.reset,
        compare_scratch=not args.no_compare,
        op_spec=spec,
    )
    diff = report.diff
    print(
        f"diff against {args.edited}: {len(diff.dirty_nodes)} dirty nodes, "
        f"{len(diff.node_map)} matched, "
        f"{len(report.dirty)} dirty unknowns, "
        f"{report.transferred} unknowns transferred"
    )
    print(f"warm re-solve: {report.warm_evaluations} evaluations")
    if report.scratch is not None:
        scratch_evals = report.scratch_evaluations
        ratio = (
            scratch_evals / report.warm_evaluations
            if report.warm_evaluations
            else float("inf")
        )
        print(
            f"from-scratch re-solve: {scratch_evals} evaluations "
            f"({ratio:.1f}x more than warm)"
        )
    if report.sound:
        print("soundness: warm solution is a post solution")
    else:
        print(f"soundness: {len(report.violations)} VIOLATIONS")
        for v in report.violations[:10]:
            print(f"  {v!r}")
    if report.precision is not None:
        cmp_ = report.precision
        print(
            f"precision vs from-scratch: {cmp_.equal} equal, "
            f"{cmp_.better} better, {cmp_.worse} worse, "
            f"{cmp_.incomparable} incomparable "
            f"(of {cmp_.total} program points)"
        )
        if args.points:
            for fn, node in cmp_.better_points:
                print(f"  warm more precise at {fn} {node!r}")
    return 0 if report.sound else 2


def cmd_fig7(args) -> int:
    from repro.bench.harness import run_fig7
    from repro.bench.reporting import render_fig7

    result = run_fig7(names=args.names or None)
    print(render_fig7(result))
    return 0


def cmd_table1(args) -> int:
    from repro.bench.harness import run_table1
    from repro.bench.reporting import render_table1

    rows = run_table1(names=args.names or None)
    print(render_table1(rows))
    return 0


def _bench_matrix(args) -> int:
    from repro.batch import (
        DEFAULT_MATRIX_STRATEGIES,
        git_revision,
        matrix_programs,
        render_matrix,
        run_matrix,
        validate_matrix,
        write_matrix,
    )

    try:
        programs = matrix_programs(args.families or None, quick=args.quick)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if not programs:
        print("error: the selected corpus is empty", file=sys.stderr)
        return 2
    strategies = args.strategies or list(DEFAULT_MATRIX_STRATEGIES)
    if args.list:
        from repro.batch.matrix import resolve_matrix_strategies

        columns, _ = resolve_matrix_strategies(
            strategies, args.baseline_strategy
        )
        for family, program, _source in programs:
            for spec in columns:
                print(f"{family}/{program}/{spec}")
        return 0

    revision = git_revision()
    doc = run_matrix(
        programs,
        strategies,
        baseline=args.baseline_strategy,
        quick=args.quick,
        revision=revision,
    )
    problems = validate_matrix(doc)
    if problems:  # pragma: no cover - internal schema drift
        print(
            f"internal fault: invalid document: {problems}", file=sys.stderr
        )
        return 4
    print(render_matrix(doc))
    out = args.out or f"MATRIX_{revision}.json"
    write_matrix(doc, out)
    print(f"wrote {out}")
    if args.update_baseline:
        write_matrix(doc, args.update_baseline)
        print(f"baseline refreshed: {args.update_baseline}")
    worst = 0 if doc["totals"]["failed"] == 0 else 1
    if args.compare:
        import json

        from repro.batch import compare_matrices, load_matrix

        try:
            baseline = load_matrix(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        report = compare_matrices(doc, baseline)
        print(report.render())
        if not report.ok:
            return 1
    return worst


def cmd_bench(args) -> int:
    import json

    from repro.batch import (
        compare_benches,
        corpus_jobs,
        git_revision,
        load_bench,
        run_bench,
        validate_bench,
        write_bench,
    )

    if args.matrix:
        return _bench_matrix(args)
    try:
        jobs = corpus_jobs(
            args.families or None, quick=args.quick, deadline=args.deadline
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.list:
        for job in jobs:
            print(job.id)
        return 0
    if not jobs:
        print("error: the selected corpus is empty", file=sys.stderr)
        return 2

    repeats = args.repeats
    if repeats is None:
        repeats = 2 if args.quick else 3
    revision = git_revision()
    doc = run_bench(
        jobs,
        repeats=repeats,
        workers=args.workers,
        quick=args.quick,
        revision=revision,
    )
    problems = validate_bench(doc)
    if problems:  # pragma: no cover - internal schema drift
        print(
            f"internal fault: invalid document: {problems}", file=sys.stderr
        )
        return 4

    totals = doc["totals"]
    print(
        f"bench: {totals['jobs']} jobs, {totals['ok']} ok, "
        f"{totals['failed']} failed, {totals['evaluations']} evaluations, "
        f"{totals['wall_time']:.2f}s (min-of-{repeats}, "
        f"workers={args.workers or 'auto'})"
    )
    for entry in doc["jobs"]:
        if entry["code"] != 0 and entry["status"] != "findings":
            print(
                f"  {entry['job']}: {entry['status']} (code {entry['code']})"
                f" {entry['error']}"
            )

    out = args.out or f"BENCH_{revision}.json"
    write_bench(doc, out)
    print(f"wrote {out}")
    if args.update_baseline:
        write_bench(doc, args.update_baseline)
        print(f"baseline refreshed: {args.update_baseline}")

    # ``findings`` is the expected outcome of the buggy check corpus, not
    # a benchmark failure; drift in the findings is what ``--compare``
    # gates on.
    worst = max(
        (
            entry["code"]
            for entry in doc["jobs"]
            if entry["status"] != "findings"
        ),
        default=0,
    )
    if args.compare:
        try:
            baseline = load_bench(args.compare)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        report = compare_benches(
            doc,
            baseline,
            eval_threshold=args.eval_threshold / 100.0,
            time_threshold=args.time_threshold / 100.0,
        )
        print(report.render())
        if not report.ok:
            return 1
    return worst


# --------------------------------------------------------------------- #
# Service subcommands.                                                  #
# --------------------------------------------------------------------- #

def _service_client(args):
    """A connected-on-demand client, or ``None`` (after an error print)."""
    from repro.service import RetryPolicy, ServiceClient

    if args.socket is None and args.port is None:
        print(
            "error: need --socket PATH or --port PORT to reach the daemon",
            file=sys.stderr,
        )
        return None
    retries = getattr(args, "retries", None)
    retry = None if retries is None else RetryPolicy(attempts=max(1, retries))
    return ServiceClient(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        retry=retry,
    )


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service import AnalysisDaemon, ServiceConfig

    if args.socket is None and args.port is None:
        print(
            "error: serve needs --socket PATH or --port PORT (0: ephemeral)",
            file=sys.stderr,
        )
        return 2
    if args.shards:
        if args.socket is None:
            print(
                "error: --shards needs --socket PATH (the router's front "
                "socket; shards get sockets under the fleet directory)",
                file=sys.stderr,
            )
            return 2
        if args.supervise:
            print(
                "error: --shards already supervises every shard; drop "
                "--supervise",
                file=sys.stderr,
            )
            return 2
        from repro.fleet import FleetConfig, serve_fleet

        return serve_fleet(
            FleetConfig(
                socket_path=args.socket,
                shards=args.shards,
                workers=args.workers,
                run_dir=args.fleet_dir,
                shared_dir=args.shared_dir,
                health_interval=args.health_interval,
                max_restarts=args.max_restarts,
                default_deadline=args.deadline,
                cache_entries=args.cache_entries,
                queue_high=args.queue_high,
                read_timeout=args.read_timeout,
                log_path=args.log_file,
            )
        )
    if args.supervise:
        from repro.service.supervisor import RestartSupervisor, serve_command

        supervisor = RestartSupervisor(
            serve_command(args), max_restarts=args.max_restarts
        )
        return supervisor.run()
    config = ServiceConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port or 0,
        workers=args.workers,
        cache_entries=args.cache_entries,
        cache_ttl=args.cache_ttl,
        cache_path=args.cache_file,
        default_deadline=args.deadline,
        warm_ratio=args.warm_ratio,
        log_path=args.log_file,
        queue_high=args.queue_high,
        queue_low=args.queue_low,
        max_connections=args.max_connections,
        shed_retry_ms=args.shed_retry_ms,
        read_timeout=args.read_timeout,
        journal_path=args.journal_file,
        shared_dir=args.shared_dir,
    )
    daemon = AnalysisDaemon(config)

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, daemon.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-UNIX loops; Ctrl-C still raises KeyboardInterrupt
        await daemon.start()
        address = daemon.address
        if address[0] == "unix":
            print(f"listening on unix socket {address[1]}", flush=True)
            if daemon.stale_socket_removed:
                print(
                    "removed a stale socket left by a crashed predecessor",
                    flush=True,
                )
        else:
            print(f"listening on {address[1]}:{address[2]}", flush=True)
        if daemon.cache_loaded:
            print(
                f"cache index restored: {daemon.cache_loaded} entries",
                flush=True,
            )
        if daemon.journal.recovered:
            print(
                f"journal: recovered {len(daemon.journal.recovered)} "
                f"interrupted request(s)",
                flush=True,
            )
        await daemon.serve_until_shutdown()

    asyncio.run(_serve())
    print("daemon stopped")
    return 0


def cmd_submit(args) -> int:
    import json
    import os

    from repro.service import ServiceError

    client = _service_client(args)
    if client is None:
        return 2
    source = _read_source(args.file)
    request = {
        "solver": args.solver,
        "domain": args.domain,
        "context": args.context,
        "update_op": args.op,
        "widen_delay": args.widen_delay,
        "thresholds": args.thresholds,
        "max_evals": args.max_evals,
        "verify": args.verify,
        "label": args.label or os.path.basename(args.file),
    }
    if args.deadline is not None and args.deadline_ms is not None:
        print(
            "error: pass either --deadline or --deadline-ms, not both",
            file=sys.stderr,
        )
        return 2
    if args.deadline is not None:
        request["deadline"] = args.deadline
    if args.deadline_ms is not None:
        request["deadline_ms"] = args.deadline_ms
    if args.fresh:
        request["fresh"] = True
    try:
        with client:
            reply = client.solve(source, **request)
    except ServiceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    result = reply["result"]
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
    else:
        print(
            f"request {reply['request']}: cache {reply['cache']}, "
            f"status {result['status']} (code {result['code']})"
        )
        print(
            f"  solver {result['solver']}, domain {result['domain']}, "
            f"{reply['served_evaluations']} evaluations served, "
            f"{reply['wall_ms']:.1f} ms"
        )
        if reply.get("warm_donor"):
            print(
                f"  warm-started from {reply['warm_donor'][:12]} "
                f"({reply['dirty_nodes']} dirty nodes)"
            )
        if result.get("error"):
            print(f"  error: {result['error']}")
    return int(result["code"])


def cmd_service_status(args) -> int:
    import json

    from repro.service import ServiceError

    client = _service_client(args)
    if client is None:
        return 2
    try:
        with client:
            reply = client.status()
    except ServiceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
        return 0
    if reply.get("role") == "router" or "fleet" in reply:
        _print_fleet_status(reply)
        return 0
    requests = reply["requests"]
    cache = reply["cache"]
    print(
        f"daemon pid {reply['pid']}, up {reply['uptime_s']:.1f}s, "
        f"{reply['workers']} workers, {reply['in_flight']} in flight"
        f"{', draining' if reply['draining'] else ''}"
    )
    print(
        f"requests: {requests['total']} total -- {requests['hit']} hit, "
        f"{requests['warm']} warm, {requests['miss']} miss, "
        f"{requests['bypass']} bypass, {requests['coalesced']} coalesced, "
        f"{requests['errors']} errors"
    )
    shared = reply.get("shared")
    if shared:
        print(
            f"shared index: {shared['entries']} entries at {shared['root']}"
            f" -- {shared['hits']} hits, {shared['stores']} stores, "
            f"{requests.get('shared_hit', 0)} served, "
            f"{requests.get('shared_warm', 0)} cross-shard warm"
        )
    print(
        f"cache: {cache['entries']}/{cache['max_entries']} entries, "
        f"{cache['hits']} hits, {cache['misses']} misses, "
        f"{cache['evictions']} evictions, {cache['expirations']} expired"
    )
    admission = reply.get("admission")
    if admission:
        print(
            f"admission: queue {admission['queue_depth']}/"
            f"{admission['queue_high']}"
            f"{' (shedding)' if admission['shedding'] else ''}, "
            f"{admission['shed']} shed, connections "
            f"{admission['connections']}/{admission['max_connections']}, "
            f"{admission['connections_refused']} refused"
        )
    journal = reply.get("journal")
    if journal and journal.get("enabled"):
        print(
            f"journal: {journal['open']} open, {journal['begun']} begun, "
            f"{journal['recovered']} recovered at start"
        )
    if reply.get("cache_loaded"):
        print(f"cache index restored at start: {reply['cache_loaded']} entries")
    return 0


def _print_fleet_status(reply: dict) -> None:
    """Human rendering of a router's aggregated fleet status."""
    fleet = reply.get("fleet", {})
    ring = fleet.get("ring", {})
    shared = fleet.get("shared", {})
    requests = reply.get("requests", {})
    router = reply.get("router", {})
    print(
        f"router pid {reply['pid']}, up {reply['uptime_s']:.1f}s, "
        f"{fleet.get('healthy', 0)}/{fleet.get('shards', 0)} shards "
        f"healthy, ring v{ring.get('version', 0)} "
        f"({ring.get('replicas', 0)} replicas/shard)"
        f"{', draining' if reply.get('draining') else ''}"
    )
    print(
        f"requests: {requests.get('total', 0)} total -- "
        f"{requests.get('hit', 0)} hit, {requests.get('warm', 0)} warm, "
        f"{requests.get('miss', 0)} miss, "
        f"{requests.get('errors', 0)} errors; router forwarded "
        f"{router.get('forwarded', 0)}, {router.get('failovers', 0)} "
        f"failovers, {router.get('unavailable', 0)} unavailable"
    )
    print(
        f"shared index: {shared.get('hits', 0)} hits, "
        f"{shared.get('stores', 0)} stores, "
        f"{requests.get('shared_hit', 0)} served, "
        f"{requests.get('shared_warm', 0)} cross-shard warm starts"
    )
    for row in fleet.get("per_shard", []):
        health = "healthy" if row.get("healthy") else "DOWN"
        counts = row.get("requests", {})
        line = (
            f"  {row['id']} [{health}]"
        )
        if row.get("pid") is not None:
            line += (
                f" pid {row['pid']} up {row['uptime_s']:.1f}s:"
                f" {counts.get('total', 0)} requests,"
                f" {counts.get('hit', 0)} hit"
                f" ({counts.get('shared_hit', 0)} shared),"
                f" {counts.get('warm', 0)} warm"
                f" ({counts.get('shared_warm', 0)} shared),"
                f" {counts.get('miss', 0)} miss,"
                f" {row.get('in_flight', 0)} in flight"
            )
        else:
            line += f" unreachable at {row.get('socket')}"
        print(line)


def cmd_service_shutdown(args) -> int:
    from repro.service import ServiceError

    client = _service_client(args)
    if client is None:
        return 2
    try:
        with client:
            reply = client.shutdown()
    except ServiceError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if reply.get("role") == "router":
        print("fleet router drained; shard daemons drain behind it")
    else:
        print(
            f"daemon drained; {reply['persisted_entries']} cache entries "
            "persisted"
        )
    return 0


# --------------------------------------------------------------------- #
# Argument parsing.                                                     #
# --------------------------------------------------------------------- #

def _add_analysis_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument(
        "--context",
        choices=["insensitive", "sign", "full"],
        default="insensitive",
        help="context policy for the interprocedural analysis",
    )
    parser.add_argument(
        "--solver",
        choices=["combined", "twophase"],
        default="combined",
        help="combined operator (paper) or classical two-phase baseline "
        "(shorthand; --op subsumes this)",
    )
    parser.add_argument(
        "--op",
        default=None,
        metavar="SPEC",
        help="combine-strategy spec driving the solve, e.g. 'warrow', "
        "'warrow:delay=2', 'widen', 'wpoint', 'twophase' "
        "(see `repro strategies`; default: the paper's combined operator)",
    )
    parser.add_argument(
        "--local-solver",
        default="slr+",
        help=(
            "registry name of the side-effecting local solver driving the "
            "analysis (see `repro solvers`)"
        ),
    )
    parser.add_argument(
        "--max-evals",
        type=int,
        default=10_000_000,
        help="evaluation budget (divergence guard)",
    )
    parser.add_argument(
        "--domain",
        choices=["interval", "interval-congruence", "sign", "congruence"],
        default="interval",
        help="numeric value domain",
    )
    parser.add_argument(
        "--thresholds",
        action="store_true",
        help="collect widening thresholds from the program's constants",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'How to Combine Widening and Narrowing for "
            "Non-monotonic Systems of Equations' (PLDI 2013)."
        ),
        epilog=(
            "exit codes:\n"
            "  0  success (for `repro check`: no findings)\n"
            "  1  verification incomplete (assertions with unknown verdict);\n"
            "     for `repro check`: diagnostics reported\n"
            "  2  input error (missing file, parse/semantic/runtime error,\n"
            "     violated assertion, unknown solver/strategy/rule)\n"
            "  3  solver divergence (evaluation budget or watchdog tripped)\n"
            "  4  internal fault (unexpected error; please report)\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a mini-C program")
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*", help="integer arguments for main")
    p_run.add_argument("--fuel", type=int, default=10_000_000)
    p_run.set_defaults(func=cmd_run)

    p_analyze = sub.add_parser("analyze", help="interval analysis report")
    _add_analysis_options(p_analyze)
    p_analyze.add_argument(
        "--points", action="store_true", help="print all program points"
    )
    p_analyze.set_defaults(func=cmd_analyze)

    p_verify = sub.add_parser("verify", help="check assert() statements")
    _add_analysis_options(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_check = sub.add_parser(
        "check",
        help="run the bug-finding checkers over the analysis results "
        "(exit 0 clean, 1 findings, 2 input, 3 divergence, 4 internal)",
    )
    _add_analysis_options(p_check)
    p_check.add_argument(
        "--rules",
        action="append",
        default=None,
        metavar="RULE[,RULE...]",
        help="restrict to these rules (repeatable or comma-separated; "
        "default: all -- div-zero, array-bounds, dead-code, "
        "assert-violated, assert-redundant, uninit-read)",
    )
    check_out = p_check.add_mutually_exclusive_group()
    check_out.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical repro-diagnostics/1 JSON document "
        "(byte-stable; the golden tests compare it exactly)",
    )
    check_out.add_argument(
        "--sarif-lite",
        action="store_true",
        help="emit a minimal SARIF 2.1.0 projection of the diagnostics",
    )
    p_check.set_defaults(func=cmd_check)

    p_solve = sub.add_parser(
        "solve",
        help="analysis run under the supervision layer (watchdogs, "
        "checkpoints, escalation, fallback cascade)",
    )
    _add_analysis_options(p_solve)
    p_solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-attempt wall-clock deadline in seconds",
    )
    p_solve.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="take a resumable snapshot every N evaluations",
    )
    p_solve.add_argument(
        "--checkpoint-file",
        default=None,
        help="persist each snapshot crash-safely to this file",
    )
    p_solve.add_argument(
        "--fallback",
        action="append",
        default=None,
        metavar="SOLVER",
        help="fallback solver cascade, in order (repeatable)",
    )
    p_solve.add_argument(
        "--descent-cap",
        type=int,
        default=1,
        help="narrowing steps an escalated unknown may still take",
    )
    p_solve.add_argument(
        "--no-escalate",
        action="store_true",
        help="skip the escalation rungs; trip straight to the cascade",
    )
    p_solve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the independent post-solution verification gate",
    )
    p_solve.add_argument(
        "--chaos-rate",
        type=float,
        default=0.0,
        help="inject faults with this probability per evaluation",
    )
    p_solve.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the deterministic chaos stream",
    )
    p_solve.add_argument(
        "--chaos-kinds",
        default="raise",
        help="comma-separated fault kinds: raise, delay, perturb",
    )
    p_solve.add_argument(
        "--chaos-fail-at",
        type=int,
        default=None,
        metavar="K",
        help="schedule a raise fault on exactly the K-th evaluation",
    )
    p_solve.add_argument(
        "--stats",
        action="store_true",
        help="print solver statistics (evaluations, widen/narrow updates, "
        "direction switches)",
    )
    p_solve.set_defaults(func=cmd_solve)

    p_incr = sub.add_parser(
        "incr",
        help="incremental re-analysis: solve, snapshot, diff, warm re-solve",
    )
    _add_analysis_options(p_incr)
    p_incr.add_argument(
        "edited", help="the edited version of the mini-C source file"
    )
    p_incr.add_argument(
        "--state-file",
        default=None,
        help="persist the solver snapshot as JSON and warm-start from the "
        "reloaded copy",
    )
    p_incr.add_argument(
        "--closure",
        choices=["transitive", "direct"],
        default="transitive",
        help="destabilize the full influence closure of the dirty unknowns "
        "or only the dirty unknowns themselves",
    )
    p_incr.add_argument(
        "--reset",
        choices=["none", "destabilized"],
        default="none",
        help="resume destabilized unknowns from their stale values (none, "
        "fewest re-evaluations) or their initial values (destabilized, "
        "from-scratch precision)",
    )
    p_incr.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the from-scratch comparison run",
    )
    p_incr.add_argument(
        "--points",
        action="store_true",
        help="list program points where the warm solve is more precise",
    )
    p_incr.set_defaults(func=cmd_incr)

    p_dump = sub.add_parser("dump-cfg", help="print the control-flow graphs")
    p_dump.add_argument("file")
    p_dump.set_defaults(func=cmd_dump_cfg)

    p_solvers = sub.add_parser(
        "solvers", help="list the registered solvers and their capabilities"
    )
    p_solvers.add_argument(
        "--json",
        action="store_true",
        help="machine-readable capability listing instead of the table",
    )
    p_solvers.set_defaults(func=cmd_solvers)

    p_strategies = sub.add_parser(
        "strategies",
        help="list the registered combine strategies and their specs",
    )
    p_strategies.add_argument(
        "--json",
        action="store_true",
        help="machine-readable strategy listing instead of the table",
    )
    p_strategies.set_defaults(func=cmd_strategies)

    p_fig7 = sub.add_parser("fig7", help="regenerate Figure 7")
    p_fig7.add_argument("names", nargs="*", help="benchmark subset")
    p_fig7.set_defaults(func=cmd_fig7)

    p_table1 = sub.add_parser("table1", help="regenerate Table 1")
    p_table1.add_argument("names", nargs="*", help="program subset")
    p_table1.set_defaults(func=cmd_table1)

    p_bench = sub.add_parser(
        "bench",
        help="solve the benchmark corpus and gate against a baseline",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="the CI subset (smallest programs per family)",
    )
    p_bench.add_argument(
        "--families",
        action="append",
        metavar="FAMILY",
        help="restrict to a workload family (repeatable): "
        "examples, buggy, wcet, fig7, table1",
    )
    p_bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker process count (default: CPU count, capped at 8)",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="rounds for min-of-N timing (default: 2 quick, 3 full)",
    )
    p_bench.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock deadline (watchdog-enforced)",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="result document path (default: BENCH_<rev>.json)",
    )
    p_bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline document; exit 1 on regression "
        "(with --matrix: gate the precision point counts instead)",
    )
    p_bench.add_argument(
        "--eval-threshold",
        type=float,
        default=15.0,
        metavar="PCT",
        help="allowed RHS-evaluation growth over baseline (default 15%%)",
    )
    p_bench.add_argument(
        "--time-threshold",
        type=float,
        default=30.0,
        metavar="PCT",
        help="allowed total wall-time growth over baseline (default 30%%)",
    )
    p_bench.add_argument(
        "--update-baseline",
        default=None,
        metavar="PATH",
        help="also write the document to PATH (baseline refresh)",
    )
    p_bench.add_argument(
        "--list",
        action="store_true",
        help="print the selected job ids and exit",
    )
    p_bench.add_argument(
        "--matrix",
        action="store_true",
        help="precision x cost strategy matrix: solve every corpus "
        "program under every --strategies spec and compare each "
        "solution point-by-point against --baseline-strategy",
    )
    p_bench.add_argument(
        "--strategies",
        action="append",
        default=None,
        metavar="SPEC",
        help="matrix strategy column (repeatable; default: widen, "
        "warrow, twophase -- the Fig. 7 comparison)",
    )
    p_bench.add_argument(
        "--baseline-strategy",
        default="widen",
        metavar="SPEC",
        help="strategy the matrix precision counts compare against "
        "(default: widen, the paper's baseline)",
    )
    p_bench.set_defaults(func=cmd_bench)

    def _add_connection(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--socket",
            default=None,
            metavar="PATH",
            help="daemon UNIX socket path (wins over --host/--port)",
        )
        p.add_argument(
            "--host", default="127.0.0.1", help="daemon TCP host"
        )
        p.add_argument(
            "--port", type=int, default=None, help="daemon TCP port"
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent analysis daemon (content-addressed "
        "result cache, warm-start scheduling, graceful drain)",
    )
    _add_connection(p_serve)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="maximum concurrently executing solve requests",
    )
    p_serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="LRU bound of the result cache",
    )
    p_serve.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="result time-to-live (default: no expiry)",
    )
    p_serve.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="persist the cache index here on drain; restore it on start",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline (requests may override)",
    )
    p_serve.add_argument(
        "--warm-ratio",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="warm-start only when at most this fraction of nodes changed",
    )
    p_serve.add_argument(
        "--log-file",
        default=None,
        metavar="PATH",
        help="append one JSON record per request to this file",
    )
    p_serve.add_argument(
        "--queue-high",
        type=int,
        default=32,
        metavar="N",
        help="shed new work once this many requests are pending",
    )
    p_serve.add_argument(
        "--queue-low",
        type=int,
        default=None,
        metavar="N",
        help="stop shedding once pending drops to this (default: half "
        "of --queue-high)",
    )
    p_serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        metavar="N",
        help="refuse connections beyond this many concurrent clients",
    )
    p_serve.add_argument(
        "--shed-retry-ms",
        type=int,
        default=250,
        metavar="MS",
        help="base retry-after hint attached to overloaded replies",
    )
    p_serve.add_argument(
        "--read-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-connection read deadline (default: wait forever)",
    )
    p_serve.add_argument(
        "--journal-file",
        default=None,
        metavar="PATH",
        help="crash-safe in-flight journal; interrupted requests are "
        "replayed on restart",
    )
    p_serve.add_argument(
        "--supervise",
        action="store_true",
        help="run the daemon as a supervised child process, respawning "
        "it after crashes with bounded restart backoff",
    )
    p_serve.add_argument(
        "--max-restarts",
        type=int,
        default=5,
        metavar="N",
        help="consecutive crashes tolerated under --supervise (and per "
        "shard under --shards)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run a sharded fleet: N supervised daemon processes behind "
        "a consistent-hash router on --socket (0: one plain daemon)",
    )
    p_serve.add_argument(
        "--shared-dir",
        default=None,
        metavar="DIR",
        help="fleet shared result + warm-donor index directory (single "
        "daemon: publish/consume it too; --shards default: "
        "<run-dir>/shared)",
    )
    p_serve.add_argument(
        "--fleet-dir",
        default=None,
        metavar="DIR",
        help="fleet runtime directory for shard sockets, journals and "
        "logs (default: <socket>.fleet)",
    )
    p_serve.add_argument(
        "--health-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="router health-probe cadence against the shards",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a program to a running analysis daemon"
    )
    p_submit.add_argument("file", help="mini-C source file")
    _add_connection(p_submit)
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="client I/O timeout in seconds",
    )
    p_submit.add_argument(
        "--solver",
        default="slr+",
        help="registry name of the side-effecting local solver",
    )
    p_submit.add_argument(
        "--domain",
        choices=["interval", "interval-congruence", "sign", "congruence"],
        default="interval",
        help="numeric value domain",
    )
    p_submit.add_argument(
        "--context",
        choices=["insensitive", "sign", "full"],
        default="insensitive",
        help="context policy for the interprocedural analysis",
    )
    p_submit.add_argument(
        "--op",
        default="warrow",
        metavar="SPEC",
        help="combine-strategy spec for the update operator, e.g. "
        "'warrow', 'warrow:delay=2', 'widen' (see `repro strategies`; "
        "the daemon only accepts solve-ready combine strategies)",
    )
    p_submit.add_argument(
        "--widen-delay",
        type=int,
        default=1,
        help="delayed-widening threshold of the update operator",
    )
    p_submit.add_argument(
        "--thresholds",
        action="store_true",
        help="collect widening thresholds from the program's constants",
    )
    p_submit.add_argument(
        "--max-evals",
        type=int,
        default=5_000_000,
        help="evaluation budget (divergence guard)",
    )
    p_submit.add_argument(
        "--verify",
        action="store_true",
        help="also check assert() statements",
    )
    p_submit.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock deadline",
    )
    p_submit.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        metavar="MS",
        help="per-request wall-clock deadline in milliseconds "
        "(alternative to --deadline)",
    )
    p_submit.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="client attempts for transient failures (connect refused, "
        "reset, overloaded; default: 3)",
    )
    p_submit.add_argument(
        "--fresh",
        action="store_true",
        help="bypass the result cache and force a fresh solve",
    )
    p_submit.add_argument(
        "--label",
        default=None,
        help="request label for logs (default: the file name)",
    )
    p_submit.add_argument(
        "--json",
        action="store_true",
        help="print the daemon's full JSON reply",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="query a running daemon's counters and cache stats"
    )
    _add_connection(p_status)
    p_status.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="client I/O timeout in seconds",
    )
    p_status.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="client attempts for transient failures (default: 3)",
    )
    p_status.add_argument(
        "--json",
        action="store_true",
        help="print the daemon's full JSON reply",
    )
    p_status.set_defaults(func=cmd_service_status)

    p_shutdown = sub.add_parser(
        "shutdown",
        help="gracefully drain and stop a running daemon",
    )
    _add_connection(p_shutdown)
    p_shutdown.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="client I/O timeout in seconds (drain can take a while)",
    )
    p_shutdown.set_defaults(func=cmd_service_shutdown)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    The exit code classifies the failure (also in ``repro --help``):
    ``2`` for input errors (missing files, malformed programs, unknown
    solvers, violated assertions), ``3`` for solver divergence (budget
    or watchdog), ``4`` for internal faults; ``1`` is reserved for
    incomplete verification.
    """
    from repro.checkers import UnknownRuleError
    from repro.lang import LexError, ParseError, SemanticError
    from repro.lang.interp import ExecutionError
    from repro.solvers import DivergenceError
    from repro.solvers.registry import (
        SolverCapabilityError,
        UnknownSolverError,
    )
    from repro.strategies import SpecError, UnknownStrategyError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as err:
        print(f"error: {err.filename}: no such file", file=sys.stderr)
        return 2
    except (LexError, ParseError, SemanticError) as err:
        print(f"error: {args.file}: {err}", file=sys.stderr)
        return 2
    except ExecutionError as err:
        print(f"runtime error: {err}", file=sys.stderr)
        return 2
    except DivergenceError as err:
        print(f"error: solver diverged: {err}", file=sys.stderr)
        return 3
    except (
        UnknownSolverError,
        SolverCapabilityError,
        UnknownStrategyError,
        SpecError,
        UnknownRuleError,
    ) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except Exception as err:  # pragma: no cover - defensive catch-all
        print(f"internal fault: {err!r}", file=sys.stderr)
        return 4


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
