"""The sign domain: a small finite lattice used for context projections.

The elements form the usual diamond-with-combinations Hasse diagram over the
atoms ``NEG`` (< 0), ``ZERO`` (= 0), ``POS`` (> 0); compound elements are
sets of atoms.  We represent every element as a frozenset of atom names with
``frozenset()`` as bottom and the full set as top.

The paper's context-sensitive analysis keys procedure contexts on the
*non-interval* parts of local states; our reproduction projects interval
entry states to signs to obtain a finite yet value-dependent context (see
:mod:`repro.analysis.inter`).
"""

from __future__ import annotations

from repro.lattices.base import FiniteLattice

_NEG = "-"
_ZERO = "0"
_POS = "+"
_ATOMS = frozenset({_NEG, _ZERO, _POS})


class Sign(FiniteLattice):
    """Powerset-of-atoms sign lattice ``{ {}, {-}, {0}, {+}, ..., {-,0,+} }``."""

    name = "sign"

    BOT = frozenset()
    NEG = frozenset({_NEG})
    ZERO = frozenset({_ZERO})
    POS = frozenset({_POS})
    NON_POS = frozenset({_NEG, _ZERO})
    NON_NEG = frozenset({_ZERO, _POS})
    NON_ZERO = frozenset({_NEG, _POS})
    TOP = _ATOMS

    @property
    def bottom(self):
        return self.BOT

    @property
    def top(self):
        return self.TOP

    def leq(self, a, b) -> bool:
        return a <= b

    def join(self, a, b):
        return a | b

    def meet(self, a, b):
        return a & b

    def elements(self):
        out = set()
        for mask in range(8):
            e = frozenset(
                atom
                for bit, atom in enumerate((_NEG, _ZERO, _POS))
                if mask >> bit & 1
            )
            out.add(e)
        return frozenset(out)

    # ----------------------------------------------------------------- #
    # Abstractions.                                                     #
    # ----------------------------------------------------------------- #

    def from_const(self, n: int):
        """Abstract a concrete integer to its sign."""
        if n < 0:
            return self.NEG
        if n == 0:
            return self.ZERO
        return self.POS

    def from_interval(self, iv) -> frozenset:
        """Abstract an interval element (of :class:`IntervalLattice`)."""
        if iv is None:
            return self.BOT
        atoms = set()
        if iv.lo < 0:
            atoms.add(_NEG)
        if iv.lo <= 0 <= iv.hi:
            atoms.add(_ZERO)
        if iv.hi > 0:
            atoms.add(_POS)
        return frozenset(atoms)

    def format(self, a) -> str:
        if not a:
            return "_|_"
        return "{" + ",".join(sorted(a)) + "}"
