"""Complete lattices with widening and narrowing operators.

This package provides the value domains over which equation systems are
solved.  Every domain is an instance of :class:`repro.lattices.base.Lattice`:
the lattice is an *object* describing the ordering, and lattice *elements* are
plain (hashable, immutable) Python values.  This mirrors the design of
analyzer frameworks such as Goblint, where the domain is a module and values
are first-class data.

The domains shipped here cover everything the paper needs:

* :mod:`~repro.lattices.natinf` -- the chain ``N `` | `` {oo}`` used by the
  paper's Examples 1--4;
* :mod:`~repro.lattices.interval` -- integer intervals with the standard
  widening and narrowing, used by the experimental evaluation;
* :mod:`~repro.lattices.flat`, :mod:`~repro.lattices.sign`,
  :mod:`~repro.lattices.parity`, :mod:`~repro.lattices.boollat`,
  :mod:`~repro.lattices.powerset` -- finite-height building blocks;
* :mod:`~repro.lattices.product`, :mod:`~repro.lattices.maplat`,
  :mod:`~repro.lattices.lifted` -- combinators;
* :mod:`~repro.lattices.widening` -- widening/narrowing *combinators*
  (delayed widening, threshold widening, k-bounded degrading narrowing).
"""

from repro.lattices.base import Lattice, LatticeError
from repro.lattices.boollat import BoolLattice
from repro.lattices.congruence import CongruenceLattice
from repro.lattices.envlat import ArrayEnv, ArrayEnvLattice, EnvSchema
from repro.lattices.flat import Flat, FlatTop, FlatBot
from repro.lattices.interval import Interval, IntervalLattice, NEG_INF, POS_INF
from repro.lattices.lifted import Lifted, LiftedBottom
from repro.lattices.maplat import MapLattice
from repro.lattices.natinf import NatInf, INF
from repro.lattices.parity import Parity
from repro.lattices.powerset import PowersetLattice
from repro.lattices.product import ProductLattice
from repro.lattices.sign import Sign
from repro.lattices.union import TaggedUnionLattice, UNION_BOT, UNION_TOP
from repro.lattices.widening import (
    DelayedWidening,
    ThresholdWidening,
    NarrowToMeet,
)

__all__ = [
    "Lattice",
    "LatticeError",
    "ArrayEnv",
    "ArrayEnvLattice",
    "EnvSchema",
    "BoolLattice",
    "CongruenceLattice",
    "Flat",
    "FlatTop",
    "FlatBot",
    "Interval",
    "IntervalLattice",
    "NEG_INF",
    "POS_INF",
    "Lifted",
    "LiftedBottom",
    "MapLattice",
    "NatInf",
    "INF",
    "Parity",
    "PowersetLattice",
    "ProductLattice",
    "Sign",
    "TaggedUnionLattice",
    "UNION_BOT",
    "UNION_TOP",
    "DelayedWidening",
    "ThresholdWidening",
    "NarrowToMeet",
]
