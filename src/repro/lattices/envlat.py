"""Array-backed abstract environments -- the engine's hot-path map type.

Abstract environments (variable -> value maps over a *fixed*, per-function
key set) dominate the solver hot path: every right-hand-side evaluation
builds several of them, and every commit compares two point-wise.  The
generic :class:`~repro.lattices.maplat.FrozenMap` pays a dict per element
and a hash lookup per key access; this module stores one shared
:class:`EnvSchema` (key -> slot index) per lattice and each element as a
plain value tuple, so

* point-wise ``leq``/``join``/``meet``/``widen``/``narrow``/``equal``
  run as straight tuple zips with no per-key hashing,
* ``bottom``/``top`` are cached singletons, which makes the engine's
  identity fast paths (``a is b``) actually fire,
* elements stay :class:`FrozenMap` instances (``ArrayEnv`` subclasses
  it), so every consumer of the mapping interface -- the incremental
  codecs' ``isinstance`` checks, context policies, formatting -- keeps
  working, and hashes/equality agree with plain ``FrozenMap`` values of
  the same bindings (decoded snapshots interoperate with live values).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.lattices.base import Lattice, LatticeError
from repro.lattices.maplat import FrozenMap, MapLattice


class EnvSchema:
    """The shared key layout of one environment lattice."""

    __slots__ = ("keys", "index")

    def __init__(self, keys: Iterable[Hashable]) -> None:
        self.keys = tuple(dict.fromkeys(keys))
        self.index = {k: i for i, k in enumerate(self.keys)}

    def __len__(self) -> int:
        return len(self.keys)

    def __repr__(self) -> str:
        return f"EnvSchema({list(self.keys)!r})"


class ArrayEnv(FrozenMap):
    """A fixed-schema environment backed by a value tuple.

    Subclasses :class:`FrozenMap` so type checks, equality and hashing
    interoperate with ordinary frozen maps of the same bindings; the
    inherited ``_data`` dict slot is replaced by a property that
    materialises on demand (only non-hot-path consumers touch it).
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: EnvSchema, values: Iterable) -> None:
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_values", tuple(values))
        object.__setattr__(self, "_hash", None)

    @property
    def _data(self) -> dict:
        return dict(zip(self._schema.keys, self._values))

    @property
    def schema(self) -> EnvSchema:
        return self._schema

    @property
    def values_tuple(self) -> tuple:
        """The raw slot values, in schema order."""
        return self._values

    def __getitem__(self, key):
        return self._values[self._schema.index[key]]

    def __iter__(self):
        return iter(self._schema.keys)

    def __len__(self) -> int:
        return len(self._schema.keys)

    def __hash__(self) -> int:
        # Must agree with FrozenMap: hash of the binding set.
        if self._hash is None:
            object.__setattr__(
                self,
                "_hash",
                hash(frozenset(zip(self._schema.keys, self._values))),
            )
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, ArrayEnv):
            if other._schema is self._schema:
                return self._values == other._values
            return self._data == other._data
        return super().__eq__(other)

    def set(self, key, value) -> "ArrayEnv":
        """Return a copy with ``key`` bound to ``value``."""
        values = list(self._values)
        values[self._schema.index[key]] = value
        return ArrayEnv(self._schema, values)

    def set_many(self, updates: Mapping) -> "ArrayEnv":
        """Return a copy with all bindings in ``updates`` applied."""
        values = list(self._values)
        index = self._schema.index
        for key, value in updates.items():
            values[index[key]] = value
        return ArrayEnv(self._schema, values)


class ArrayEnvLattice(MapLattice):
    """Point-wise lattice over :class:`ArrayEnv` elements.

    A drop-in for :class:`MapLattice` (it *is* one, so the incremental
    layer's structural codec lookup keeps matching); all operations also
    accept plain mappings -- e.g. ``FrozenMap`` values decoded from a
    snapshot -- and normalise them through the schema.
    """

    def __init__(self, keys: Iterable[Hashable], value: Lattice) -> None:
        super().__init__(keys, value)
        self._schema = EnvSchema(self._keys)
        n = len(self._schema)
        self._bottom = ArrayEnv(self._schema, [value.bottom] * n)
        self._top = ArrayEnv(self._schema, [value.top] * n)

    @property
    def schema(self) -> EnvSchema:
        return self._schema

    @property
    def bottom(self) -> ArrayEnv:
        return self._bottom

    @property
    def top(self) -> ArrayEnv:
        return self._top

    def make(self, bindings: Mapping) -> ArrayEnv:
        """An element from a key -> value mapping (must cover the schema)."""
        return ArrayEnv(
            self._schema, (bindings[k] for k in self._schema.keys)
        )

    def _vals(self, a) -> tuple:
        if isinstance(a, ArrayEnv) and a._schema is self._schema:
            return a._values
        return tuple(a[k] for k in self._keys)

    def leq(self, a, b) -> bool:
        if a is b:
            return True
        return all(map(self._value.leq, self._vals(a), self._vals(b)))

    def equal(self, a, b) -> bool:
        if a is b:
            return True
        return all(map(self._value.equal, self._vals(a), self._vals(b)))

    def join(self, a, b) -> ArrayEnv:
        if a is b:
            return a if isinstance(a, ArrayEnv) else self.make(a)
        return ArrayEnv(
            self._schema, map(self._value.join, self._vals(a), self._vals(b))
        )

    def meet(self, a, b) -> ArrayEnv:
        if a is b:
            return a if isinstance(a, ArrayEnv) else self.make(a)
        return ArrayEnv(
            self._schema, map(self._value.meet, self._vals(a), self._vals(b))
        )

    def widen(self, a, b) -> ArrayEnv:
        return ArrayEnv(
            self._schema, map(self._value.widen, self._vals(a), self._vals(b))
        )

    def narrow(self, a, b) -> ArrayEnv:
        return ArrayEnv(
            self._schema,
            map(self._value.narrow, self._vals(a), self._vals(b)),
        )

    def validate(self, a) -> None:
        if not isinstance(a, Mapping):
            raise LatticeError(f"{a!r} is not a mapping")
        if set(a) != set(self._keys):
            raise LatticeError(
                f"keys {sorted(map(str, a))} do not match lattice keys"
            )
        for k in self._keys:
            self._value.validate(a[k])
