"""A tagged (disjoint) union of lattices with a shared bottom and top.

Side-effecting constraint systems for interprocedural analysis mix
unknowns of different types: program points carry abstract environments
(one map lattice per function), global variables carry plain values.
Generic solvers, however, operate over a single lattice.  The standard
remedy -- used by Goblint as well -- is a tagged union: every element is a
pair ``(tag, payload)`` and the order only relates elements of the same
tag, with a universal bottom below and a universal top above everything.

Joining elements of *different* proper tags yields the universal top
(never meaningful in a well-formed analysis, but total and law-abiding);
the solvers only ever combine values of the same unknown, hence the same
tag.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.lattices.base import Lattice, LatticeError

#: The universal bottom and top elements.
UNION_BOT: Tuple[str, None] = ("__bot__", None)
UNION_TOP: Tuple[str, None] = ("__top__", None)


class TaggedUnionLattice(Lattice[Tuple[Hashable, Any]]):
    """The disjoint union of the given ``branches``, glued at bottom/top."""

    name = "union"

    def __init__(self, branches: Dict[Hashable, Lattice]) -> None:
        """Create the union of ``branches`` (tag -> lattice)."""
        if not branches:
            raise LatticeError("union of zero lattices is not supported")
        self._branches = dict(branches)
        self.name = "union(" + ",".join(str(t) for t in branches) + ")"

    @property
    def branches(self) -> Dict[Hashable, Lattice]:
        """The component lattices by tag."""
        return self._branches

    def branch(self, tag: Hashable) -> Lattice:
        """The lattice of one tag; raises on foreign tags."""
        try:
            return self._branches[tag]
        except KeyError:
            raise LatticeError(f"unknown union tag {tag!r}") from None

    def inject(self, tag: Hashable, payload: Any) -> tuple:
        """Wrap ``payload`` as an element of branch ``tag``."""
        self.branch(tag)
        return (tag, payload)

    def payload(self, element: tuple) -> Any:
        """Unwrap a proper element (raises on universal bottom/top)."""
        tag, value = element
        if element in (UNION_BOT, UNION_TOP):
            raise LatticeError(f"{element!r} carries no payload")
        self.branch(tag)
        return value

    # ------------------------------------------------------------------ #

    @property
    def bottom(self) -> tuple:
        return UNION_BOT

    @property
    def top(self) -> tuple:
        return UNION_TOP

    def leq(self, a: tuple, b: tuple) -> bool:
        if a == UNION_BOT or b == UNION_TOP:
            return True
        if b == UNION_BOT or a == UNION_TOP:
            return False
        if a[0] != b[0]:
            return False
        return self.branch(a[0]).leq(a[1], b[1])

    def join(self, a: tuple, b: tuple) -> tuple:
        if a == UNION_BOT:
            return b
        if b == UNION_BOT:
            return a
        if a == UNION_TOP or b == UNION_TOP:
            return UNION_TOP
        if a[0] != b[0]:
            return UNION_TOP
        return (a[0], self.branch(a[0]).join(a[1], b[1]))

    def meet(self, a: tuple, b: tuple) -> tuple:
        if a == UNION_TOP:
            return b
        if b == UNION_TOP:
            return a
        if a == UNION_BOT or b == UNION_BOT:
            return UNION_BOT
        if a[0] != b[0]:
            return UNION_BOT
        return (a[0], self.branch(a[0]).meet(a[1], b[1]))

    def widen(self, a: tuple, b: tuple) -> tuple:
        if a == UNION_BOT:
            return b
        if b == UNION_BOT:
            return a
        if a == UNION_TOP or b == UNION_TOP:
            return UNION_TOP
        if a[0] != b[0]:
            return UNION_TOP
        return (a[0], self.branch(a[0]).widen(a[1], b[1]))

    def narrow(self, a: tuple, b: tuple) -> tuple:
        if a == UNION_TOP:
            return b
        if a == UNION_BOT or b == UNION_BOT:
            return b
        if a[0] != b[0]:
            return b
        return (a[0], self.branch(a[0]).narrow(a[1], b[1]))

    def equal(self, a: tuple, b: tuple) -> bool:
        if a in (UNION_BOT, UNION_TOP) or b in (UNION_BOT, UNION_TOP):
            return a == b
        if a[0] != b[0]:
            return False
        return self.branch(a[0]).equal(a[1], b[1])

    def validate(self, a: tuple) -> None:
        if a in (UNION_BOT, UNION_TOP):
            return
        if not isinstance(a, tuple) or len(a) != 2:
            raise LatticeError(f"{a!r} is not a tagged element")
        self.branch(a[0]).validate(a[1])

    def format(self, a: tuple) -> str:
        if a == UNION_BOT:
            return "_|_"
        if a == UNION_TOP:
            return "T"
        return f"{a[0]}:{self.branch(a[0]).format(a[1])}"
