"""Cartesian products of lattices, ordered component-wise.

Elements are tuples whose ``i``-th component is an element of the ``i``-th
factor.  Widening and narrowing are applied component-wise, which preserves
the respective operator contracts.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.lattices.base import Lattice, LatticeError


class ProductLattice(Lattice[Tuple]):
    """The component-wise product of a fixed sequence of lattices."""

    name = "product"

    def __init__(self, factors: Sequence[Lattice]) -> None:
        """Create the product of the given ``factors`` (at least one)."""
        if not factors:
            raise LatticeError("product of zero lattices is not supported")
        self._factors = tuple(factors)
        self.name = "x".join(f.name for f in self._factors)

    @property
    def factors(self) -> tuple[Lattice, ...]:
        """The component lattices."""
        return self._factors

    @property
    def bottom(self) -> tuple:
        return tuple(f.bottom for f in self._factors)

    @property
    def top(self) -> tuple:
        return tuple(f.top for f in self._factors)

    def leq(self, a: tuple, b: tuple) -> bool:
        return all(f.leq(x, y) for f, x, y in zip(self._factors, a, b))

    def join(self, a: tuple, b: tuple) -> tuple:
        return tuple(f.join(x, y) for f, x, y in zip(self._factors, a, b))

    def meet(self, a: tuple, b: tuple) -> tuple:
        return tuple(f.meet(x, y) for f, x, y in zip(self._factors, a, b))

    def widen(self, a: tuple, b: tuple) -> tuple:
        return tuple(f.widen(x, y) for f, x, y in zip(self._factors, a, b))

    def narrow(self, a: tuple, b: tuple) -> tuple:
        return tuple(f.narrow(x, y) for f, x, y in zip(self._factors, a, b))

    def equal(self, a: tuple, b: tuple) -> bool:
        return all(f.equal(x, y) for f, x, y in zip(self._factors, a, b))

    def validate(self, a: tuple) -> None:
        if not isinstance(a, tuple) or len(a) != len(self._factors):
            raise LatticeError(f"{a!r} is not a {len(self._factors)}-tuple")
        for f, x in zip(self._factors, a):
            f.validate(x)

    def format(self, a: tuple) -> str:
        parts = (f.format(x) for f, x in zip(self._factors, a))
        return "(" + ", ".join(parts) + ")"
