"""The abstract interface of complete lattices with widening and narrowing.

A *lattice* here is a description object: it knows how to compare, join and
meet its elements, and it carries an (optional) widening operator ``widen``
and narrowing operator ``narrow``.  Elements themselves are ordinary
immutable Python values so that they can be stored in solver mappings, used
as dictionary keys (e.g. as calling contexts), and compared with ``==``.

Contracts (checked by the test-suite, including property-based tests):

* ``leq`` is a partial order with least element ``bottom`` and greatest
  element ``top``;
* ``join`` is the least upper bound, ``meet`` the greatest lower bound;
* widening: ``join(a, b) <= widen(a, b)`` for all ``a, b`` and for every
  sequence ``d0, d1, ...`` the widened sequence ``w0 = d0``,
  ``w_{i+1} = widen(w_i, d_{i+1})`` is eventually stable;
* narrowing: ``b <= a`` implies ``b <= narrow(a, b) <= a`` and for every
  descending sequence the narrowed sequence is eventually stable.

By default ``widen`` falls back to ``join`` and ``narrow`` to ``b`` (the most
precise narrowing).  These defaults are correct *and terminating* exactly for
lattices without infinite ascending (resp. descending) chains; domains with
infinite chains override them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, TypeVar

V = TypeVar("V")


class LatticeError(Exception):
    """Raised when a lattice operation is applied to invalid elements."""


class Lattice(ABC, Generic[V]):
    """A complete lattice together with widening/narrowing operators.

    Subclasses must implement :meth:`leq`, :meth:`join`, :meth:`meet` and the
    properties :attr:`bottom` and :attr:`top`.  The remaining operations have
    sensible defaults expressed in terms of those.
    """

    #: Human-readable domain name, used in reports and error messages.
    name: str = "lattice"

    # ------------------------------------------------------------------ #
    # Core order-theoretic structure.                                    #
    # ------------------------------------------------------------------ #

    @property
    @abstractmethod
    def bottom(self) -> V:
        """The least element of the lattice."""

    @property
    @abstractmethod
    def top(self) -> V:
        """The greatest element of the lattice."""

    @abstractmethod
    def leq(self, a: V, b: V) -> bool:
        """Return whether ``a`` is less than or equal to ``b``."""

    @abstractmethod
    def join(self, a: V, b: V) -> V:
        """Return the least upper bound of ``a`` and ``b``."""

    @abstractmethod
    def meet(self, a: V, b: V) -> V:
        """Return the greatest lower bound of ``a`` and ``b``."""

    # ------------------------------------------------------------------ #
    # Derived operations.                                                #
    # ------------------------------------------------------------------ #

    def equal(self, a: V, b: V) -> bool:
        """Return whether ``a`` and ``b`` denote the same lattice element.

        The default compares with ``==`` which is adequate for canonical
        element representations.  Domains with non-canonical representations
        must override this.
        """
        return a == b

    def is_bottom(self, a: V) -> bool:
        """Return whether ``a`` is the least element."""
        return self.equal(a, self.bottom)

    def is_top(self, a: V) -> bool:
        """Return whether ``a`` is the greatest element."""
        return self.equal(a, self.top)

    def join_all(self, values: Iterable[V]) -> V:
        """Return the least upper bound of all ``values`` (bottom if empty)."""
        acc = self.bottom
        for v in values:
            acc = self.join(acc, v)
        return acc

    def meet_all(self, values: Iterable[V]) -> V:
        """Return the greatest lower bound of all ``values`` (top if empty)."""
        acc = self.top
        for v in values:
            acc = self.meet(acc, v)
        return acc

    # ------------------------------------------------------------------ #
    # Widening and narrowing.                                            #
    # ------------------------------------------------------------------ #

    def widen(self, a: V, b: V) -> V:
        """Widening operator.

        Must satisfy ``join(a, b) <= widen(a, b)`` and stabilise every
        ascending chain.  The default is ``join`` which is only a widening
        for lattices of bounded height.
        """
        return self.join(a, b)

    def narrow(self, a: V, b: V) -> V:
        """Narrowing operator, assuming ``b <= a``.

        Must satisfy ``b <= narrow(a, b) <= a`` and stabilise every
        descending chain.  The default returns ``b`` (the most precise
        choice), which is only a narrowing for lattices without infinite
        descending chains.
        """
        return b

    # ------------------------------------------------------------------ #
    # Validation and display hooks (used heavily by the test-suite).     #
    # ------------------------------------------------------------------ #

    def validate(self, a: V) -> None:
        """Raise :class:`LatticeError` if ``a`` is not a valid element.

        The default accepts everything; finite domains override this to
        reject foreign values early.
        """

    def format(self, a: V) -> str:
        """Render element ``a`` for human consumption."""
        return repr(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FiniteLattice(Lattice[V]):
    """Convenience base class for lattices with finitely many elements.

    Subclasses provide :meth:`elements`; the default :meth:`validate`
    checks membership.  ``widen``/``narrow`` defaults are already correct
    for finite lattices.
    """

    @abstractmethod
    def elements(self) -> frozenset[Any]:
        """Return the (finite) carrier set of the lattice."""

    def validate(self, a: V) -> None:
        if a not in self.elements():
            raise LatticeError(f"{a!r} is not an element of {self.name}")

    def height(self) -> int:
        """Length of the longest strictly ascending chain, computed by search.

        Only intended for small lattices (tests, complexity-bound checks).
        """
        elems = list(self.elements())
        best: dict[Any, int] = {}

        def chain_from(x: Any) -> int:
            if x in best:
                return best[x]
            # Longest chain strictly above x.
            longest = 0
            for y in elems:
                if x != y and self.leq(x, y):
                    longest = max(longest, chain_from(y))
            best[x] = 1 + longest
            return best[x]

        return max(chain_from(x) for x in elems)
