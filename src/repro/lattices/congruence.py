"""The congruence (linear residue) domain: ``x = r (mod m)``.

Elements are ``None`` (bottom) or pairs ``(m, r)``:

* ``m == 0``: the constant ``r``;
* ``m >= 1``: all integers congruent to ``r`` modulo ``m`` (canonically
  ``0 <= r < m``); in particular top is ``(1, 0)``.

Ascending chains are finite (moduli shrink along divisibility), so plain
join is a widening.  Descending chains are infinite (meets grow moduli
without bound), so -- like the interval domain -- the narrowing only
improves the top element.

The domain is most useful in (reduced) product with intervals: stride
information sharpens bounds and vice versa (see
:class:`repro.analysis.values.ProductNumericDomain`).
"""

from __future__ import annotations

from math import gcd
from typing import Optional, Tuple

from repro.lattices.base import Lattice, LatticeError

#: Lattice elements: ``None`` (bottom) or ``(modulus, residue)``.
CongruenceValue = Optional[Tuple[int, int]]

#: The top element: everything is congruent to 0 modulo 1.
TOP: Tuple[int, int] = (1, 0)


def congruence(m: int, r: int) -> Tuple[int, int]:
    """Construct the canonical element for ``x = r (mod m)``."""
    if m < 0:
        raise LatticeError(f"negative modulus {m}")
    if m == 0:
        return (0, r)
    return (m, r % m)


def const(n: int) -> Tuple[int, int]:
    """The constant ``n``."""
    return (0, n)


class CongruenceLattice(Lattice[CongruenceValue]):
    """The lattice of congruences ``x = r (mod m)`` (plus constants)."""

    name = "congruence"

    @property
    def bottom(self) -> CongruenceValue:
        return None

    @property
    def top(self) -> CongruenceValue:
        return TOP

    def leq(self, a: CongruenceValue, b: CongruenceValue) -> bool:
        if a is None:
            return True
        if b is None:
            return False
        ma, ra = a
        mb, rb = b
        if mb == 0:
            return ma == 0 and ra == rb
        return ma % mb == 0 and (ra - rb) % mb == 0

    def join(self, a: CongruenceValue, b: CongruenceValue) -> CongruenceValue:
        if a is None:
            return b
        if b is None:
            return a
        ma, ra = a
        mb, rb = b
        m = gcd(gcd(ma, mb), abs(ra - rb))
        if m == 0:
            return a  # equal constants
        return congruence(m, ra)

    def meet(self, a: CongruenceValue, b: CongruenceValue) -> CongruenceValue:
        if a is None or b is None:
            return None
        ma, ra = a
        mb, rb = b
        if ma == 0 and mb == 0:
            return a if ra == rb else None
        if ma == 0:
            return a if self.leq(a, b) else None
        if mb == 0:
            return b if self.leq(b, a) else None
        g = gcd(ma, mb)
        if (ra - rb) % g != 0:
            return None
        # Chinese remaindering: combine the two congruences.
        lcm = ma // g * mb
        _, x, _ = _egcd(ma, mb)
        diff = (rb - ra) // g
        r = (ra + ma * (x * diff % (mb // g))) % lcm
        return congruence(lcm, r)

    # Ascending chains are finite, so join doubles as the widening.

    def narrow(self, a: CongruenceValue, b: CongruenceValue) -> CongruenceValue:
        """Refine only the top element (descending chains are infinite)."""
        if a == TOP or a is None:
            return b
        return a

    def validate(self, a: CongruenceValue) -> None:
        if a is None:
            return
        if not (isinstance(a, tuple) and len(a) == 2):
            raise LatticeError(f"{a!r} is not a congruence")
        m, r = a
        if not isinstance(m, int) or not isinstance(r, int):
            raise LatticeError(f"{a!r} has non-integer components")
        if m < 0:
            raise LatticeError(f"negative modulus in {a!r}")
        if m > 0 and not 0 <= r < m:
            raise LatticeError(f"non-canonical residue in {a!r}")

    def format(self, a: CongruenceValue) -> str:
        if a is None:
            return "_|_"
        m, r = a
        if m == 0:
            return str(r)
        if m == 1:
            return "Z"
        return f"{r}(mod {m})"

    # ----------------------------------------------------------------- #
    # Abstract arithmetic.                                              #
    # ----------------------------------------------------------------- #

    def from_const(self, n: int) -> CongruenceValue:
        return const(n)

    def contains(self, a: CongruenceValue, n: int) -> bool:
        """Whether the concrete integer ``n`` is represented by ``a``."""
        if a is None:
            return False
        m, r = a
        if m == 0:
            return n == r
        return n % m == r

    def add(self, a: CongruenceValue, b: CongruenceValue) -> CongruenceValue:
        if a is None or b is None:
            return None
        ma, ra = a
        mb, rb = b
        return congruence(gcd(ma, mb), ra + rb)

    def sub(self, a: CongruenceValue, b: CongruenceValue) -> CongruenceValue:
        if a is None or b is None:
            return None
        ma, ra = a
        mb, rb = b
        return congruence(gcd(ma, mb), ra - rb)

    def neg(self, a: CongruenceValue) -> CongruenceValue:
        if a is None:
            return None
        m, r = a
        return congruence(m, -r)

    def mul(self, a: CongruenceValue, b: CongruenceValue) -> CongruenceValue:
        if a is None or b is None:
            return None
        ma, ra = a
        mb, rb = b
        # (ma*k + ra)(mb*l + rb) = ma*mb*kl + ma*rb*k + mb*ra*l + ra*rb.
        return congruence(gcd(gcd(ma * mb, ma * rb), mb * ra), ra * rb)


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended gcd: returns ``(g, x, y)`` with ``a*x + b*y = g``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y
