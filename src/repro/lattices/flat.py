"""The flat (constant-propagation) lattice over an arbitrary value universe.

Elements are :data:`FlatBot`, :data:`FlatTop`, or any other hashable value,
with ``bot <= v <= top`` and distinct proper values incomparable.  This is
the classic constant-propagation domain; its height is 3 regardless of the
universe, so the default widening/narrowing are already correct.
"""

from __future__ import annotations

from typing import Any

from repro.lattices.base import Lattice


class _FlatBot:
    """Unique bottom sentinel of the flat lattice."""

    _instance: "_FlatBot | None" = None

    def __new__(cls) -> "_FlatBot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FlatBot"


class _FlatTop:
    """Unique top sentinel of the flat lattice."""

    _instance: "_FlatTop | None" = None

    def __new__(cls) -> "_FlatTop":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FlatTop"


FlatBot = _FlatBot()
FlatTop = _FlatTop()


class Flat(Lattice[Any]):
    """Flat lifting of an arbitrary set of hashable values."""

    name = "flat"

    @property
    def bottom(self) -> Any:
        return FlatBot

    @property
    def top(self) -> Any:
        return FlatTop

    def leq(self, a: Any, b: Any) -> bool:
        if a is FlatBot or b is FlatTop:
            return True
        if a is FlatTop or b is FlatBot:
            return False
        return a == b

    def join(self, a: Any, b: Any) -> Any:
        if a is FlatBot:
            return b
        if b is FlatBot:
            return a
        if a == b:
            return a
        return FlatTop

    def meet(self, a: Any, b: Any) -> Any:
        if a is FlatTop:
            return b
        if b is FlatTop:
            return a
        if a == b:
            return a
        return FlatBot

    def from_const(self, v: Any) -> Any:
        """Embed a concrete value as a proper lattice element."""
        return v

    def format(self, a: Any) -> str:
        if a is FlatBot:
            return "_|_"
        if a is FlatTop:
            return "T"
        return repr(a)
