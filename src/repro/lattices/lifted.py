"""Bottom-lifting of a lattice: add a new least element below everything.

``Lifted(L)`` has elements :data:`LiftedBottom` plus all elements of ``L``.
This is the standard way to distinguish *unreachable* (the fresh bottom)
from the least ordinary value of ``L`` — e.g. an abstract environment that
maps every variable to the empty interval is still different from "this
program point cannot be reached".
"""

from __future__ import annotations

from typing import Any

from repro.lattices.base import Lattice


class _LiftedBottom:
    """Unique sentinel for the fresh bottom element."""

    _instance: "_LiftedBottom | None" = None

    def __new__(cls) -> "_LiftedBottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Unreachable"


LiftedBottom = _LiftedBottom()


class Lifted(Lattice[Any]):
    """The lattice ``L`` with a fresh bottom element glued underneath."""

    name = "lifted"

    def __init__(self, inner: Lattice) -> None:
        """Lift ``inner`` by a new least element."""
        self._inner = inner
        self.name = f"lift({inner.name})"

    @property
    def inner(self) -> Lattice:
        """The lifted lattice."""
        return self._inner

    @property
    def bottom(self) -> Any:
        return LiftedBottom

    @property
    def top(self) -> Any:
        return self._inner.top

    def lift(self, a: Any) -> Any:
        """Embed an element of the inner lattice (identity embedding)."""
        return a

    def leq(self, a: Any, b: Any) -> bool:
        if a is LiftedBottom:
            return True
        if b is LiftedBottom:
            return False
        return self._inner.leq(a, b)

    def join(self, a: Any, b: Any) -> Any:
        if a is LiftedBottom:
            return b
        if b is LiftedBottom:
            return a
        return self._inner.join(a, b)

    def meet(self, a: Any, b: Any) -> Any:
        if a is LiftedBottom or b is LiftedBottom:
            return LiftedBottom
        return self._inner.meet(a, b)

    def widen(self, a: Any, b: Any) -> Any:
        if a is LiftedBottom:
            return b
        if b is LiftedBottom:
            return a
        return self._inner.widen(a, b)

    def narrow(self, a: Any, b: Any) -> Any:
        if a is LiftedBottom or b is LiftedBottom:
            return b
        return self._inner.narrow(a, b)

    def equal(self, a: Any, b: Any) -> bool:
        if a is LiftedBottom or b is LiftedBottom:
            return a is b
        return self._inner.equal(a, b)

    def validate(self, a: Any) -> None:
        if a is LiftedBottom:
            return
        self._inner.validate(a)

    def format(self, a: Any) -> str:
        if a is LiftedBottom:
            return "unreachable"
        return self._inner.format(a)
