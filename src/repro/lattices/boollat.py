"""The two-point lattice ``false <= true``.

Useful as a reachability domain and as the simplest possible instance for
solver tests (height 2, trivially terminating).
"""

from __future__ import annotations

from repro.lattices.base import FiniteLattice


class BoolLattice(FiniteLattice[bool]):
    """Booleans ordered by implication: ``False <= True``."""

    name = "bool"

    @property
    def bottom(self) -> bool:
        return False

    @property
    def top(self) -> bool:
        return True

    def leq(self, a: bool, b: bool) -> bool:
        return (not a) or b

    def join(self, a: bool, b: bool) -> bool:
        return a or b

    def meet(self, a: bool, b: bool) -> bool:
        return a and b

    def elements(self):
        return frozenset({False, True})
