"""Total map lattices ``K -> D`` over a fixed finite key set.

Elements are :class:`FrozenMap` values: immutable, hashable mappings.  The
ordering, join, meet, widening and narrowing are all point-wise.  Map
lattices are the backbone of abstract environments (variable -> value) and
of calling contexts, which must be hashable because they become unknowns of
the equation system.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.lattices.base import Lattice, LatticeError


class FrozenMap(Mapping):
    """An immutable, hashable mapping with value-based equality."""

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping | Iterable[tuple] = ()) -> None:
        object.__setattr__(self, "_data", dict(data))
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, key):
        return self._data[key]

    def __iter__(self) -> Iterator:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash(frozenset(self._data.items()))
            )
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, FrozenMap):
            return self._data == other._data
        if isinstance(other, Mapping):
            return dict(self._data) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        items = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(
            self._data.items(), key=lambda kv: str(kv[0])
        ))
        return "{" + items + "}"

    def set(self, key, value) -> "FrozenMap":
        """Return a copy with ``key`` bound to ``value``."""
        data = dict(self._data)
        data[key] = value
        return FrozenMap(data)

    def set_many(self, updates: Mapping) -> "FrozenMap":
        """Return a copy with all bindings in ``updates`` applied."""
        data = dict(self._data)
        data.update(updates)
        return FrozenMap(data)


class MapLattice(Lattice[FrozenMap]):
    """Point-wise lattice of total maps from a finite key set into ``value``."""

    name = "map"

    def __init__(self, keys: Iterable[Hashable], value: Lattice) -> None:
        """Create the map lattice with the given fixed ``keys``.

        :param keys: the finite key set; every element binds all of them.
        :param value: the co-domain lattice.
        """
        self._keys = tuple(dict.fromkeys(keys))
        self._value = value
        self.name = f"map->{value.name}"

    @property
    def keys(self) -> tuple:
        """The fixed key set, in declaration order."""
        return self._keys

    @property
    def value_lattice(self) -> Lattice:
        """The co-domain lattice."""
        return self._value

    @property
    def bottom(self) -> FrozenMap:
        return FrozenMap({k: self._value.bottom for k in self._keys})

    @property
    def top(self) -> FrozenMap:
        return FrozenMap({k: self._value.top for k in self._keys})

    # The point-wise operations read through the elements' internal dict
    # (one method call per *map* instead of one ``__getitem__`` dispatch
    # per key) and short-circuit on identity -- ``leq``/``equal`` between
    # an element and itself dominate the engine's commit path.

    @staticmethod
    def _raw(a: FrozenMap):
        return a._data if type(a) is FrozenMap else a

    def leq(self, a: FrozenMap, b: FrozenMap) -> bool:
        if a is b:
            return True
        ra, rb, vleq = self._raw(a), self._raw(b), self._value.leq
        return all(vleq(ra[k], rb[k]) for k in self._keys)

    def join(self, a: FrozenMap, b: FrozenMap) -> FrozenMap:
        if a is b:
            return a
        ra, rb, vjoin = self._raw(a), self._raw(b), self._value.join
        return FrozenMap({k: vjoin(ra[k], rb[k]) for k in self._keys})

    def meet(self, a: FrozenMap, b: FrozenMap) -> FrozenMap:
        if a is b:
            return a
        ra, rb, vmeet = self._raw(a), self._raw(b), self._value.meet
        return FrozenMap({k: vmeet(ra[k], rb[k]) for k in self._keys})

    def widen(self, a: FrozenMap, b: FrozenMap) -> FrozenMap:
        ra, rb, vwiden = self._raw(a), self._raw(b), self._value.widen
        return FrozenMap({k: vwiden(ra[k], rb[k]) for k in self._keys})

    def narrow(self, a: FrozenMap, b: FrozenMap) -> FrozenMap:
        ra, rb, vnarrow = self._raw(a), self._raw(b), self._value.narrow
        return FrozenMap({k: vnarrow(ra[k], rb[k]) for k in self._keys})

    def equal(self, a: FrozenMap, b: FrozenMap) -> bool:
        if a is b:
            return True
        ra, rb, vequal = self._raw(a), self._raw(b), self._value.equal
        return all(vequal(ra[k], rb[k]) for k in self._keys)

    def validate(self, a: FrozenMap) -> None:
        if not isinstance(a, Mapping):
            raise LatticeError(f"{a!r} is not a mapping")
        if set(a) != set(self._keys):
            raise LatticeError(
                f"keys {sorted(map(str, a))} do not match lattice keys"
            )
        for k in self._keys:
            self._value.validate(a[k])

    def format(self, a: FrozenMap) -> str:
        parts = (f"{k}: {self._value.format(a[k])}" for k in self._keys)
        return "{" + ", ".join(parts) + "}"
