"""The integer interval domain with standard widening and narrowing.

This is the domain used throughout the paper's experimental evaluation
(interval analysis of locals and globals).  Elements are either the empty
interval (bottom) or a pair of bounds ``lo <= hi`` drawn from
``Z | {-oo, +oo}``.

The module also provides the abstract arithmetic needed by the abstract
interpreter in :mod:`repro.analysis`: sound abstractions of the mini-C
operators, and *backwards* (refinement) transformers for branch guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.lattices.base import Lattice, LatticeError

#: Symbolic bounds.  Using floats for the infinities keeps comparisons with
#: ``int`` bounds natural; finite bounds are always ``int``.
NEG_INF = float("-inf")
POS_INF = float("inf")


@dataclass(frozen=True, slots=True)
class Interval:
    """A non-empty integer interval ``[lo, hi]`` with possibly infinite bounds.

    The *empty* interval is represented by ``None`` at the lattice level, so
    every :class:`Interval` instance denotes at least one integer.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise LatticeError(f"empty interval [{self.lo}, {self.hi}]")
        if self.lo != NEG_INF and not float(self.lo).is_integer():
            raise LatticeError(f"non-integer lower bound {self.lo}")
        if self.hi != POS_INF and not float(self.hi).is_integer():
            raise LatticeError(f"non-integer upper bound {self.hi}")

    def __repr__(self) -> str:
        lo = "-oo" if self.lo == NEG_INF else str(int(self.lo))
        hi = "+oo" if self.hi == POS_INF else str(int(self.hi))
        return f"[{lo},{hi}]"

    def is_finite(self) -> bool:
        """Return whether both bounds are finite."""
        return self.lo != NEG_INF and self.hi != POS_INF

    def contains(self, n: int) -> bool:
        """Return whether the concrete integer ``n`` lies in the interval."""
        return self.lo <= n <= self.hi

    def is_singleton(self) -> bool:
        """Return whether the interval denotes exactly one integer."""
        return self.lo == self.hi

    def width(self) -> float:
        """Number of integers denoted minus one (``+oo`` if unbounded)."""
        return self.hi - self.lo


#: Lattice elements: ``None`` is bottom (empty set of integers).
IntervalValue = Optional[Interval]


def interval(lo: float, hi: float) -> Interval:
    """Construct the interval ``[lo, hi]``; bounds may be ``+-oo``."""
    return Interval(lo, hi)


def const(n: int) -> Interval:
    """The singleton interval ``[n, n]``."""
    return Interval(n, n)


class IntervalLattice(Lattice[IntervalValue]):
    """The complete lattice of integer intervals.

    ``widen`` is the classic interval widening (unstable bounds jump to
    infinity, possibly via a user-supplied ascending sequence of
    *thresholds*), and ``narrow`` the classic narrowing (only infinite bounds
    may be improved).
    """

    name = "interval"

    def __init__(self, thresholds: Sequence[int] = ()) -> None:
        """Create the interval lattice.

        :param thresholds: optional widening thresholds.  When a bound is
            unstable, widening first tries the nearest enclosing threshold
            before giving up to infinity.  The empty default yields the
            textbook widening.
        """
        self._lower_thresholds = sorted({int(t) for t in thresholds}, reverse=True)
        self._upper_thresholds = sorted({int(t) for t in thresholds})

    # ----------------------------------------------------------------- #
    # Lattice structure.                                                #
    # ----------------------------------------------------------------- #

    @property
    def bottom(self) -> IntervalValue:
        return None

    @property
    def top(self) -> IntervalValue:
        return Interval(NEG_INF, POS_INF)

    def leq(self, a: IntervalValue, b: IntervalValue) -> bool:
        if a is None:
            return True
        if b is None:
            return False
        return b.lo <= a.lo and a.hi <= b.hi

    def join(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None:
            return b
        if b is None:
            return a
        return Interval(min(a.lo, b.lo), max(a.hi, b.hi))

    def meet(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        lo = max(a.lo, b.lo)
        hi = min(a.hi, b.hi)
        return Interval(lo, hi) if lo <= hi else None

    # ----------------------------------------------------------------- #
    # Widening and narrowing.                                           #
    # ----------------------------------------------------------------- #

    def widen(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None:
            return b
        if b is None:
            return a
        lo = a.lo if a.lo <= b.lo else self._widen_lower(b.lo)
        hi = a.hi if b.hi <= a.hi else self._widen_upper(b.hi)
        return Interval(lo, hi)

    def narrow(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return b
        # Only refine bounds that widening pushed to infinity; finite bounds
        # are kept, which guarantees stabilisation of descending chains.
        lo = b.lo if a.lo == NEG_INF else a.lo
        hi = b.hi if a.hi == POS_INF else a.hi
        return Interval(lo, hi) if lo <= hi else None

    def _widen_lower(self, lo: float) -> float:
        for t in self._lower_thresholds:
            if t <= lo:
                return t
        return NEG_INF

    def _widen_upper(self, hi: float) -> float:
        for t in self._upper_thresholds:
            if t >= hi:
                return t
        return POS_INF

    # ----------------------------------------------------------------- #
    # Housekeeping.                                                     #
    # ----------------------------------------------------------------- #

    def validate(self, a: IntervalValue) -> None:
        if a is None:
            return
        if not isinstance(a, Interval):
            raise LatticeError(f"{a!r} is not an interval")

    def format(self, a: IntervalValue) -> str:
        return "_|_" if a is None else repr(a)

    # ----------------------------------------------------------------- #
    # Abstract arithmetic (sound over-approximations of mini-C ops).    #
    # ----------------------------------------------------------------- #

    def from_const(self, n: int) -> IntervalValue:
        """Abstract a concrete integer."""
        return const(n)

    def add(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        return Interval(a.lo + b.lo, a.hi + b.hi)

    def sub(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        return Interval(a.lo - b.hi, a.hi - b.lo)

    def neg(self, a: IntervalValue) -> IntervalValue:
        if a is None:
            return None
        return Interval(-a.hi, -a.lo)

    def mul(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        products = []
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                products.append(_mul_bound(x, y))
        return Interval(min(products), max(products))

    def div(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        """Abstract C-style truncated integer division.

        Division by an interval containing zero yields the quotient over the
        non-zero part (division by zero itself is undefined behaviour and is
        excluded, matching typical interval analyzers); if the divisor is
        exactly ``[0,0]`` the result is bottom.
        """
        if a is None or b is None:
            return None
        # Split divisor around zero.
        parts = []
        neg_part = self.meet(b, Interval(NEG_INF, -1))
        pos_part = self.meet(b, Interval(1, POS_INF))
        for part in (neg_part, pos_part):
            if part is None:
                continue
            quotients = []
            for x in (a.lo, a.hi):
                for y in (part.lo, part.hi):
                    quotients.append(_div_bound(x, y))
            parts.append(Interval(min(quotients), max(quotients)))
        return self.join_all(parts) if parts else None

    def rem(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        """Abstract C-style remainder ``a % b`` (sign follows the dividend)."""
        if a is None or b is None:
            return None
        bound = max(_abs_bound(b.lo), _abs_bound(b.hi))
        if bound == 0:
            return None
        if bound == POS_INF:
            hi = POS_INF if a.hi > 0 else 0
            lo = NEG_INF if a.lo < 0 else 0
            return Interval(lo, hi)
        hi = min(a.hi, bound - 1) if a.hi >= 0 else 0
        lo = max(a.lo, -(bound - 1)) if a.lo <= 0 else 0
        # The remainder preserves sign of the dividend, so clamp accordingly.
        if a.lo >= 0:
            lo = 0 if a.lo > 0 or a.hi > 0 else 0
        if a.hi <= 0:
            hi = 0
        return Interval(min(lo, hi), max(lo, hi))

    # ----------------------------------------------------------------- #
    # Comparisons: return an abstract boolean encoded as an interval    #
    # over {0, 1}; guard refinement lives in `refine_*` below.          #
    # ----------------------------------------------------------------- #

    TRUE = const(1)
    FALSE = const(0)
    BOTH = interval(0, 1)

    def cmp_lt(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        if a.hi < b.lo:
            return self.TRUE
        if a.lo >= b.hi:
            return self.FALSE
        return self.BOTH

    def cmp_le(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        if a.hi <= b.lo:
            return self.TRUE
        if a.lo > b.hi:
            return self.FALSE
        return self.BOTH

    def cmp_eq(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        if a is None or b is None:
            return None
        if a.is_singleton() and b.is_singleton() and a.lo == b.lo:
            return self.TRUE
        if self.meet(a, b) is None:
            return self.FALSE
        return self.BOTH

    def cmp_ne(self, a: IntervalValue, b: IntervalValue) -> IntervalValue:
        r = self.cmp_eq(a, b)
        return self.logical_not(r)

    def logical_not(self, a: IntervalValue) -> IntervalValue:
        if a is None:
            return None
        if a.lo == 0 and a.hi == 0:
            return self.TRUE
        if not a.contains(0):
            return self.FALSE
        return self.BOTH

    def truthiness(self, a: IntervalValue) -> tuple[bool, bool]:
        """Return ``(may_be_true, may_be_false)`` for condition value ``a``."""
        if a is None:
            return (False, False)
        may_false = a.contains(0)
        may_true = a.lo != 0 or a.hi != 0
        return (may_true, may_false)

    # ----------------------------------------------------------------- #
    # Backwards transformers for guards: given `a OP b` assumed true,   #
    # return refined (a', b').                                          #
    # ----------------------------------------------------------------- #

    def refine_lt(
        self, a: IntervalValue, b: IntervalValue
    ) -> tuple[IntervalValue, IntervalValue]:
        """Refine ``(a, b)`` under the assumption ``a < b``."""
        if a is None or b is None:
            return (None, None)
        new_a = self.meet(a, Interval(NEG_INF, b.hi - 1) if b.hi != POS_INF else a)
        new_b = self.meet(b, Interval(a.lo + 1, POS_INF) if a.lo != NEG_INF else b)
        return (new_a, new_b)

    def refine_le(
        self, a: IntervalValue, b: IntervalValue
    ) -> tuple[IntervalValue, IntervalValue]:
        """Refine ``(a, b)`` under the assumption ``a <= b``."""
        if a is None or b is None:
            return (None, None)
        new_a = self.meet(a, Interval(NEG_INF, b.hi))
        new_b = self.meet(b, Interval(a.lo, POS_INF))
        return (new_a, new_b)

    def refine_eq(
        self, a: IntervalValue, b: IntervalValue
    ) -> tuple[IntervalValue, IntervalValue]:
        """Refine ``(a, b)`` under the assumption ``a == b``."""
        both = self.meet(a, b)
        return (both, both)

    def refine_ne(
        self, a: IntervalValue, b: IntervalValue
    ) -> tuple[IntervalValue, IntervalValue]:
        """Refine ``(a, b)`` under the assumption ``a != b``.

        Only singleton exclusions at the interval boundary can be expressed.
        """
        if a is None or b is None:
            return (None, None)
        new_a, new_b = a, b
        if b.is_singleton():
            new_a = _exclude_point(a, int(b.lo))
        if a.is_singleton():
            new_b = _exclude_point(b, int(a.lo))
        return (new_a, new_b)


def _exclude_point(a: Interval, n: int) -> IntervalValue:
    """Remove the single integer ``n`` from ``a`` where representable."""
    if not a.contains(n):
        return a
    if a.is_singleton():
        return None
    if a.lo == n:
        return Interval(n + 1, a.hi)
    if a.hi == n:
        return Interval(a.lo, n - 1)
    return a


def _mul_bound(x: float, y: float) -> float:
    """Multiply two bounds, resolving ``0 * oo`` to ``0``."""
    if x == 0 or y == 0:
        return 0
    return x * y


def _div_bound(x: float, y: float) -> float:
    """C-style truncated division of bounds (``y`` is never zero)."""
    if x in (NEG_INF, POS_INF):
        sign = 1 if (x > 0) == (y > 0) else -1
        return sign * POS_INF
    if y in (NEG_INF, POS_INF):
        return 0
    q = abs(int(x)) // abs(int(y))
    return q if (x >= 0) == (y > 0) else -q


def _abs_bound(x: float) -> float:
    return x if x >= 0 else -x


def widen_sequence(lat: IntervalLattice, seq: Iterable[IntervalValue]) -> IntervalValue:
    """Fold a sequence through widening; used by tests of stabilisation."""
    acc: IntervalValue = None
    for v in seq:
        acc = lat.widen(acc, v)
    return acc
