"""The chain lattice ``N | {oo}`` from the paper's running examples.

Examples 1--4 of the paper use the lattice of non-negative integers extended
with infinity, ordered naturally, with

* widening ``a widen b = a if b <= a else oo`` and
* narrowing ``a narrow b = b if a = oo else a``.

Elements are Python ``int`` values or the distinguished :data:`INF`.
"""

from __future__ import annotations

from repro.lattices.base import Lattice, LatticeError

#: The top element (infinity).  ``float('inf')`` compares correctly with
#: every ``int``, which keeps element handling trivial.
INF = float("inf")


class NatInf(Lattice):
    """Non-negative integers extended with infinity, ordered by ``<=``.

    This lattice has infinite strictly ascending chains (``0 < 1 < ...``)
    so naive Kleene iteration need not terminate on it; the paper uses it to
    exhibit divergence of round-robin and worklist iteration under the
    combined operator.
    """

    name = "nat-inf"

    @property
    def bottom(self):
        return 0

    @property
    def top(self):
        return INF

    def leq(self, a, b) -> bool:
        return a <= b

    def join(self, a, b):
        return a if a >= b else b

    def meet(self, a, b):
        return a if a <= b else b

    def widen(self, a, b):
        """Paper's widening: keep ``a`` if nothing grew, else jump to oo."""
        return a if b <= a else INF

    def narrow(self, a, b):
        """Paper's narrowing: only improve the infinite value."""
        return b if a == INF else a

    def validate(self, a) -> None:
        if a == INF:
            return
        if not isinstance(a, int) or isinstance(a, bool) or a < 0:
            raise LatticeError(f"{a!r} is not a natural number or infinity")

    def format(self, a) -> str:
        return "oo" if a == INF else str(a)
