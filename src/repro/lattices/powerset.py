"""Finite powerset lattices ordered by inclusion.

Elements are ``frozenset`` values over a fixed finite universe.  Used for
may-analyses (e.g. reaching definitions in tests) and as a finite-height
stress domain for solver complexity experiments.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable

from repro.lattices.base import Lattice, LatticeError


class PowersetLattice(Lattice[FrozenSet[Hashable]]):
    """The lattice ``(2^U, subset-of)`` for a finite universe ``U``."""

    name = "powerset"

    def __init__(self, universe: Iterable[Hashable]) -> None:
        """Create the powerset lattice over ``universe``."""
        self._universe = frozenset(universe)

    @property
    def universe(self) -> frozenset:
        """The underlying finite universe."""
        return self._universe

    @property
    def bottom(self) -> frozenset:
        return frozenset()

    @property
    def top(self) -> frozenset:
        return self._universe

    def leq(self, a: frozenset, b: frozenset) -> bool:
        return a <= b

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def singleton(self, x: Hashable) -> frozenset:
        """The one-element set ``{x}``; raises if ``x`` is foreign."""
        if x not in self._universe:
            raise LatticeError(f"{x!r} is not in the universe")
        return frozenset({x})

    def validate(self, a: frozenset) -> None:
        if not isinstance(a, frozenset):
            raise LatticeError(f"{a!r} is not a frozenset")
        if not a <= self._universe:
            raise LatticeError(f"{a!r} contains foreign elements")

    def height_bound(self) -> int:
        """The lattice height: ``|U| + 1``."""
        return len(self._universe) + 1

    def format(self, a: frozenset) -> str:
        return "{" + ",".join(sorted(map(str, a))) + "}"
