"""Widening/narrowing *combinators*: wrappers that tune acceleration.

The paper treats the widening ``widen`` and narrowing ``narrow`` operators as
given and studies how to interleave them.  Real analyzers additionally tune
the operators themselves; this module provides the three classic tuning
knobs as lattice wrappers:

* :class:`ThresholdWidening` -- widen through a finite ascending set of
  threshold elements before giving up to the inner widening;
* :class:`DelayedWidening` -- behave like join for the first ``delay``
  widening applications (a *global* delay; the per-unknown variant lives in
  :class:`repro.solvers.combine.WarrowCombine`);
* :class:`NarrowToMeet` -- replace the narrowing by the meet (the most
  aggressive improvement; terminating only on domains without infinite
  descending chains, used in ablation experiments).

All wrappers delegate the order-theoretic structure to the inner lattice
unchanged, so they can be dropped into any analysis.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.lattices.base import Lattice


class _Wrapper(Lattice[Any]):
    """Base class delegating all lattice structure to an inner lattice."""

    def __init__(self, inner: Lattice) -> None:
        self._inner = inner
        self.name = f"{type(self).__name__.lower()}({inner.name})"

    @property
    def inner(self) -> Lattice:
        """The wrapped lattice."""
        return self._inner

    @property
    def bottom(self):
        return self._inner.bottom

    @property
    def top(self):
        return self._inner.top

    def leq(self, a, b):
        return self._inner.leq(a, b)

    def join(self, a, b):
        return self._inner.join(a, b)

    def meet(self, a, b):
        return self._inner.meet(a, b)

    def widen(self, a, b):
        return self._inner.widen(a, b)

    def narrow(self, a, b):
        return self._inner.narrow(a, b)

    def equal(self, a, b):
        return self._inner.equal(a, b)

    def validate(self, a):
        self._inner.validate(a)

    def format(self, a):
        return self._inner.format(a)


class ThresholdWidening(_Wrapper):
    """Widen through a finite set of threshold elements.

    ``widen(a, b)`` returns the least threshold element above
    ``join(a, b)`` if one exists, and falls back to the inner widening
    otherwise.  Because the threshold set is finite and results only grow,
    this is again a widening operator.
    """

    def __init__(self, inner: Lattice, thresholds: Iterable[Any]) -> None:
        super().__init__(inner)
        self._thresholds = list(thresholds)

    def widen(self, a, b):
        joined = self._inner.join(a, b)
        best = None
        for t in self._thresholds:
            if self._inner.leq(joined, t):
                if best is None or self._inner.leq(t, best):
                    best = t
        if best is not None:
            return best
        return self._inner.widen(a, b)


class DelayedWidening(_Wrapper):
    """Use plain join for the first ``delay`` widening applications.

    The delay counter is *global* to the wrapper instance (the style used by
    analyzers that run a few precise Kleene rounds before accelerating).
    Termination is preserved: after finitely many joins the inner widening
    takes over.  Call :meth:`reset` to reuse the instance across solver runs.
    """

    def __init__(self, inner: Lattice, delay: int) -> None:
        super().__init__(inner)
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._delay = delay
        self._used = 0

    def reset(self) -> None:
        """Reset the delay budget (e.g. between solver runs)."""
        self._used = 0

    def widen(self, a, b):
        if self._used < self._delay:
            self._used += 1
            return self._inner.join(a, b)
        return self._inner.widen(a, b)


class NarrowToMeet(_Wrapper):
    """Replace narrowing by the meet: ``narrow(a, b) = meet(a, b)``.

    For ``b <= a`` this equals ``b``, i.e. full precision is taken
    immediately.  This is only a proper narrowing on domains whose
    descending chains stabilise; it exists to quantify (in the ablations)
    how much the safe narrowing of a domain gives up.
    """

    def narrow(self, a, b):
        return self._inner.meet(a, b)
