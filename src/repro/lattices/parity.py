"""The parity domain: bottom < {even, odd} < top.

A tiny finite lattice used in tests and as an alternative context projection
for the interprocedural analysis.
"""

from __future__ import annotations

from repro.lattices.base import FiniteLattice


class Parity(FiniteLattice):
    """Four-element parity lattice represented by frozensets of atoms."""

    name = "parity"

    BOT = frozenset()
    EVEN = frozenset({"even"})
    ODD = frozenset({"odd"})
    TOP = frozenset({"even", "odd"})

    @property
    def bottom(self):
        return self.BOT

    @property
    def top(self):
        return self.TOP

    def leq(self, a, b) -> bool:
        return a <= b

    def join(self, a, b):
        return a | b

    def meet(self, a, b):
        return a & b

    def elements(self):
        return frozenset({self.BOT, self.EVEN, self.ODD, self.TOP})

    def from_const(self, n: int):
        """Abstract a concrete integer to its parity."""
        return self.EVEN if n % 2 == 0 else self.ODD

    def from_interval(self, iv):
        """Abstract an interval element to a parity."""
        if iv is None:
            return self.BOT
        if iv.is_singleton():
            return self.from_const(int(iv.lo))
        return self.TOP

    def format(self, a) -> str:
        if not a:
            return "_|_"
        if a == self.TOP:
            return "T"
        return next(iter(a))
