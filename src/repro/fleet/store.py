"""The fleet's shared warm-donor + result index: one directory, no locks.

Every shard process keeps its private in-memory LRU
(:class:`~repro.service.cache.ResultCache`), which is fast but invisible
to its siblings.  :class:`SharedStore` is the fleet-wide complement: an
on-disk index of verified results and their resume snapshots that *any*
shard can read and write concurrently -- so a warm-start donor produced
on shard 0 accelerates an edited resubmission that consistent-hashes
onto shard 2, and a fleet restarted from scratch answers its first
repeat request as a hit.

Consistency rules (see ``docs/fleet.md``):

* **entries are immutable and atomic** -- one JSON file per content key
  under ``entries/``, written via tempfile + ``os.replace`` (the same
  idiom as the cache index and the journal), so a reader sees either a
  complete entry or none.  Keys are content addresses
  (:func:`~repro.batch.jobs.spec_fingerprint`), so two writers racing on
  one key are by construction writing equivalent verified results --
  last writer wins and nothing is corrupted;
* **discovery is marker-based** -- ``options/<options_fp>/<key>``
  marker files index entries by their options-only fingerprint (the
  warm-donor grouping).  A marker is only created *after* its entry
  file is fully in place, so discovery never yields a torn entry; a
  marker whose entry has since been pruned is skipped and reaped
  lazily;
* **no cross-process counters** -- hit/store counts are per-process
  (each daemon reports its own through ``status``; the router sums
  them).  The *files* are the shared truth, the numbers are telemetry.

The store is bounded by :meth:`prune` (drop the oldest entries beyond a
cap), which shards run opportunistically after writes.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import List, Optional

from repro.service.cache import CacheEntry

#: Format marker stamped into every entry file.
FORMAT = "repro-fleet-store/1"

#: Default bound on stored entries (pruned oldest-first beyond it).
DEFAULT_MAX_ENTRIES = 4096


class SharedStore:
    """A multi-process warm-donor and result index rooted at ``root``.

    :param root: index directory (created on first use).
    :param max_entries: prune target for :meth:`prune`; opportunistic
        pruning after :meth:`put` keeps the store near this bound.
    :param ttl: entry lifetime in seconds (``None``: no expiry).
    """

    def __init__(
        self,
        root: str,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        ttl: Optional[float] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.root = root
        self.max_entries = max_entries
        self.ttl = ttl
        self._entries_dir = os.path.join(root, "entries")
        self._options_dir = os.path.join(root, "options")
        os.makedirs(self._entries_dir, exist_ok=True)
        os.makedirs(self._options_dir, exist_ok=True)
        # Per-process telemetry (the files are the shared truth).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.pruned = 0

    def __len__(self) -> int:
        return len(self._entry_keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key, count=False) is not None

    # ----------------------------------------------------------------- #
    # Paths.                                                            #
    # ----------------------------------------------------------------- #

    def _entry_path(self, key: str) -> str:
        return os.path.join(self._entries_dir, f"{key}.json")

    def _marker_dir(self, options: str) -> str:
        return os.path.join(self._options_dir, options)

    def _entry_keys(self) -> List[str]:
        try:
            names = os.listdir(self._entries_dir)
        except FileNotFoundError:  # pragma: no cover - root removed
            return []
        return [n[:-5] for n in names if n.endswith(".json")]

    def _expired(self, entry: CacheEntry) -> bool:
        return self.ttl is not None and time.time() - entry.created > self.ttl

    # ----------------------------------------------------------------- #
    # Core operations.                                                  #
    # ----------------------------------------------------------------- #

    def get(self, key: str, count: bool = True) -> Optional[CacheEntry]:
        """The stored entry under ``key``; ``None`` when absent/expired."""
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            if count:
                self.misses += 1
            return None
        if not isinstance(doc, dict) or doc.get("format") != FORMAT:
            if count:
                self.misses += 1
            return None
        entry = CacheEntry.from_json(doc["entry"])
        if self._expired(entry):
            if count:
                self.misses += 1
            return None
        if count:
            self.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> None:
        """Publish an entry fleet-wide: entry file first, marker second.

        The ordering is the consistency argument: a sibling that
        discovers the marker is guaranteed a complete entry file, and a
        crash between the two writes costs only discoverability (the
        exact-key path still serves it), never integrity.
        """
        payload = json.dumps(
            {"format": FORMAT, "entry": entry.to_json()},
            sort_keys=True,
            separators=(",", ":"),
        )
        path = self._entry_path(entry.key)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{entry.key[:12]}.", dir=self._entries_dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        marker_dir = self._marker_dir(entry.options)
        os.makedirs(marker_dir, exist_ok=True)
        marker = os.path.join(marker_dir, entry.key)
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8"):
                pass
        self.stores += 1

    def warm_candidates(
        self, options: str, exclude: Optional[str] = None, limit: int = 8
    ) -> List[CacheEntry]:
        """Donor entries sharing ``options``, newest first.

        Only entries carrying a resume snapshot qualify (results without
        a snapshot serve exact hits but cannot seed a warm start).
        Markers whose entry file has been pruned are reaped on sight.
        """
        marker_dir = self._marker_dir(options)
        try:
            names = os.listdir(marker_dir)
        except FileNotFoundError:
            return []
        stamped = []
        for key in names:
            if key == exclude:
                continue
            try:
                mtime = os.path.getmtime(self._entry_path(key))
            except OSError:
                # Entry pruned out from under its marker: reap it.
                try:
                    os.unlink(os.path.join(marker_dir, key))
                except OSError:
                    pass
                continue
            stamped.append((mtime, key))
        stamped.sort(reverse=True)
        out: List[CacheEntry] = []
        for _, key in stamped:
            entry = self.get(key, count=False)
            if entry is not None and entry.state is not None:
                out.append(entry)
                if len(out) >= limit:
                    break
        return out

    def prune(self, max_entries: Optional[int] = None) -> int:
        """Drop the oldest entries beyond the bound; returns how many.

        Expired entries go first regardless of the bound.  Concurrent
        pruners are safe: unlinking an already-unlinked file is a no-op.
        """
        bound = self.max_entries if max_entries is None else max_entries
        stamped = []
        for key in self._entry_keys():
            path = self._entry_path(key)
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue
            expired = False
            if self.ttl is not None:
                expired = time.time() - mtime > self.ttl
            stamped.append((mtime, key, expired))
        stamped.sort()
        doomed = [key for _, key, expired in stamped if expired]
        live = [key for _, key, expired in stamped if not expired]
        if len(live) > bound:
            doomed.extend(live[: len(live) - bound])
        dropped = 0
        for key in doomed:
            try:
                os.unlink(self._entry_path(key))
                dropped += 1
            except OSError:
                pass
        self.pruned += dropped
        return dropped

    # ----------------------------------------------------------------- #
    # Introspection.                                                    #
    # ----------------------------------------------------------------- #

    def stats(self) -> dict:
        """Per-process counters plus the on-disk occupancy."""
        return {
            "root": self.root,
            "entries": len(self._entry_keys()),
            "max_entries": self.max_entries,
            "ttl": self.ttl,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "pruned": self.pruned,
        }
