"""Sharded analysis fleet: router, shard supervision, shared warm index.

This package scales the single-process analysis service
(:mod:`repro.service`) horizontally without changing its protocol:

* :mod:`.ring` -- a consistent-hash ring placing every request's
  content fingerprint on a shard, with bounded key movement when the
  fleet grows or shrinks and a deterministic fallback order;
* :mod:`.router` -- a front daemon speaking ``repro-service/1`` that
  validates, places and forwards requests, health-checks the shards,
  fails over around dead ones, and aggregates fleet-wide status;
* :mod:`.manager` -- process lifecycle: spawn N ``repro serve`` shards
  under per-shard restart supervision (each with its own crash-safe
  journal), wait for readiness, drain gracefully;
* :mod:`.store` -- the shared on-disk result + warm-donor index every
  shard reads and writes, so a solve done anywhere warms edits
  arriving anywhere else, across fleet restarts included.

``repro serve --shards N`` is the front door; ``repro submit`` and
``repro status`` work unchanged against the router.  See
``docs/fleet.md``.
"""

from repro.fleet.manager import (
    FleetConfig,
    ShardManager,
    ShardPlan,
    build_router,
    serve_fleet,
    shard_plans,
)
from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.fleet.router import RouterConfig, RouterDaemon, ShardLink
from repro.fleet.store import SharedStore

__all__ = [
    "DEFAULT_REPLICAS",
    "FleetConfig",
    "HashRing",
    "RouterConfig",
    "RouterDaemon",
    "SharedStore",
    "ShardLink",
    "ShardManager",
    "ShardPlan",
    "build_router",
    "serve_fleet",
    "shard_plans",
]
