"""Consistent-hash ring: which shard owns a content key.

The router places every request on a shard by hashing its
:func:`~repro.batch.jobs.spec_fingerprint` onto a ring of virtual
nodes.  Consistent hashing is what makes a *fleet* operable rather than
merely parallel:

* **determinism** -- the same key always lands on the same shard (for a
  fixed membership), so single-flight coalescing, the local result
  cache and the warm-donor locality of each shard keep working exactly
  as they do for one daemon;
* **bounded movement** -- adding or removing one shard of *N* remaps
  only the keys that fall into the new (or orphaned) arcs, an expected
  ``K/N`` of *K* keys, instead of reshuffling everything the way
  ``hash(key) % N`` would.  Keys that move when a shard joins move
  *onto the new shard only* -- never between surviving shards -- which
  is the property the test suite pins;
* **fallback order** -- walking the ring clockwise past the owner
  yields a deterministic preference list of distinct shards, which is
  what the router retries against when the owner is down.

Virtual nodes (``replicas`` points per shard, default 64) smooth the
arc sizes so load and movement stay near their expectations; the point
hashes are SHA-256 based, so placement is stable across processes,
Python versions and restarts (no ``PYTHONHASHSEED`` dependence).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple

#: Default virtual nodes per shard.  64 keeps the per-shard load's
#: coefficient of variation around ``1/sqrt(64) ~= 12%`` while the ring
#: stays tiny (a few hundred points for any realistic local fleet).
DEFAULT_REPLICAS = 64


def _point(label: str) -> int:
    """A stable 64-bit ring position for a virtual-node label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named shards.

    :param nodes: initial shard names (order-insensitive: the ring is
        fully determined by the membership *set* and ``replicas``).
    :param replicas: virtual nodes per shard (at least 1).
    """

    def __init__(
        self, nodes: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = replicas
        #: Monotonic membership version; bumped by :meth:`add` and
        #: :meth:`remove` so status readers can tell rings apart.
        self.version = 0
        self._nodes: List[str] = []
        #: Sorted ring positions and their owning node, aligned lists.
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current membership, sorted (presentation order only)."""
        return tuple(sorted(self._nodes))

    # ----------------------------------------------------------------- #
    # Membership.                                                       #
    # ----------------------------------------------------------------- #

    def add(self, node: str) -> None:
        """Join a shard; its arcs are carved out of existing ones.

        :raises ValueError: for empty names or duplicate membership.
        """
        if not node:
            raise ValueError("shard name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"shard {node!r} is already on the ring")
        for i in range(self.replicas):
            point = _point(f"{node}#{i}")
            index = bisect.bisect_left(self._points, point)
            # SHA-256 collisions between distinct labels are not a
            # realistic concern; ties (same point, different node) would
            # break determinism, so resolve them by owner name.
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < node
            ):  # pragma: no cover - astronomically unlikely
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, node)
        self._nodes.append(node)
        self.version += 1

    def remove(self, node: str) -> None:
        """Leave the ring; the shard's arcs fall to their successors.

        :raises KeyError: when the shard is not a member.
        """
        if node not in self._nodes:
            raise KeyError(f"shard {node!r} is not on the ring")
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self._nodes.remove(node)
        self.version += 1

    # ----------------------------------------------------------------- #
    # Placement.                                                        #
    # ----------------------------------------------------------------- #

    def lookup(self, key: str) -> str:
        """The shard owning ``key`` (its clockwise successor point).

        :raises LookupError: on an empty ring.
        """
        return self.preference(key)[0]

    def preference(self, key: str) -> Tuple[str, ...]:
        """All shards in fallback order for ``key``, owner first.

        Walks the ring clockwise from the key's position and collects
        each *distinct* shard at first encounter -- the deterministic
        retry order for a request whose owner shard is down.

        :raises LookupError: on an empty ring.
        """
        if not self._points:
            raise LookupError("the ring has no shards")
        start = bisect.bisect_right(self._points, _point(key))
        seen = []
        count = len(self._points)
        for offset in range(count):
            owner = self._owners[(start + offset) % count]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._nodes):
                    break
        return tuple(seen)

    # ----------------------------------------------------------------- #
    # Introspection.                                                    #
    # ----------------------------------------------------------------- #

    def stats(self) -> dict:
        """Ring shape, as served by the router's ``status`` op."""
        return {
            "shards": len(self._nodes),
            "replicas": self.replicas,
            "version": self.version,
            "points": len(self._points),
        }
