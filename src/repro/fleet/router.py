"""The fleet's front door: a consistent-hash routing daemon.

:class:`RouterDaemon` listens on one UNIX socket speaking the exact
``repro-service/1`` NDJSON protocol and fans ``solve``/``check``
requests out to N shard daemons -- each a stock
:class:`~repro.service.daemon.AnalysisDaemon` on its own socket.  From
a client's point of view the router *is* a daemon: ``ServiceClient``,
``repro submit`` and ``repro status`` work unchanged against it.

Routing and resilience:

* **placement** -- the request is normalized through the same
  validators the shards use (so malformed requests are rejected at the
  front, before costing a forward) and its
  :func:`~repro.batch.jobs.spec_fingerprint` is looked up on the
  :class:`~repro.fleet.ring.HashRing`.  Identical requests always land
  on the same shard, preserving single-flight coalescing and local
  cache locality; distinct requests spread across the fleet;
* **health** -- a background probe pings every shard on an interval;
  forwarding failures mark a shard unhealthy immediately, a successful
  probe restores it.  Unhealthy shards are skipped in preference order;
* **failover** -- a transport failure against one shard retries the
  next shard on the ring's preference walk (bounded by fleet size).
  Shard *replies* are never second-guessed: ``overloaded``,
  ``draining``, ``bad-request`` and result payloads pass through
  verbatim, so the admission/deadline taxonomy of
  ``docs/service-reliability.md`` survives the extra hop.  Only when
  every shard is unreachable does the router answer an ``unavailable``
  error of its own;
* **status** -- ``status`` aggregates every shard's counters into a
  fleet-wide view plus a stable ``fleet`` section (shard count,
  per-shard health, ring version, shared-index counters); ``shutdown``
  drains the router (shard lifecycle belongs to the
  :class:`~repro.fleet.manager.ShardManager`).
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.batch.jobs import spec_fingerprint
from repro.service.protocol import (
    PROTOCOL,
    ProtocolError,
    check_request_to_jobspec,
    decode,
    encode,
    error_response,
    request_operation,
    solve_request_to_jobspec,
)
from repro.service.reqlog import RequestLog
from repro.service.sockets import prepare_socket_path


@dataclass
class ShardLink:
    """The router's view of one shard daemon."""

    #: Stable shard name -- the ring node and the status id.
    shard_id: str
    #: The shard daemon's UNIX socket path.
    socket_path: str
    #: Health as of the last probe or forward.
    healthy: bool = True
    #: Requests forwarded to (and answered by) this shard.
    forwarded: int = 0
    #: Transport failures observed against this shard.
    failures: int = 0
    #: Monotonic timestamp of the last successful probe/forward.
    last_ok: float = field(default_factory=time.monotonic)

    def to_json(self) -> dict:
        return {
            "id": self.shard_id,
            "socket": self.socket_path,
            "healthy": self.healthy,
            "forwarded": self.forwarded,
            "failures": self.failures,
        }


@dataclass
class RouterConfig:
    """Tunables of one router instance."""

    #: The front UNIX socket clients connect to.
    socket_path: str
    #: ``(shard_id, socket_path)`` pairs, one per shard daemon.
    shards: Tuple[Tuple[str, str], ...] = ()
    #: Virtual nodes per shard on the ring.
    replicas: int = DEFAULT_REPLICAS
    #: Per-forward connect/read deadline against a shard, seconds.
    shard_timeout: float = 600.0
    #: Health-probe cadence, seconds (``None`` disables the prober --
    #: forwards still mark failures, but recovery needs traffic).
    health_interval: Optional[float] = 2.0
    #: Per-connection read deadline for client request lines.
    read_timeout: Optional[float] = None
    #: Request-log file (NDJSON); ``None`` disables logging.
    log_path: Optional[str] = None


class RouterDaemon:
    """One fleet front-end over N shard daemons."""

    def __init__(
        self,
        config: RouterConfig,
        *,
        log: Optional[RequestLog] = None,
    ) -> None:
        if not config.shards:
            raise ValueError("a router needs at least one shard")
        self.config = config
        self.log = log or RequestLog(path=config.log_path)
        self.started_at = time.time()
        self.shards: Dict[str, ShardLink] = {
            shard_id: ShardLink(shard_id, socket_path)
            for shard_id, socket_path in config.shards
        }
        if len(self.shards) != len(config.shards):
            raise ValueError("shard ids must be unique")
        self.ring = HashRing(self.shards, replicas=config.replicas)
        self.counters: Dict[str, int] = {
            "total": 0,
            "forwarded": 0,
            "failovers": 0,
            "unavailable": 0,
            "errors": 0,
            "health_probes": 0,
            "stalled": 0,
            "disconnected": 0,
        }
        self.stale_socket_removed = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._health_task: Optional[asyncio.Task] = None
        self._seq = 0
        self._draining = False
        self._done = asyncio.Event()

    # ----------------------------------------------------------------- #
    # Lifecycle.                                                        #
    # ----------------------------------------------------------------- #

    @property
    def address(self) -> Tuple[str, str]:
        return ("unix", self.config.socket_path)

    async def start(self) -> None:
        self.stale_socket_removed = prepare_socket_path(
            self.config.socket_path
        )
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.config.socket_path
        )
        if self.config.health_interval is not None:
            self._health_task = asyncio.ensure_future(self._health_loop())

    async def serve_until_shutdown(self) -> None:
        await self._done.wait()
        await self._close()

    async def run(self) -> None:
        await self.start()
        await self.serve_until_shutdown()

    def request_shutdown(self) -> None:
        self._draining = True
        self._done.set()

    async def _close(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)
        self.log.close()

    # ----------------------------------------------------------------- #
    # Health.                                                           #
    # ----------------------------------------------------------------- #

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval)
            await self.probe_shards()

    async def probe_shards(self) -> int:
        """Ping every shard once; returns how many answered healthy."""
        results = await asyncio.gather(
            *(self._probe(link) for link in self.shards.values())
        )
        return sum(results)

    async def _probe(self, link: ShardLink) -> bool:
        self.counters["health_probes"] += 1
        try:
            reply = await self._roundtrip(
                link, encode({"op": "ping"}), timeout=PROBE_TIMEOUT
            )
            ok = bool(decode(reply).get("ok"))
        except (OSError, asyncio.TimeoutError, ProtocolError):
            ok = False
        was = link.healthy
        link.healthy = ok
        if ok:
            link.last_ok = time.monotonic()
        if was != ok:
            self.log.log(
                request="-",
                op="health",
                outcome="up" if ok else "down",
                shard=link.shard_id,
            )
        return ok

    # ----------------------------------------------------------------- #
    # Connection handling (client side).                                #
    # ----------------------------------------------------------------- #

    async def _read_request_line(self, reader: asyncio.StreamReader) -> bytes:
        if self.config.read_timeout is None:
            return await reader.readline()
        return await asyncio.wait_for(
            reader.readline(), timeout=self.config.read_timeout
        )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await self._read_request_line(reader)
                except asyncio.TimeoutError:
                    self.counters["stalled"] += 1
                    writer.write(
                        encode(
                            error_response(
                                None,
                                f"no request line within the "
                                f"{self.config.read_timeout:g}s read "
                                f"deadline",
                                code="timeout",
                            )
                        )
                    )
                    await writer.drain()
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode(error_response(None, "request line too long"))
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    self.counters["disconnected"] += 1
                    break
                if not line.strip():
                    continue
                response, close = await self._dispatch(line)
                try:
                    writer.write(response)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    self.counters["disconnected"] += 1
                    break
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    # ----------------------------------------------------------------- #
    # Dispatch.                                                         #
    # ----------------------------------------------------------------- #

    async def _dispatch(self, line: bytes) -> Tuple[bytes, bool]:
        """Route one request line; returns (response bytes, close?)."""
        self._seq += 1
        rid = f"f{self._seq:06d}"
        self.counters["total"] += 1
        try:
            message = decode(line)
            op = request_operation(message)
        except ProtocolError as err:
            self.counters["errors"] += 1
            self.log.log(request=rid, op="?", outcome="error", error=str(err))
            return encode(error_response(None, str(err), request=rid)), False

        if op == "ping":
            return encode(
                {
                    "ok": True,
                    "op": "ping",
                    "protocol": PROTOCOL,
                    "request": rid,
                    "role": "router",
                    "shards": len(self.shards),
                }
            ), False
        if op == "status":
            return encode(await self._status(rid)), False
        if op == "shutdown":
            self._draining = True
            self.log.log(request=rid, op="shutdown", outcome="drained")
            self._done.set()
            return encode(
                {
                    "ok": True,
                    "op": "shutdown",
                    "request": rid,
                    "role": "router",
                    "drained": True,
                }
            ), True
        if op == "solvers":
            # Any shard's catalogue is every shard's catalogue.
            return await self._forward_any(message, rid, op)

        # solve / check: place on the ring, forward, fail over.
        if self._draining:
            self.counters["errors"] += 1
            return encode(
                error_response(
                    op,
                    "router is draining; resubmit elsewhere",
                    code="draining",
                    request=rid,
                )
            ), False
        try:
            normalize = (
                check_request_to_jobspec
                if op == "check"
                else solve_request_to_jobspec
            )
            spec, _ = normalize(message)
            key = spec_fingerprint(spec)
        except ProtocolError as err:
            self.counters["errors"] += 1
            self.log.log(request=rid, op=op, outcome="error", error=str(err))
            return encode(error_response(op, str(err), request=rid)), False
        return await self._forward(message, rid, op, key), False

    # ----------------------------------------------------------------- #
    # Forwarding (shard side).                                          #
    # ----------------------------------------------------------------- #

    async def _roundtrip(
        self, link: ShardLink, payload: bytes, timeout: float
    ) -> bytes:
        """One request/response line against a shard, bounded."""

        async def exchange() -> bytes:
            reader, writer = await asyncio.open_unix_connection(
                link.socket_path
            )
            try:
                writer.write(payload)
                await writer.drain()
                reply = await reader.readline()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
            if not reply.endswith(b"\n"):
                raise ConnectionResetError("shard closed mid-response")
            return reply

        return await asyncio.wait_for(exchange(), timeout=timeout)

    def _ranked(self, key: Optional[str]) -> List[ShardLink]:
        """Shards to try for ``key``: healthy in preference order, then
        unhealthy ones as a last resort (a probe may be stale)."""
        order = (
            self.ring.preference(key)
            if key is not None
            else tuple(self.shards)
        )
        links = [self.shards[s] for s in order]
        return [x for x in links if x.healthy] + [
            x for x in links if not x.healthy
        ]

    async def _forward(
        self, message: dict, rid: str, op: str, key: str
    ) -> bytes:
        payload = encode(message)
        owner = self.ring.lookup(key)
        attempts = 0
        for link in self._ranked(key):
            attempts += 1
            try:
                reply = await self._roundtrip(
                    link, payload, timeout=self.config.shard_timeout
                )
            except (OSError, asyncio.TimeoutError) as err:
                link.failures += 1
                link.healthy = False
                self.counters["failovers"] += 1
                self.log.log(
                    request=rid,
                    op=op,
                    outcome="failover",
                    shard=link.shard_id,
                    error=f"{type(err).__name__}: {err}",
                )
                continue
            link.forwarded += 1
            link.healthy = True
            link.last_ok = time.monotonic()
            self.counters["forwarded"] += 1
            self.log.log(
                request=rid,
                op=op,
                outcome="forwarded",
                shard=link.shard_id,
                owner=owner,
                key=key,
                attempts=attempts,
            )
            return reply
        self.counters["unavailable"] += 1
        self.log.log(
            request=rid, op=op, outcome="unavailable", key=key,
            attempts=attempts,
        )
        return encode(
            error_response(
                op,
                f"no shard reachable for this request "
                f"({len(self.shards)} tried); retry once the fleet "
                f"recovers",
                code="unavailable",
                retry_after_ms=500,
                request=rid,
            )
        )

    async def _forward_any(
        self, message: dict, rid: str, op: str
    ) -> Tuple[bytes, bool]:
        payload = encode(message)
        for link in self._ranked(None):
            try:
                reply = await self._roundtrip(
                    link, payload, timeout=self.config.shard_timeout
                )
            except (OSError, asyncio.TimeoutError):
                link.failures += 1
                link.healthy = False
                continue
            link.forwarded += 1
            self.counters["forwarded"] += 1
            return reply, False
        self.counters["unavailable"] += 1
        return encode(
            error_response(
                op,
                "no shard reachable",
                code="unavailable",
                retry_after_ms=500,
                request=rid,
            )
        ), False

    # ----------------------------------------------------------------- #
    # Status aggregation.                                               #
    # ----------------------------------------------------------------- #

    async def _shard_status(self, link: ShardLink) -> Optional[dict]:
        try:
            reply = decode(
                await self._roundtrip(
                    link, encode({"op": "status"}), timeout=STATUS_TIMEOUT
                )
            )
        except (OSError, asyncio.TimeoutError, ProtocolError):
            return None
        if not reply.get("ok"):
            return None
        return reply

    async def _status(self, rid: str) -> dict:
        """The aggregated fleet status document.

        The ``fleet`` section is a stable schema (see ``docs/fleet.md``):
        shard count, per-shard health + counters, ring version, and the
        summed shared-index counters.  Top-level ``requests`` sums the
        shards' counters so existing status consumers keep working
        against a router unmodified.
        """
        statuses = await asyncio.gather(
            *(self._shard_status(link) for link in self.shards.values())
        )
        requests_total: Dict[str, int] = {}
        shared_total: Dict[str, int] = {}
        per_shard = []
        in_flight = 0
        for link, status in zip(self.shards.values(), statuses):
            row = link.to_json()
            if status is not None:
                for name, value in status.get("requests", {}).items():
                    if isinstance(value, int):
                        requests_total[name] = (
                            requests_total.get(name, 0) + value
                        )
                shared = status.get("shared") or {}
                for name, value in shared.items():
                    if isinstance(value, int):
                        shared_total[name] = shared_total.get(name, 0) + value
                in_flight += int(status.get("in_flight", 0))
                row.update(
                    pid=status.get("pid"),
                    uptime_s=status.get("uptime_s"),
                    in_flight=status.get("in_flight", 0),
                    requests=status.get("requests", {}),
                    cache=status.get("cache", {}),
                    shared=shared,
                )
            else:
                row.update(pid=None, uptime_s=None, in_flight=0)
                row["healthy"] = False
            per_shard.append(row)
        healthy = sum(1 for row in per_shard if row["healthy"])
        return {
            "ok": True,
            "op": "status",
            "request": rid,
            "protocol": PROTOCOL,
            "role": "router",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "in_flight": in_flight,
            "requests": requests_total,
            "router": dict(self.counters),
            "fleet": {
                "shards": len(self.shards),
                "healthy": healthy,
                "ring": self.ring.stats(),
                "shared": shared_total,
                "per_shard": per_shard,
            },
        }


#: Deadline for a liveness ping against one shard, seconds.
PROBE_TIMEOUT = 2.0
#: Deadline for one shard's status reply during aggregation, seconds.
STATUS_TIMEOUT = 5.0
