"""Shard lifecycle: spawn, supervise, drain N analysis daemons.

The fleet's scaling unit is a whole *process* -- a stock ``repro
serve`` daemon on its own UNIX socket -- because processes are what
sidestep the GIL and what the batch farm's crash-isolation experience
says actually fail independently.  :class:`ShardManager` owns those
processes:

* each shard runs under its own
  :class:`~repro.service.supervisor.RestartSupervisor` (on a thread, N
  supervisors side by side), so a crashed shard respawns with backoff
  exactly like ``repro serve --supervise`` would;
* each shard gets its own **in-flight journal**, so a SIGKILL'd shard's
  admitted requests are re-executed into the cache by its replacement
  -- the fleet-wide no-lost-requests story is the per-shard journal
  story, N times;
* every shard points at the same **shared store** directory
  (:class:`~repro.fleet.store.SharedStore`), which is what makes warm
  donors and results fleet-wide;
* **drain** asks every shard for a graceful shutdown (exit 0 stops its
  supervisor) and joins the supervisor threads.

:func:`serve_fleet` is the composition ``repro serve --shards N`` runs:
spawn the shards, wait until they answer pings, run the
:class:`~repro.fleet.router.RouterDaemon` in the foreground, and drain
the shards once the router exits.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.ring import DEFAULT_REPLICAS
from repro.fleet.router import RouterConfig, RouterDaemon
from repro.service.client import NO_RETRY, ServiceClient, ServiceError
from repro.service.supervisor import RestartSupervisor

#: How long :meth:`ShardManager.wait_ready` waits for the fleet to boot.
DEFAULT_BOOT_TIMEOUT_S = 60.0


@dataclass(frozen=True)
class ShardPlan:
    """Everything needed to spawn and address one shard."""

    shard_id: str
    socket_path: str
    argv: Tuple[str, ...]


@dataclass
class FleetConfig:
    """One fleet: a front socket, N shards, one shared directory.

    ``run_dir`` holds everything the fleet writes (shard sockets,
    journals, logs, the shared store) so one directory is the whole
    operational footprint; it defaults to ``<socket_path>.fleet``.
    """

    #: The router's front socket.
    socket_path: str
    #: Number of shard daemons.
    shards: int = 3
    #: Worker threads per shard daemon.
    workers: int = 1
    #: Runtime directory; ``None``: ``<socket_path>.fleet``.
    run_dir: Optional[str] = None
    #: Shared-store directory; ``None``: ``<run_dir>/shared``.
    shared_dir: Optional[str] = None
    #: Virtual nodes per shard on the router's ring.
    replicas: int = DEFAULT_REPLICAS
    #: Router health-probe cadence, seconds.
    health_interval: Optional[float] = 2.0
    #: Per-forward deadline against a shard, seconds.
    shard_timeout: float = 600.0
    #: Consecutive-crash budget per shard supervisor.
    max_restarts: int = 5
    #: Default per-request deadline handed to every shard, seconds.
    default_deadline: Optional[float] = None
    #: Local cache entries per shard.
    cache_entries: int = 256
    #: Admission high watermark per shard.
    queue_high: int = 32
    #: Read deadline per shard connection, seconds.
    read_timeout: Optional[float] = None
    #: Extra argv appended to every shard command (tests use this).
    extra_shard_args: Tuple[str, ...] = ()
    #: Router request log; ``None`` disables it.
    log_path: Optional[str] = None

    def resolved_run_dir(self) -> str:
        return self.run_dir or f"{self.socket_path}.fleet"

    def resolved_shared_dir(self) -> str:
        return self.shared_dir or os.path.join(
            self.resolved_run_dir(), "shared"
        )


def shard_plans(config: FleetConfig) -> List[ShardPlan]:
    """The per-shard spawn plans for a fleet configuration.

    Shard ids are stable (``shard0..shardN-1``) so ring placement and
    the shared store survive restarts; each shard gets its own socket,
    journal and request log under the run directory, and all of them
    share one store directory.
    """
    if config.shards < 1:
        raise ValueError("a fleet needs at least one shard")
    run_dir = config.resolved_run_dir()
    shared = config.resolved_shared_dir()
    plans = []
    for index in range(config.shards):
        shard_id = f"shard{index}"
        socket_path = os.path.join(run_dir, f"{shard_id}.sock")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            str(config.workers),
            "--cache-entries",
            str(config.cache_entries),
            "--queue-high",
            str(config.queue_high),
            "--shared-dir",
            shared,
            "--journal-file",
            os.path.join(run_dir, f"{shard_id}.journal"),
            "--log-file",
            os.path.join(run_dir, f"{shard_id}.log"),
        ]
        if config.default_deadline is not None:
            argv += ["--deadline", str(config.default_deadline)]
        if config.read_timeout is not None:
            argv += ["--read-timeout", str(config.read_timeout)]
        argv += list(config.extra_shard_args)
        plans.append(ShardPlan(shard_id, socket_path, tuple(argv)))
    return plans


class ShardManager:
    """Spawn and supervise one fleet's shard processes.

    :param plans: the shards to run (see :func:`shard_plans`).
    :param max_restarts: per-shard consecutive-crash budget.
    :param env: environment for the children; defaults to the parent's
        with ``PYTHONPATH`` guaranteed to reach this ``repro`` package
        (children must import the same code the parent runs).
    """

    def __init__(
        self,
        plans: Sequence[ShardPlan],
        max_restarts: int = 5,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if not plans:
            raise ValueError("a fleet needs at least one shard")
        self.plans = list(plans)
        if env is None:
            import repro

            src = os.path.dirname(os.path.dirname(os.path.abspath(
                repro.__file__
            )))
            env = dict(os.environ)
            parts = [src] + (
                env.get("PYTHONPATH", "").split(os.pathsep)
                if env.get("PYTHONPATH")
                else []
            )
            env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
        self._env = env
        self.supervisors: Dict[str, RestartSupervisor] = {}
        self._threads: List[threading.Thread] = []
        for plan in self.plans:
            directory = os.path.dirname(plan.socket_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self.supervisors[plan.shard_id] = RestartSupervisor(
                plan.argv,
                max_restarts=max_restarts,
                spawn=self._spawn,
            )

    def _spawn(self, command):
        import subprocess

        return subprocess.Popen(
            command,
            env=self._env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    # ----------------------------------------------------------------- #
    # Lifecycle.                                                        #
    # ----------------------------------------------------------------- #

    def start(self) -> None:
        """Spawn every shard under its supervisor thread."""
        if self._threads:
            raise RuntimeError("the fleet is already running")
        for plan in self.plans:
            thread = threading.Thread(
                target=self.supervisors[plan.shard_id].run,
                name=f"supervise-{plan.shard_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def wait_ready(self, timeout: float = DEFAULT_BOOT_TIMEOUT_S) -> None:
        """Block until every shard answers a ping.

        :raises TimeoutError: naming the shards still unreachable.
        """
        deadline = time.monotonic() + timeout
        waiting = {plan.shard_id: plan for plan in self.plans}
        while waiting and time.monotonic() < deadline:
            for shard_id, plan in list(waiting.items()):
                if not os.path.exists(plan.socket_path):
                    continue
                try:
                    with ServiceClient(
                        socket_path=plan.socket_path,
                        timeout=2.0,
                        retry=NO_RETRY,
                    ) as client:
                        client.ping()
                    del waiting[shard_id]
                except ServiceError:
                    pass
            if waiting:
                time.sleep(0.05)
        if waiting:
            raise TimeoutError(
                f"shards not ready after {timeout:g}s: "
                f"{', '.join(sorted(waiting))}"
            )

    def drain(self, timeout: float = DEFAULT_BOOT_TIMEOUT_S) -> int:
        """Gracefully shut down every shard; returns how many drained.

        A drained shard exits 0, which stops its supervisor.  Shards
        that cannot be reached are stopped hard instead, so ``drain``
        always leaves no child processes behind.
        """
        drained = 0
        for plan in self.plans:
            try:
                with ServiceClient(
                    socket_path=plan.socket_path,
                    timeout=timeout,
                    retry=NO_RETRY,
                ) as client:
                    client.shutdown()
                drained += 1
            except ServiceError:
                self.supervisors[plan.shard_id].stop()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        return drained

    def stop(self) -> None:
        """Hard-stop every shard (SIGTERM) and join the supervisors."""
        for supervisor in self.supervisors.values():
            supervisor.stop()
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []

    def restarts(self) -> Dict[str, int]:
        """Respawn counts per shard (crash visibility for status/tests)."""
        return {
            shard_id: supervisor.restarts
            for shard_id, supervisor in self.supervisors.items()
        }


def build_router(config: FleetConfig) -> RouterDaemon:
    """The router daemon for a fleet configuration."""
    plans = shard_plans(config)
    return RouterDaemon(
        RouterConfig(
            socket_path=config.socket_path,
            shards=tuple(
                (plan.shard_id, plan.socket_path) for plan in plans
            ),
            replicas=config.replicas,
            shard_timeout=config.shard_timeout,
            health_interval=config.health_interval,
            log_path=config.log_path,
        )
    )


def serve_fleet(config: FleetConfig) -> int:
    """Run a whole fleet in the foreground; ``repro serve --shards N``.

    Spawns the shards, waits for them, serves the router until a
    ``shutdown`` request or signal, then drains the shards.  Returns a
    CLI exit code.
    """
    import asyncio
    import signal

    os.makedirs(config.resolved_run_dir(), exist_ok=True)
    os.makedirs(config.resolved_shared_dir(), exist_ok=True)
    manager = ShardManager(
        shard_plans(config), max_restarts=config.max_restarts
    )
    router = build_router(config)
    manager.start()
    try:
        manager.wait_ready()
    except TimeoutError as err:
        print(f"error: {err}", file=sys.stderr)
        manager.stop()
        return 4

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, router.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await router.start()
        print(
            f"fleet: {config.shards} shard(s) ready; router listening on "
            f"unix socket {config.socket_path}",
            flush=True,
        )
        if router.stale_socket_removed:
            print("router: removed a stale socket left by a crash", flush=True)
        await router.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    finally:
        drained = manager.drain()
        print(
            f"fleet stopped; {drained}/{config.shards} shard(s) drained "
            f"gracefully",
            flush=True,
        )
    return 0
