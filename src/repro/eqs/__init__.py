"""Systems of equations over lattices, in the three flavours of the paper.

* :class:`~repro.eqs.system.FiniteSystem` -- finitely many unknowns with a
  *static* (super-)set of dependencies per right-hand side (what the
  classic worklist solver of Fig. 2 requires);
* :class:`~repro.eqs.system.PureSystem` -- possibly infinitely many
  unknowns; right-hand sides are *pure* functions interacting with the
  current assignment only through a ``get`` callback, so dependencies can be
  discovered on the fly (what local solvers require, Section 5);
* :class:`~repro.eqs.side.SideEffectingSystem` -- pure right-hand sides
  that may additionally contribute values to other unknowns through a
  ``side`` callback (Section 6).
"""

from repro.eqs.system import (
    FiniteSystem,
    DictSystem,
    PureSystem,
    FunSystem,
    finite_from_pure,
)
from repro.eqs.tracked import TracingGet, trace_rhs
from repro.eqs.side import (
    SideEffectingSystem,
    FunSideSystem,
    DictSideSystem,
    plain_as_side,
)

__all__ = [
    "FiniteSystem",
    "DictSystem",
    "PureSystem",
    "FunSystem",
    "finite_from_pure",
    "TracingGet",
    "trace_rhs",
    "SideEffectingSystem",
    "FunSideSystem",
    "DictSideSystem",
    "plain_as_side",
]
