"""Side-effecting systems of equations (Section 6 of the paper).

A side-effecting right-hand side receives *two* callbacks::

    f_x(get, side) -> D

``get(y)`` looks up the current value of unknown ``y``; ``side(z, d)``
contributes the value ``d`` to the unknown ``z``.  The paper uses this to
express analyses that combine context-sensitive propagation of local state
with flow-insensitive accumulation into globals: the assignments to a global
``g`` performed inside some calling context side-effect the single unknown
for ``g``.

Following the paper's technical assumptions, a right-hand side must not
side-effect its own left-hand side and must side-effect any other unknown at
most once per evaluation (the solver checks the latter).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Generic, Hashable, Mapping, TypeVar

from repro.lattices.base import Lattice

X = TypeVar("X", bound=Hashable)
D = TypeVar("D")

#: A side-effecting right-hand side: ``f_x(get, side) -> D``.
SideRhs = Callable[[Callable[[X], D], Callable[[X, D], None]], D]


class SideEffectingSystem(ABC, Generic[X, D]):
    """A (possibly infinite) system of pure side-effecting equations."""

    def __init__(self, lattice: Lattice) -> None:
        self._lattice = lattice

    @property
    def lattice(self) -> Lattice:
        """The value lattice ``D``."""
        return self._lattice

    @abstractmethod
    def rhs(self, x: X) -> SideRhs:
        """Return the side-effecting right-hand side of unknown ``x``."""

    def init(self, x: X) -> D:
        """Initial value of unknown ``x`` (default: bottom)."""
        return self._lattice.bottom


class FunSideSystem(SideEffectingSystem[X, D]):
    """A side-effecting system given by a function from unknowns to RHS."""

    def __init__(
        self,
        lattice: Lattice,
        rhs_of: Callable[[X], SideRhs],
        init_of: Callable[[X], D] | None = None,
    ) -> None:
        """Create the system from ``rhs_of`` (and optionally ``init_of``)."""
        super().__init__(lattice)
        self._rhs_of = rhs_of
        self._init_of = init_of

    def rhs(self, x: X) -> SideRhs:
        return self._rhs_of(x)

    def init(self, x: X) -> D:
        if self._init_of is not None:
            return self._init_of(x)
        return self._lattice.bottom


def plain_as_side(pure_rhs: Callable) -> SideRhs:
    """Adapt an ordinary pure right-hand side to the side-effecting API."""

    def rhs(get, side):  # noqa: ARG001 - side deliberately unused
        return pure_rhs(get)

    return rhs


class DictSideSystem(SideEffectingSystem[X, D]):
    """A finite side-effecting system given literally as a dictionary."""

    def __init__(
        self,
        lattice: Lattice,
        equations: Mapping[X, SideRhs],
        init: Mapping[X, D] | None = None,
    ) -> None:
        super().__init__(lattice)
        self._equations = dict(equations)
        self._init = dict(init) if init else {}

    @property
    def unknowns(self):
        """The explicitly listed unknowns (side-effect targets may add more)."""
        return list(self._equations)

    def rhs(self, x: X) -> SideRhs:
        if x in self._equations:
            return self._equations[x]
        # Unknowns that only ever receive side effects have a constant
        # bottom right-hand side of their own.
        return lambda get, side: self._lattice.bottom

    def init(self, x: X) -> D:
        if x in self._init:
            return self._init[x]
        return self._lattice.bottom
