"""Dynamic dependency tracking for pure right-hand sides.

A right-hand side is *pure* when its only interaction with the current
variable assignment is a finite sequence of lookups through its ``get``
argument.  For pure functions, wrapping ``get`` is enough to observe the
exact set of dynamic dependencies of one evaluation -- the mechanism on
which all local solvers rest.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Tuple


class TracingGet:
    """A ``get`` wrapper recording every unknown that is looked up.

    The recorded sequence preserves lookup order and multiplicity, which the
    test-suite uses to check purity-related properties (e.g. that the next
    lookup may only depend on previously seen values).
    """

    def __init__(self, get: Callable[[Hashable], object]) -> None:
        self._get = get
        self.accessed: List[Hashable] = []

    def __call__(self, y: Hashable):
        self.accessed.append(y)
        return self._get(y)

    @property
    def accessed_set(self) -> set:
        """The set of distinct unknowns looked up so far."""
        return set(self.accessed)


def trace_rhs(
    rhs: Callable[[Callable], object], get: Callable[[Hashable], object]
) -> Tuple[object, List[Hashable]]:
    """Evaluate ``rhs`` against ``get``, returning (value, lookup sequence)."""
    tracer = TracingGet(get)
    value = rhs(tracer)
    return value, tracer.accessed
