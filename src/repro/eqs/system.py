"""Core equation-system abstractions.

An equation system consists of equations ``x = f_x`` where the right-hand
side ``f_x`` maps a variable assignment to a value.  Following the paper we
represent an assignment by a *function* ``get: X -> D`` so that right-hand
sides are pure in the sense of Hofmann, Karbyshev and Seidl: evaluating
``f_x(get)`` performs a finite sequence of lookups through ``get`` and then
returns a value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Callable,
    Collection,
    Dict,
    Generic,
    Hashable,
    Mapping,
    Sequence,
    TypeVar,
)

from repro.lattices.base import Lattice

X = TypeVar("X", bound=Hashable)
D = TypeVar("D")

#: A right-hand side: evaluates against a ``get`` callback.
Rhs = Callable[[Callable[[X], D]], D]


class PureSystem(ABC, Generic[X, D]):
    """A (possibly infinite) system of pure equations ``x = f_x``.

    Only two capabilities are required: producing the right-hand side of any
    unknown, and providing the lattice of values.  Dependencies are not
    declared statically -- local solvers discover them by instrumenting the
    ``get`` argument (see :mod:`repro.eqs.tracked`).
    """

    def __init__(self, lattice: Lattice) -> None:
        self._lattice = lattice

    @property
    def lattice(self) -> Lattice:
        """The value lattice ``D``."""
        return self._lattice

    @abstractmethod
    def rhs(self, x: X) -> Rhs:
        """Return the right-hand side ``f_x`` of unknown ``x``."""

    def init(self, x: X) -> D:
        """Initial value of unknown ``x`` (default: bottom)."""
        return self._lattice.bottom


class FiniteSystem(PureSystem[X, D]):
    """A finite system that additionally declares static dependency sets.

    ``deps(x)`` must be a superset of the unknowns actually read by
    ``rhs(x)`` under every assignment -- this is exactly the pre-condition of
    the classic worklist solver (Fig. 2 of the paper) and of the structured
    worklist solver SW (Fig. 4).
    """

    @property
    @abstractmethod
    def unknowns(self) -> Sequence[X]:
        """All unknowns of the system, in a stable order."""

    @abstractmethod
    def deps(self, x: X) -> Collection[X]:
        """A static superset of the unknowns that ``rhs(x)`` may read."""

    def infl(self) -> Dict[X, list]:
        """Compute the influence map ``infl[y] = {x | y in deps(x)} | {y}``.

        Following the paper, each unknown influences itself: this is the
        precaution needed for update operators that are not (right)
        idempotent, such as the combined operator.  The influenced sets are
        returned as insertion-ordered lists so that solver runs are
        deterministic.
        """
        influence: Dict[X, list] = {x: [x] for x in self.unknowns}
        for x in self.unknowns:
            for y in self.deps(x):
                bucket = influence.setdefault(y, [y])
                if x not in bucket:
                    bucket.append(x)
        return influence


class DictSystem(FiniteSystem[X, D]):
    """A finite system given literally as a dictionary of equations.

    The most convenient way to write down small systems (as in the paper's
    examples)::

        sys = DictSystem(natinf, {
            "x1": (lambda get: get("x2"),       ["x2"]),
            "x2": (lambda get: get("x3") + 1,   ["x3"]),
            "x3": (lambda get: get("x1"),       ["x1"]),
        })
    """

    def __init__(
        self,
        lattice: Lattice,
        equations: Mapping[X, tuple],
        init: Mapping[X, D] | None = None,
    ) -> None:
        """Create the system.

        :param equations: maps each unknown to a pair ``(rhs, deps)``.
        :param init: optional per-unknown initial values (default bottom).
        """
        super().__init__(lattice)
        self._equations = dict(equations)
        self._init = dict(init) if init else {}

    @property
    def unknowns(self) -> Sequence[X]:
        return list(self._equations)

    def rhs(self, x: X) -> Rhs:
        return self._equations[x][0]

    def deps(self, x: X) -> Collection[X]:
        return self._equations[x][1]

    def init(self, x: X) -> D:
        if x in self._init:
            return self._init[x]
        return self._lattice.bottom


class FunSystem(PureSystem[X, D]):
    """A pure system given by a function from unknowns to right-hand sides.

    This is the natural representation of *infinite* systems, e.g. the
    paper's Example 5, or interprocedural analyses whose unknowns are
    ``(procedure, context)`` pairs.
    """

    def __init__(
        self,
        lattice: Lattice,
        rhs_of: Callable[[X], Rhs],
        init_of: Callable[[X], D] | None = None,
    ) -> None:
        """Create the system from ``rhs_of`` (and optionally ``init_of``)."""
        super().__init__(lattice)
        self._rhs_of = rhs_of
        self._init_of = init_of

    def rhs(self, x: X) -> Rhs:
        return self._rhs_of(x)

    def init(self, x: X) -> D:
        if self._init_of is not None:
            return self._init_of(x)
        return self._lattice.bottom


def finite_from_pure(
    pure: PureSystem,
    unknowns: Sequence,
    deps: Mapping[Hashable, Collection] | None = None,
) -> FiniteSystem:
    """Restrict a pure system to finitely many ``unknowns``.

    If ``deps`` is not given, the dependency sets are discovered by tracing
    one evaluation of each right-hand side against the initial assignment.
    For right-hand sides whose lookups depend on looked-up *values* the
    traced sets may be too small for a sound static-worklist run; pass
    explicit ``deps`` in that case.
    """
    from repro.eqs.tracked import trace_rhs

    if deps is None:
        discovered = {}
        sigma = {x: pure.init(x) for x in unknowns}

        def lookup(y):
            return sigma.get(y, pure.lattice.bottom)

        for x in unknowns:
            _, accessed = trace_rhs(pure.rhs(x), lookup)
            discovered[x] = [y for y in accessed if y in sigma]
        deps = discovered

    class _Restricted(FiniteSystem):
        @property
        def unknowns(self) -> Sequence:
            return list(unknowns)

        def rhs(self, x):
            return pure.rhs(x)

        def deps(self, x):
            return deps[x]

        def init(self, x):
            return pure.init(x)

    return _Restricted(pure.lattice)
