"""The combine-strategy registry: named, parameterized update strategies.

The paper's central object is the box operator ⌴ -- and its variants
(⌴ₖ, delayed widening, pure widening, classic two-phase) are exactly
the knobs a production analyzer tunes per workload, as Goblint's
``solverBox.ml`` does per-solve and even per-variable.  This registry
promotes every operator of :mod:`repro.solvers.combine` (plus the
two-phase baselines) into a first-class, string-addressable strategy::

    from repro.strategies import build_combine

    op = build_combine("warrow:delay=2", lattice)
    op = build_combine("wpoint", lattice, ctx=BuildContext(cfg=cfg))

Spec strings (:mod:`repro.strategies.spec`) travel through every layer
-- the CLI's ``--op``, batch :class:`~repro.batch.jobs.JobSpec` fields
and fingerprints, the service protocol's ``update_op``, and the
supervision escalation ladder -- so "which update strategy solved this"
is one canonical string everywhere.

Two *kinds* of strategy exist:

``combine``
    A :class:`~repro.solvers.combine.Combine` factory; usable wherever
    a solver takes an operator.
``phased``
    A widen-then-narrow schedule with two separate solver passes
    (``twophase``, ``decoupled``); executed by
    :func:`repro.analysis.inter.analyze_program_twophase` rather than a
    single generic solve.

``solve_ready`` separates the strategies that terminate with a sound
post solution on their own (⌴ and friends, ascending-only widening)
from the building blocks that do not (plain ``join`` may ascend
forever on infinite-height domains; ``narrow``/``meet`` are
descending-only; ``override`` is exact iteration) -- the service and
supervision layers only accept solve-ready strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.solvers.combine import (
    BoundedJoinNarrowCombine,
    BoundedNarrowCombine,
    BoundedWarrowCombine,
    Combine,
    JoinCombine,
    MeetCombine,
    NarrowCombine,
    OverrideCombine,
    WarrowCombine,
    WidenCombine,
)
from repro.strategies.pervar import widening_point_combine
from repro.strategies.spec import (
    SpecError,
    StrategySpec,
    format_spec,
    parse_spec,
)


class UnknownStrategyError(LookupError):
    """Raised when no strategy is registered under the requested name."""


@dataclass(frozen=True)
class BuildContext:
    """Optional build-time inputs a strategy factory may consume.

    Plain combine strategies need only the lattice; the context carries
    what the richer ones want: the program CFG (``wpoint`` computes
    loop heads from it) and the collected widening thresholds
    (``threshold-widen`` documents that the domain must carry them).
    """

    #: The program's control-flow graph (``None`` when unavailable).
    cfg: object = None
    #: Widening thresholds collected from the program's constants.
    thresholds: Tuple = ()


@dataclass(frozen=True)
class StrategyInfo:
    """One registered strategy and its capabilities."""

    #: Canonical registry name (also the spec-string name).
    name: str
    #: ``"combine"`` (a Combine factory) or ``"phased"`` (two-pass).
    kind: str
    #: ``factory(lattice, params, ctx) -> Combine`` for combine-kind
    #: strategies; ``None`` for phased ones.
    factory: Optional[Callable] = None
    #: Accepted parameters as ``(key, default)`` pairs.
    params: Tuple[Tuple[str, int], ...] = ()
    #: Whether the produced operator is idempotent (``(a op b) op b ==
    #: a op b``); mirrors :attr:`Combine.idempotent` and is checked for
    #: honesty by the property suite.
    idempotent: bool = False
    #: Whether a solve driven solely by this strategy terminates with a
    #: sound post solution (the service/supervision admission criterion).
    solve_ready: bool = True
    #: Whether the strategy's precision depends on the domain carrying
    #: program-derived widening thresholds (executors then collect them).
    needs_thresholds: bool = False
    #: Whether the factory needs ``BuildContext.cfg``.
    needs_cfg: bool = False
    #: Alternate lookup names.
    aliases: Tuple[str, ...] = ()
    #: Paper (or related-work) reference.
    paper_ref: str = ""
    #: One-line description for listings.
    summary: str = ""

    def defaults(self) -> Dict[str, int]:
        return dict(self.params)


_REGISTRY: Dict[str, StrategyInfo] = {}
_CANONICAL: List[str] = []


def register_strategy(info: StrategyInfo) -> StrategyInfo:
    """Add a strategy to the registry (module-import time)."""
    if info.kind not in ("combine", "phased"):
        raise ValueError(f"kind must be 'combine' or 'phased', got {info.kind!r}")
    if info.kind == "combine" and info.factory is None:
        raise ValueError(f"combine strategy {info.name!r} needs a factory")
    for key in (info.name, *info.aliases):
        existing = _REGISTRY.get(key)
        if existing is not None and existing.name != info.name:
            raise ValueError(
                f"strategy name {key!r} already registered for {existing.name!r}"
            )
        _REGISTRY[key] = info
    if info.name not in _CANONICAL:
        _CANONICAL.append(info.name)
    return info


def get_strategy(name: str) -> StrategyInfo:
    """Look up a strategy by canonical name or alias.

    :raises UnknownStrategyError: for unregistered names.
    """
    info = _REGISTRY.get(name.strip().lower())
    if info is None:
        known = ", ".join(_CANONICAL)
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; registered strategies: {known}"
        )
    return info


def strategy_names() -> List[str]:
    """Canonical names of all registered strategies, in registration order."""
    return list(_CANONICAL)


def all_strategies() -> List[StrategyInfo]:
    """All registered strategy records, in registration order."""
    return [_REGISTRY[name] for name in _CANONICAL]


def resolve_spec(
    spec: Union[str, StrategySpec],
    *,
    widen_delay: Optional[int] = None,
) -> StrategySpec:
    """Parse + validate a spec against the registry; fill in defaults.

    The result is fully explicit: the canonical name (aliases resolved)
    and *every* accepted parameter with its effective value, so two
    resolved specs are semantically equal exactly when they compare
    equal.  ``widen_delay`` is the legacy scalar knob (CLI/batch/wire
    fields predating spec strings): it seeds the ``delay`` parameter
    only when the spec itself does not set one.

    :raises SpecError: for syntax errors, unknown parameters, or
        parameters the strategy does not accept.
    :raises UnknownStrategyError: for unregistered strategy names.
    """
    parsed = parse_spec(spec)
    info = get_strategy(parsed.name)
    accepted = info.defaults()
    params = dict(parsed.params)
    unknown = sorted(set(params) - set(accepted))
    if unknown:
        allowed = ", ".join(sorted(accepted)) or "none"
        raise SpecError(
            f"strategy {info.name!r} does not accept parameter(s) "
            f"{unknown}; accepted: {allowed}"
        )
    effective = dict(accepted)
    if widen_delay is not None and "delay" in accepted and "delay" not in params:
        effective["delay"] = int(widen_delay)
    effective.update(params)
    return StrategySpec(info.name, tuple(sorted(effective.items())))


def canonical_spec(
    spec: Union[str, StrategySpec], *, widen_delay: Optional[int] = None
) -> str:
    """The fully-resolved canonical string form of ``spec``."""
    return format_spec(resolve_spec(spec, widen_delay=widen_delay))


def is_phased(spec: Union[str, StrategySpec]) -> bool:
    """Whether ``spec`` names a phased (two-pass) strategy."""
    return get_strategy(parse_spec(spec).name).kind == "phased"


def spec_needs_thresholds(spec: Union[str, StrategySpec]) -> bool:
    """Whether ``spec`` wants program-derived widening thresholds."""
    try:
        return get_strategy(parse_spec(spec).name).needs_thresholds
    except (SpecError, UnknownStrategyError):
        return False


def build_combine(
    spec: Union[str, StrategySpec],
    lattice,
    *,
    ctx: Optional[BuildContext] = None,
    widen_delay: Optional[int] = None,
) -> Combine:
    """Instantiate the combine operator a spec describes.

    The produced operator carries the resolved spec as ``op.spec`` --
    engines stamp it into their stats, and :meth:`Combine.fresh` keeps
    it across clones.

    :raises SpecError: for phased strategies (they are two solver
        passes, not a single operator) or invalid parameters.
    """
    resolved = resolve_spec(spec, widen_delay=widen_delay)
    info = get_strategy(resolved.name)
    if info.kind != "combine":
        raise SpecError(
            f"strategy {info.name!r} is {info.kind}, not a combine operator; "
            f"run it via analyze_program_twophase"
        )
    if info.needs_cfg and (ctx is None or ctx.cfg is None):
        raise SpecError(
            f"strategy {info.name!r} needs a program CFG in the build context"
        )
    op = info.factory(lattice, resolved.as_dict(), ctx or BuildContext())
    op.spec = resolved
    return op


def strategy_listing() -> List[dict]:
    """Machine-readable records for every registered strategy.

    The payload behind ``repro strategies --json``; keys are stable API.
    """
    return [
        {
            "name": info.name,
            "aliases": list(info.aliases),
            "kind": info.kind,
            "params": {k: v for k, v in info.params},
            "idempotent": info.idempotent,
            "solve_ready": info.solve_ready,
            # Safe to iterate under a restarting solver (slr3/tdr): a
            # restarted region re-enters the operator cold, which only a
            # solve-ready combine guarantees to terminate from.
            "restart_safe": info.kind == "combine" and info.solve_ready,
            "needs_thresholds": info.needs_thresholds,
            "needs_cfg": info.needs_cfg,
            "paper_ref": info.paper_ref,
            "summary": info.summary,
        }
        for info in all_strategies()
    ]


# --------------------------------------------------------------------- #
# The supervision escalation ladder.                                    #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class EscalationRung:
    """One rung of the supervision ladder: a degraded strategy + scope."""

    #: Spec of the degraded strategy escalated unknowns switch to.
    spec: str
    #: ``"targeted"`` (the flagged oscillating unknowns) or ``"all"``
    #: (every encountered unknown).
    scope: str
    #: Human-readable degradation label for supervision reports.
    label: str


def escalation_ladder(descent_cap: int = 1) -> Tuple[EscalationRung, ...]:
    """The supervisor's walk down the registry, mildest rung first.

    Rung 1 moves the *flagged* oscillating unknowns to bounded
    narrowing (``bounded-narrow:cap=N``); rung 2 moves *everything* to
    pure widening (``bounded-narrow:cap=0``, ⌴ → ▽) -- the paper's
    always-terminating regime.  Each rung names a registered strategy,
    so the ladder is data, not code: the supervisor resolves every rung
    through :func:`build_combine`.
    """
    if descent_cap < 0:
        raise ValueError("descent_cap must be non-negative")
    return (
        EscalationRung(
            spec=f"bounded-narrow:cap={descent_cap}",
            scope="targeted",
            label=f"bounded narrowing (cap {descent_cap})",
        ),
        EscalationRung(
            spec="bounded-narrow:cap=0",
            scope="all",
            label="pure widening (⌴ → ▽)",
        ),
    )


# --------------------------------------------------------------------- #
# The catalog.                                                          #
# --------------------------------------------------------------------- #

def _simple(cls):
    def factory(lattice, params, ctx):
        return cls(lattice)

    return factory


register_strategy(StrategyInfo(
    name="override",
    kind="combine",
    factory=lambda lattice, params, ctx: OverrideCombine(),
    idempotent=True,
    solve_ready=False,
    summary="a op b = b: plain (unaccelerated) iteration for exact solutions",
    paper_ref="Sec. 2",
))

register_strategy(StrategyInfo(
    name="join",
    kind="combine",
    factory=_simple(JoinCombine),
    idempotent=True,
    solve_ready=False,
    summary="a op b = a ⊔ b: post solutions; may ascend forever on "
    "infinite-height domains",
    paper_ref="Sec. 2",
))

register_strategy(StrategyInfo(
    name="meet",
    kind="combine",
    factory=_simple(MeetCombine),
    idempotent=True,
    solve_ready=False,
    summary="a op b = a ⊓ b: pre solutions (descending refinement)",
    paper_ref="Sec. 2",
))

register_strategy(StrategyInfo(
    name="widen",
    kind="combine",
    factory=lambda lattice, params, ctx: WidenCombine(
        lattice, delay=params["delay"]
    ),
    params=(("delay", 0),),
    solve_ready=True,
    aliases=("widening",),
    summary="pure ascending widening (the Fig. 7 baseline); "
    "delay=N joins N times per unknown first",
    paper_ref="Sec. 2",
))

register_strategy(StrategyInfo(
    name="narrow",
    kind="combine",
    factory=_simple(NarrowCombine),
    solve_ready=False,
    aliases=("narrowing",),
    summary="pure descending narrowing; only sound on post solutions of "
    "monotonic systems",
    paper_ref="Sec. 2",
))

register_strategy(StrategyInfo(
    name="warrow",
    kind="combine",
    factory=lambda lattice, params, ctx: WarrowCombine(
        lattice, delay=params["delay"]
    ),
    params=(("delay", 0),),
    solve_ready=True,
    aliases=("box", "combined"),
    summary="the paper's combined operator ⌴: narrow on shrink, "
    "widen on growth",
    paper_ref="Sec. 3",
))

register_strategy(StrategyInfo(
    name="warrow-k",
    kind="combine",
    factory=lambda lattice, params, ctx: BoundedWarrowCombine(
        lattice, k=params["k"]
    ),
    params=(("k", 2),),
    solve_ready=True,
    aliases=("bounded-warrow",),
    summary="⌴ₖ: the Section 4 termination safeguard -- narrowing "
    "freezes after k narrow-to-widen switches per unknown",
    paper_ref="Sec. 4",
))

register_strategy(StrategyInfo(
    name="bounded-narrow",
    kind="combine",
    factory=lambda lattice, params, ctx: BoundedNarrowCombine(
        lattice, cap=params["cap"]
    ),
    params=(("cap", 1),),
    solve_ready=True,
    summary="widen on growth, at most cap improving narrow steps per "
    "unknown (the escalation-ladder degraded mode)",
    paper_ref="Sec. 4",
))

register_strategy(StrategyInfo(
    name="no-narrow",
    kind="combine",
    factory=lambda lattice, params, ctx: BoundedNarrowCombine(lattice, cap=0),
    solve_ready=True,
    aliases=("widen-only",),
    summary="ascending-only ⌴ → ▽ (Goblint's NarrowOption "
    "with narrowing off): keep old on shrink, widen on growth",
    paper_ref="Thm. 1-2",
))

register_strategy(StrategyInfo(
    name="threshold-widen",
    kind="combine",
    factory=lambda lattice, params, ctx: WidenCombine(
        lattice, delay=params["delay"]
    ),
    params=(("delay", 0),),
    solve_ready=True,
    needs_thresholds=True,
    summary="widening against program-derived thresholds "
    "(analysis/thresholds.py); the domain must be built with them",
    paper_ref="Sec. 8",
))

register_strategy(StrategyInfo(
    name="join-narrow",
    kind="combine",
    factory=lambda lattice, params, ctx: BoundedJoinNarrowCombine(
        lattice, bound=params["bound"]
    ),
    params=(("bound", 3),),
    solve_ready=False,
    summary="join on growth, bounded narrow on shrink (the non-point "
    "member of the wpoint map); no acceleration, so not solve-ready",
    paper_ref="Sec. 4",
))

register_strategy(StrategyInfo(
    name="wpoint",
    kind="combine",
    factory=lambda lattice, params, ctx: widening_point_combine(
        lattice, ctx.cfg, delay=params["delay"], switch_bound=params["bound"]
    ),
    params=(("delay", 0), ("bound", 3)),
    solve_ready=True,
    needs_cfg=True,
    aliases=("widening-points",),
    summary="per-variable map (Goblint idiom): ⌴ at loop heads and "
    "globals, bounded join elsewhere",
    paper_ref="Sec. 8 / Bourdoncle",
))

register_strategy(StrategyInfo(
    name="twophase",
    kind="phased",
    params=(("delay", 0),),
    solve_ready=True,
    aliases=("two-phase", "classic"),
    summary="classical baseline: a complete widening pass, then a "
    "narrowing pass (irreversible side-effect accumulation)",
    paper_ref="Sec. 2 / Ex. 8",
))

register_strategy(StrategyInfo(
    name="decoupled",
    kind="phased",
    params=(("delay", 0),),
    solve_ready=True,
    aliases=("decoupled-narrow",),
    summary="decoupled descending phase: two passes, but per-origin "
    "contribution tracking lets narrowing improve globals",
    paper_ref="Arceri-Mastroeni-Zaffanella",
))
