"""Spec strings for combine strategies: the ``name[:key=value,...]`` codec.

A strategy spec is the one-line, shell-safe form in which an update
strategy travels through every layer of the stack -- CLI flags
(``--op warrow:delay=2``), batch :class:`~repro.batch.jobs.JobSpec`
fields, the service protocol's ``update_op``, and bench matrix column
headers.  The grammar is deliberately tiny::

    spec   := name [ ':' params ]
    name   := [a-z][a-z0-9-]*
    params := param ( (',' | ':') param )*
    param  := key '=' int
    key    := [a-z][a-z0-9_-]*

All parameter values are non-negative integers (delays, caps, bounds);
that keeps the codec total and the round-trip byte-exact.  Parsing is
purely syntactic -- whether ``name`` exists and which keys it accepts is
the registry's job (:func:`repro.strategies.registry.resolve_spec`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")
_KEY_RE = re.compile(r"^[a-z][a-z0-9_-]*$")


class SpecError(ValueError):
    """A malformed strategy spec string (or invalid parameters)."""


@dataclass(frozen=True)
class StrategySpec:
    """A parsed strategy spec: canonical name plus sorted int parameters."""

    #: Strategy name (registry key, lower-case).
    name: str
    #: Parameters as a sorted tuple of ``(key, value)`` pairs, so two
    #: equal specs compare and hash equal regardless of spelling order.
    params: Tuple[Tuple[str, int], ...] = field(default=())

    def get(self, key: str, default: Optional[int] = None) -> Optional[int]:
        """The value of parameter ``key``, or ``default``."""
        for k, v in self.params:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, int]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def with_param(self, key: str, value: int) -> "StrategySpec":
        """A copy with ``key`` set (replacing any existing value)."""
        params = dict(self.params)
        params[int_key(key)] = _int_value(key, value)
        return StrategySpec(self.name, tuple(sorted(params.items())))

    def __str__(self) -> str:
        return format_spec(self)


def int_key(key: str) -> str:
    """Validate and normalise a parameter key."""
    key = key.strip().lower()
    if not _KEY_RE.match(key):
        raise SpecError(f"invalid parameter key {key!r}")
    return key


def _int_value(key: str, raw) -> int:
    try:
        value = int(raw)
    except (TypeError, ValueError) as err:
        raise SpecError(
            f"parameter {key!r} must be an integer, got {raw!r}"
        ) from err
    if value < 0:
        raise SpecError(f"parameter {key!r} must be non-negative, got {value}")
    return value


def parse_spec(text) -> StrategySpec:
    """Parse a spec string into a :class:`StrategySpec`.

    Accepts both ``,`` and ``:`` as parameter separators
    (``warrow:delay=1,k=2`` == ``warrow:delay=1:k=2``).  Idempotent on
    already-parsed specs.

    :raises SpecError: for anything the grammar rejects.
    """
    if isinstance(text, StrategySpec):
        return text
    if not isinstance(text, str) or not text.strip():
        raise SpecError(f"strategy spec must be a non-empty string, got {text!r}")
    parts = text.strip().lower().split(":")
    name = parts[0].strip()
    if not _NAME_RE.match(name):
        raise SpecError(
            f"invalid strategy name {name!r} (expected [a-z][a-z0-9-]*)"
        )
    params: Dict[str, int] = {}
    for chunk in parts[1:]:
        for item in chunk.split(","):
            item = item.strip()
            if not item:
                raise SpecError(f"empty parameter in spec {text!r}")
            if "=" not in item:
                raise SpecError(
                    f"parameter {item!r} in spec {text!r} is not key=value"
                )
            key, _, raw = item.partition("=")
            key = int_key(key)
            if key in params:
                raise SpecError(f"duplicate parameter {key!r} in spec {text!r}")
            params[key] = _int_value(key, raw.strip())
    return StrategySpec(name, tuple(sorted(params.items())))


def format_spec(spec: StrategySpec) -> str:
    """The canonical string form: name, then sorted ``key=value`` pairs.

    ``parse_spec(format_spec(s)) == s`` for every spec -- the round-trip
    the codec test pins.
    """
    if not spec.params:
        return spec.name
    rendered = ",".join(f"{k}={v}" for k, v in sorted(spec.params))
    return f"{spec.name}:{rendered}"
