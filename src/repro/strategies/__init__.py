"""Pluggable combine strategies: the registry behind ``--op <spec>``.

The subsystem has four parts:

* :mod:`repro.strategies.spec` -- the ``name[:key=value,...]`` spec
  codec (:func:`parse_spec` / :func:`format_spec`);
* :mod:`repro.strategies.registry` -- the catalog of named strategies
  and the :func:`build_combine` factory every layer calls;
* :mod:`repro.strategies.pervar` -- per-variable strategy maps (⌴ at
  widening points, join elsewhere: the Goblint idiom);
* :mod:`repro.strategies.state` -- deterministic export/import of
  stateful operators for warm starts and checkpoint resume.

See ``docs/strategies.md`` for the strategy catalog and spec grammar.
"""

from repro.strategies.pervar import (
    PerVariableCombine,
    node_widening_points,
    widening_point_combine,
)
from repro.strategies.registry import (
    BuildContext,
    EscalationRung,
    StrategyInfo,
    UnknownStrategyError,
    all_strategies,
    build_combine,
    canonical_spec,
    escalation_ladder,
    get_strategy,
    is_phased,
    register_strategy,
    resolve_spec,
    spec_needs_thresholds,
    strategy_listing,
    strategy_names,
)
from repro.strategies.spec import (
    SpecError,
    StrategySpec,
    format_spec,
    parse_spec,
)
from repro.strategies.state import export_combine_state, import_combine_state

__all__ = [
    "BuildContext",
    "EscalationRung",
    "PerVariableCombine",
    "SpecError",
    "StrategyInfo",
    "StrategySpec",
    "UnknownStrategyError",
    "all_strategies",
    "build_combine",
    "canonical_spec",
    "escalation_ladder",
    "export_combine_state",
    "format_spec",
    "get_strategy",
    "import_combine_state",
    "is_phased",
    "node_widening_points",
    "parse_spec",
    "register_strategy",
    "resolve_spec",
    "spec_needs_thresholds",
    "strategy_listing",
    "strategy_names",
    "widening_point_combine",
]
