"""Serializable combine-operator state, for warm starts and checkpoints.

Stateful strategies (delayed widening's grow counts, ⌴ₖ's switch
counters, bounded narrowing's descent counts) carry per-unknown state
that a warm-started or checkpoint-resumed solve wants back: without it,
a resumed ⌴ₖ run re-earns its narrowing budget and may diverge from the
interrupted run's trajectory.  This module walks an operator tree --
leaves expose :meth:`~repro.solvers.combine.Combine.state_parts`,
wrappers expose :meth:`~repro.solvers.combine.Combine.children` -- and
produces a deterministic JSON-able snapshot keyed by the same
:class:`~repro.incremental.codecs.UnknownCodec` encoding the solver
state uses.

Export is sorted on the JSON rendering of the encoded unknown, so two
snapshots of equal state are byte-identical (the same discipline as
:mod:`repro.incremental.state`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.incremental.codecs import UnknownCodec
from repro.solvers.combine import Combine


def export_combine_state(
    op: Combine, unknowns: Optional[UnknownCodec] = None
) -> Dict[str, Any]:
    """Snapshot ``op``'s per-unknown state (recursively) as a JSON-able dict.

    Returns ``{}`` for fully stateless operators *and* for stateful
    operators that have not accumulated any state yet, so callers can
    elide the key entirely and keep old serialized payloads
    byte-identical.
    """
    uc = unknowns if unknowns is not None else UnknownCodec()

    def walk(node: Combine) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        parts = {
            field: mapping
            for field, mapping in node.state_parts().items()
            if mapping  # empty per-unknown maps are the cold state: elide
        }
        if parts:
            out["parts"] = {
                field: sorted(
                    ([uc.encode(u), value] for u, value in mapping.items()),
                    key=lambda pair: json.dumps(pair[0], sort_keys=True),
                )
                for field, mapping in sorted(parts.items())
            }
        kids = node.children()
        if kids:
            child_out = {
                label: walk(child) for label, child in sorted(kids.items())
            }
            child_out = {k: v for k, v in child_out.items() if v}
            if child_out:
                out["children"] = child_out
        return out

    snapshot = walk(op)
    if snapshot:
        snapshot["spec"] = str(op.spec) if op.spec is not None else None
    return snapshot


def import_combine_state(
    op: Combine,
    data: Dict[str, Any],
    unknowns: Optional[UnknownCodec] = None,
) -> Combine:
    """Restore a snapshot produced by :func:`export_combine_state`.

    Loads in place and returns ``op``.  Children absent from the
    snapshot (or snapshot entries for children the operator does not
    have) are ignored -- the operator simply starts those parts cold,
    which is always sound (it can only delay acceleration, not skip it).
    """
    uc = unknowns if unknowns is not None else UnknownCodec()

    def walk(node: Combine, payload: Dict[str, Any]) -> None:
        parts = payload.get("parts")
        if parts:
            node.load_state_parts(
                {
                    field: {uc.decode(u): value for u, value in pairs}
                    for field, pairs in parts.items()
                }
            )
        kids = node.children()
        for label, child_payload in (payload.get("children") or {}).items():
            child = kids.get(label)
            if child is not None:
                walk(child, child_payload)

    if data:
        walk(op, data)
    return op
