"""Per-variable strategy maps: different operators for different unknowns.

Goblint's ``solverBox.ml`` chooses the box operator per solve *and per
variable* -- classically, widening points get the accelerated operator
while every other unknown is combined with plain join.
:class:`PerVariableCombine` is the generic router behind that idiom:
a chooser function labels each unknown, and the label selects one of
several named member operators.  Member state stays per-member, so the
router composes with any stateful strategy.

:func:`widening_point_combine` instantiates the classic map for the
interprocedural analysis: loop-head program points (computed per
function from the CFG's successor graph by
:func:`~repro.solvers.wpoints.widening_points`) and flow-insensitive
globals get the paper's ⌴, everything else the bounded join-or-narrow
safeguard (or, with ``safeguard=False``, plain join -- the textbook
idiom, which is only terminating for monotone systems).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable

from repro.solvers.combine import (
    BoundedJoinNarrowCombine,
    Combine,
    JoinCombine,
    WarrowCombine,
)
from repro.solvers.wpoints import widening_points


class PerVariableCombine(Combine):
    """Route each unknown to a named member strategy via a chooser.

    :param chooser: maps an unknown to a member label; unlisted labels
        fall back to ``default``.
    :param members: label -> member operator.
    :param default: the label used for unknowns whose chosen label is
        not in ``members``.
    """

    def __init__(
        self,
        chooser: Callable[[Hashable], str],
        members: Dict[str, Combine],
        default: str,
    ) -> None:
        if default not in members:
            raise ValueError(f"default label {default!r} not in members")
        self.chooser = chooser
        self.members = dict(members)
        self.default = default

    def reset(self) -> None:
        for member in self.members.values():
            member.reset()

    def _clone(self) -> "PerVariableCombine":
        return PerVariableCombine(
            self.chooser,
            {label: member.fresh() for label, member in self.members.items()},
            self.default,
        )

    def children(self) -> Dict[str, Combine]:
        return dict(self.members)

    def __call__(self, x, old, new):
        label = self.chooser(x)
        member = self.members.get(label)
        if member is None:
            member = self.members[self.default]
        return member(x, old, new)


def node_widening_points(cfg) -> FrozenSet:
    """Loop-head nodes of every function in ``cfg``.

    Computed as the back-edge targets of a DFS over each function's
    successor graph -- the node-level projection of the unknown-level
    :func:`~repro.solvers.wpoints.widening_points` (a ``PP`` unknown is
    a (function, context, node) triple; contexts are discovered
    dynamically, so the points are selected at node granularity).
    """
    points = set()
    for fn in cfg.functions.values():
        succs = {node: [] for node in fn.nodes}
        for edge in fn.edges:
            succs[edge.src].append(edge.dst)
        points.update(widening_points([fn.entry], lambda n: succs.get(n, ())))
    return frozenset(points)


def widening_point_combine(
    lattice,
    cfg,
    *,
    delay: int = 0,
    switch_bound: int = 3,
    safeguard: bool = True,
) -> PerVariableCombine:
    """The classic per-variable map: ⌴ at widening points, join elsewhere.

    Program points whose CFG node heads a loop -- and every non-point
    unknown (flow-insensitive globals, which close the interprocedural
    cycles) -- get the combined operator; the remaining program points
    get plain join (``safeguard=False``) or the bounded join-or-narrow
    variant (default), which keeps the Section 4 termination guarantee
    on non-monotonic systems.
    """
    points = node_widening_points(cfg)

    def chooser(x) -> str:
        node = getattr(x, "node", None)
        if node is None or node in points:
            return "accelerated"
        return "rest"

    rest: Combine
    if safeguard:
        rest = BoundedJoinNarrowCombine(lattice, bound=switch_bound)
    else:
        rest = JoinCombine(lattice)
    return PerVariableCombine(
        chooser,
        {
            "accelerated": WarrowCombine(lattice, delay=delay),
            "rest": rest,
        },
        default="rest",
    )
