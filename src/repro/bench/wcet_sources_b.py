"""WCET-suite programs, part B (larger benchmarks).

The bigger Malardalen flavours: CRC, matrix multiplication, filters,
DCT-style straight-line arithmetic, LU-decomposition-style elimination,
state-machine code, and the qsort-exam analogue whose loop bounds are
data-dependent (the benchmark the paper singles out as showing *no*
improvement).
"""

CRC = """
// crc: cyclic-redundancy-check over a message (Malardalen crc.c
// flavour: table setup + per-byte loop with bit twiddling via / and %).
int table[16];
int checksum = 0;

void make_table() {
    int i = 0;
    while (i < 16) {
        int r = i;
        int b = 0;
        while (b < 4) {
            if (r % 2 == 1) {
                r = (r / 2) - 4129 % 997;
                if (r < 0) { r = -r; }
            } else {
                r = r / 2;
            }
            b = b + 1;
        }
        table[i] = r % 4096;
        i = i + 1;
    }
}

int crc_byte(int acc, int byte) {
    int hi = (byte / 16) % 16;
    int lo = byte % 16;
    acc = (acc * 16 + table[hi]) % 4096;
    acc = (acc * 16 + table[lo]) % 4096;
    return acc;
}

int main() {
    make_table();
    int acc = 0;
    int i = 0;
    while (i < 40) {
        int byte = (i * 37 + 11) % 256;
        acc = crc_byte(acc, byte);
        i = i + 1;
    }
    checksum = acc;
    return acc;
}
"""

MATMULT = """
// matmult: 5x5 integer matrix multiplication (Malardalen flavour).
int a[25];
int b[25];
int c[25];
int trace = 0;

void init() {
    int i = 0;
    while (i < 25) {
        a[i] = i % 7;
        b[i] = (i * 3) % 5;
        i = i + 1;
    }
}

void multiply() {
    int i = 0;
    while (i < 5) {
        int j = 0;
        while (j < 5) {
            int sum = 0;
            int k = 0;
            while (k < 5) {
                sum = sum + a[i * 5 + k] * b[k * 5 + j];
                k = k + 1;
            }
            c[i * 5 + j] = sum;
            j = j + 1;
        }
        i = i + 1;
    }
}

int main() {
    init();
    multiply();
    int i = 0;
    while (i < 5) {
        trace = trace + c[i * 5 + i];
        i = i + 1;
    }
    return trace;
}
"""

FIR = """
// fir: finite-impulse-response filter (Malardalen fir.c flavour).
int coeff[8];
int input[40];
int output[40];
int peak = 0;

void setup() {
    int i = 0;
    while (i < 8) {
        coeff[i] = 8 - i;
        i = i + 1;
    }
    i = 0;
    while (i < 40) {
        input[i] = (i * 5 + 3) % 21 - 10;
        i = i + 1;
    }
}

void filter() {
    int n = 7;
    while (n < 40) {
        int acc = 0;
        int k = 0;
        while (k < 8) {
            acc = acc + coeff[k] * input[n - k];
            k = k + 1;
        }
        output[n] = acc / 8;
        if (acc / 8 > peak) {
            peak = acc / 8;
        }
        n = n + 1;
    }
}

int main() {
    setup();
    filter();
    return peak;
}
"""

FDCT = """
// fdct: straight-line block transform (Malardalen fdct.c flavour:
// long sequences of arithmetic, loop over 8 rows).
int block[64];
int dc = 0;

void setup() {
    int i = 0;
    while (i < 64) {
        block[i] = (i * 29 + 7) % 128 - 64;
        i = i + 1;
    }
}

void transform_row(int r) {
    int base = r * 8;
    int s07 = block[base + 0] + block[base + 7];
    int d07 = block[base + 0] - block[base + 7];
    int s16 = block[base + 1] + block[base + 6];
    int d16 = block[base + 1] - block[base + 6];
    int s25 = block[base + 2] + block[base + 5];
    int d25 = block[base + 2] - block[base + 5];
    int s34 = block[base + 3] + block[base + 4];
    int d34 = block[base + 3] - block[base + 4];
    int t0 = s07 + s34;
    int t1 = s16 + s25;
    int t2 = s07 - s34;
    int t3 = s16 - s25;
    block[base + 0] = (t0 + t1) / 2;
    block[base + 4] = (t0 - t1) / 2;
    block[base + 2] = (t2 * 17 + t3 * 7) / 32;
    block[base + 6] = (t2 * 7 - t3 * 17) / 32;
    block[base + 1] = (d07 * 21 + d16 * 19 + d25 * 13 + d34 * 5) / 64;
    block[base + 3] = (d07 * 19 - d16 * 5 - d25 * 21 - d34 * 13) / 64;
    block[base + 5] = (d07 * 13 - d16 * 21 + d25 * 5 + d34 * 19) / 64;
    block[base + 7] = (d07 * 5 - d16 * 13 + d25 * 19 - d34 * 21) / 64;
}

int main() {
    setup();
    int r = 0;
    while (r < 8) {
        transform_row(r);
        r = r + 1;
    }
    dc = block[0];
    return dc;
}
"""

UD = """
// ud: LU-decomposition style elimination (Malardalen ud.c flavour:
// triangular nested loops with divisions).
int m[36];
int det_sign = 1;

void setup() {
    int i = 0;
    while (i < 36) {
        m[i] = (i * 13 + 17) % 23 + 1;
        i = i + 1;
    }
    // Strengthen the diagonal so pivots stay non-zero.
    int d = 0;
    while (d < 6) {
        m[d * 6 + d] = m[d * 6 + d] + 100;
        d = d + 1;
    }
}

void eliminate() {
    int k = 0;
    while (k < 5) {
        int i = k + 1;
        while (i < 6) {
            int f = (m[i * 6 + k] * 100) / m[k * 6 + k];
            int j = k;
            while (j < 6) {
                m[i * 6 + j] = m[i * 6 + j] - (f * m[k * 6 + j]) / 100;
                j = j + 1;
            }
            i = i + 1;
        }
        k = k + 1;
    }
}

int main() {
    setup();
    eliminate();
    int acc = 0;
    int d = 0;
    while (d < 6) {
        acc = acc + m[d * 6 + d];
        d = d + 1;
    }
    return acc % 997;
}
"""

QSORT_EXAM = """
// qsort-exam: in-place quicksort with an explicit stack over *input*
// data (the original sorts a float array read from input, which an
// integer interval analysis cannot bound).  Every loop bound in main is
// data-dependent, so there is nothing for interleaved narrowing to
// recover -- the benchmark for which the paper reports *no* improvement.
int v[20];
int stack[40];

void setup(int seed) {
    int i = 0;
    while (i < 20) {
        v[i] = seed + ((i * 11 + 3) % 20) - seed / 2;
        i = i + 1;
    }
}

int main(int seed) {
    setup(seed);
    int sp = 0;
    stack[0] = 0;
    stack[1] = 19;
    sp = 2;
    while (sp > 0) {
        int hi = stack[sp - 1];
        int lo = stack[sp - 2];
        sp = sp - 2;
        if (lo < hi) {
            int pivot = v[hi];
            int i = lo - 1;
            int j = lo;
            while (j < hi) {
                if (v[j] <= pivot) {
                    i = i + 1;
                    int t = v[i];
                    v[i] = v[j];
                    v[j] = t;
                }
                j = j + 1;
            }
            int t2 = v[i + 1];
            v[i + 1] = v[hi];
            v[hi] = t2;
            int p = i + 1;
            stack[sp] = lo;
            stack[sp + 1] = p - 1;
            sp = sp + 2;
            stack[sp] = p + 1;
            stack[sp + 1] = hi;
            sp = sp + 2;
        }
    }
    return v[10];
}
"""

STATEMATE = """
// statemate: generated-state-machine style code (Malardalen flavour:
// flag-driven branching inside a driver loop, many global flags).
int mode = 0;
int alarm = 0;
int steps = 0;

int step(int input) {
    if (mode == 0) {
        if (input > 5) {
            mode = 1;
        }
        return 0;
    }
    if (mode == 1) {
        if (input > 8) {
            mode = 2;
            alarm = alarm + 1;
        } else {
            if (input < 2) {
                mode = 0;
            }
        }
        return 1;
    }
    if (mode == 2) {
        if (input < 4) {
            mode = 1;
        }
        return 2;
    }
    mode = 0;
    return -1;
}

int main() {
    int t = 0;
    while (t < 50) {
        int input = (t * 7 + 3) % 11;
        int r = step(input);
        steps = steps + r;
        t = t + 1;
    }
    return steps;
}
"""

EDN = """
// edn: signal-processing kernel collection (Malardalen edn.c flavour:
// several independent vector loops feeding global results).
int vec1[32];
int vec2[32];
int dotp = 0;
int maxval = 0;
int zeros = 0;

void setup() {
    int i = 0;
    while (i < 32) {
        vec1[i] = (i * 9 + 4) % 15 - 7;
        vec2[i] = (i * 5 + 2) % 13 - 6;
        i = i + 1;
    }
}

void kernels() {
    int i = 0;
    while (i < 32) {
        dotp = dotp + vec1[i] * vec2[i];
        i = i + 1;
    }
    i = 0;
    while (i < 32) {
        if (vec1[i] > maxval) {
            maxval = vec1[i];
        }
        i = i + 1;
    }
    i = 0;
    while (i < 32) {
        if (vec2[i] == 0) {
            zeros = zeros + 1;
        }
        i = i + 1;
    }
}

int main() {
    setup();
    kernels();
    return dotp % 100 + maxval + zeros;
}
"""

DUFF = """
// duff: unrolled copy loop with remainder handling (Malardalen duff.c
// flavour, without the fall-through switch).
int src[48];
int dst[48];
int copied = 0;

void setup() {
    int i = 0;
    while (i < 48) {
        src[i] = i * 2 + 1;
        i = i + 1;
    }
}

void copy(int n) {
    int i = 0;
    int whole = n / 4;
    int rest = n % 4;
    int w = 0;
    while (w < whole) {
        int base = w * 4;
        dst[base] = src[base];
        dst[base + 1] = src[base + 1];
        dst[base + 2] = src[base + 2];
        dst[base + 3] = src[base + 3];
        copied = copied + 4;
        w = w + 1;
    }
    int r = 0;
    while (r < rest) {
        dst[whole * 4 + r] = src[whole * 4 + r];
        copied = copied + 1;
        r = r + 1;
    }
}

int main() {
    setup();
    copy(43);
    return copied;
}
"""

NDES = """
// ndes: bit-mangling rounds over data blocks (Malardalen ndes.c
// flavour: rounds of arithmetic with table lookups and accumulation).
int sbox[16];
int keys[8];
int digest = 0;

void setup() {
    int i = 0;
    while (i < 16) {
        sbox[i] = (i * 7 + 5) % 16;
        i = i + 1;
    }
    i = 0;
    while (i < 8) {
        keys[i] = (i * 11 + 3) % 64;
        i = i + 1;
    }
}

int round_fn(int block, int key) {
    int mixed = (block + key) % 256;
    int hi = (mixed / 16) % 16;
    int lo = mixed % 16;
    return (sbox[hi] * 16 + sbox[lo]) % 256;
}

int main() {
    setup();
    int block = 90;
    int r = 0;
    while (r < 16) {
        int key = keys[r % 8];
        block = round_fn(block, key);
        digest = (digest + block) % 9973;
        r = r + 1;
    }
    return digest;
}
"""
