"""WCET-suite programs, part C (additional Malardalen flavours).

Rounds the suite out towards the breadth of the original collection:
signal compression, Fibonacci search, integer square roots, selection,
matrix inversion loops, recursive descent, and branch-dense decision
cascades.
"""

ADPCM = """
// adpcm: adaptive quantiser step loops (Malardalen adpcm.c flavour).
int step_table[16];
int encoded = 0;

void build_table() {
    int i = 0;
    int step = 7;
    while (i < 16) {
        step_table[i] = step;
        step = step + step / 2 + 1;
        i = i + 1;
    }
}

int quantize(int sample) {
    int index = 0;
    int best = 0;
    int i = 0;
    while (i < 16) {
        int delta = sample - step_table[i];
        if (delta < 0) { delta = -delta; }
        if (i == 0) {
            best = delta;
        } else {
            if (delta < best) {
                best = delta;
                index = i;
            }
        }
        i = i + 1;
    }
    return index;
}

int main() {
    build_table();
    int t = 0;
    while (t < 32) {
        int sample = (t * 97 + 13) % 512;
        int q = quantize(sample);
        encoded = encoded + q;
        t = t + 1;
    }
    return encoded;
}
"""

COMPRESS = """
// compress: run-length encoding of a buffer (Malardalen compress.c
// flavour: scanning loop with inner run detection).
int input[64];
int out_len = 0;

void setup() {
    int i = 0;
    while (i < 64) {
        input[i] = (i / 5) % 4;
        i = i + 1;
    }
}

int main() {
    setup();
    int i = 0;
    while (i < 64) {
        int value = input[i];
        int run = 1;
        int moving = 1;
        while (moving) {
            if (i + run < 64) {
                if (input[i + run] == value) {
                    run = run + 1;
                } else {
                    moving = 0;
                }
            } else {
                moving = 0;
            }
        }
        out_len = out_len + 2;
        i = i + run;
    }
    return out_len;
}
"""

FIBSEARCH = """
// fibsearch: Fibonacci search in a sorted table.
int table[34];
int probes = 0;

void setup() {
    int i = 0;
    while (i < 34) {
        table[i] = i * 4 + 1;
        i = i + 1;
    }
}

int fib_search(int key) {
    int fib2 = 0;
    int fib1 = 1;
    int fib = 1;
    while (fib < 34) {
        fib2 = fib1;
        fib1 = fib;
        fib = fib1 + fib2;
    }
    int offset = -1;
    while (fib > 1) {
        int i = offset + fib2;
        if (i > 33) { i = 33; }
        probes = probes + 1;
        if (table[i] < key) {
            fib = fib1;
            fib1 = fib2;
            fib2 = fib - fib1;
            offset = i;
        } else {
            if (table[i] > key) {
                fib = fib2;
                fib1 = fib1 - fib2;
                fib2 = fib - fib1;
            } else {
                return i;
            }
        }
    }
    if (offset + 1 <= 33) {
        if (table[offset + 1] == key) {
            return offset + 1;
        }
    }
    return -1;
}

int main() {
    setup();
    int hits = 0;
    int q = 0;
    while (q < 10) {
        int r = fib_search(q * 13 + 1);
        if (r >= 0) { hits = hits + 1; }
        q = q + 1;
    }
    return hits;
}
"""

ISQRT = """
// isqrt: integer square root by bisection (Malardalen sqrt flavour).
int iterations = 0;

int isqrt(int n) {
    if (n < 2) { return n; }
    int lo = 1;
    int hi = n;
    while (lo + 1 < hi) {
        int mid = (lo + hi) / 2;
        iterations = iterations + 1;
        if (mid * mid <= n) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

int main() {
    int total = 0;
    int n = 0;
    while (n < 30) {
        int r = isqrt(n * n + n);
        total = total + r;
        n = n + 1;
    }
    return total;
}
"""

SELECT = """
// select: k-th smallest by repeated partitioning over *input* data
// (Malardalen select.c flavour: data-dependent bounds, like qsort-exam).
int a[16];

void setup(int seed) {
    int i = 0;
    while (i < 16) {
        a[i] = seed + ((i * 7 + 5) % 16) - seed / 3;
        i = i + 1;
    }
}

int select_kth(int k) {
    int lo = 0;
    int hi = 15;
    while (lo < hi) {
        int pivot = a[k];
        int i = lo;
        int j = hi;
        while (i <= j) {
            while (a[i] < pivot) { i = i + 1; }
            while (pivot < a[j]) { j = j - 1; }
            if (i <= j) {
                int t = a[i];
                a[i] = a[j];
                a[j] = t;
                i = i + 1;
                j = j - 1;
            }
        }
        if (j < k) { lo = i; }
        if (k < i) { hi = j; }
    }
    return a[k];
}

int main(int seed) {
    setup(seed);
    int r = select_kth(8);
    return r;
}
"""

MINVER = """
// minver: Gauss-Jordan style inversion loops over a 3x3 matrix
// (Malardalen minver.c flavour, fixed-point arithmetic via scaling).
int m[9];
int inv[9];
int pivots = 0;

void setup() {
    m[0] = 4; m[1] = 1; m[2] = 0;
    m[3] = 1; m[4] = 5; m[5] = 1;
    m[6] = 0; m[7] = 1; m[8] = 6;
    int i = 0;
    while (i < 9) {
        inv[i] = 0;
        i = i + 1;
    }
    inv[0] = 100; inv[4] = 100; inv[8] = 100;
}

int main() {
    setup();
    int col = 0;
    while (col < 3) {
        int p = m[col * 3 + col];
        if (p == 0) { p = 1; }
        pivots = pivots + 1;
        int j = 0;
        while (j < 3) {
            m[col * 3 + j] = (m[col * 3 + j] * 100) / p;
            inv[col * 3 + j] = (inv[col * 3 + j] * 100) / p;
            j = j + 1;
        }
        int row = 0;
        while (row < 3) {
            if (row != col) {
                int f = m[row * 3 + col];
                int jj = 0;
                while (jj < 3) {
                    m[row * 3 + jj] = m[row * 3 + jj] * 100
                        - (f * m[col * 3 + jj]);
                    inv[row * 3 + jj] = inv[row * 3 + jj] * 100
                        - (f * inv[col * 3 + jj]);
                    jj = jj + 1;
                }
            }
            row = row + 1;
        }
        col = col + 1;
    }
    return pivots;
}
"""

RECURSION = """
// recursion: binary recursion depth testing (Malardalen recursion.c
// flavour: the classic naive Fibonacci).
int calls = 0;

int fib(int n) {
    calls = calls + 1;
    if (n < 2) {
        return n;
    }
    int a = fib(n - 1);
    int b = fib(n - 2);
    return a + b;
}

int main() {
    int r = fib(12);
    return r;
}
"""

COVER = """
// cover: branch-dense decision cascades inside a driver loop
// (Malardalen cover.c flavour: many small switch-like functions).
int c0 = 0;
int c1 = 0;
int c2 = 0;

int swi10(int x) {
    if (x == 0) { return 1; }
    if (x == 1) { return 3; }
    if (x == 2) { return 5; }
    if (x == 3) { return 7; }
    if (x == 4) { return 9; }
    if (x == 5) { return 11; }
    if (x == 6) { return 13; }
    if (x == 7) { return 15; }
    if (x == 8) { return 17; }
    return 19;
}

int swi4(int x) {
    if (x == 0) { return 2; }
    if (x == 1) { return 4; }
    if (x == 2) { return 6; }
    return 8;
}

int main() {
    int i = 0;
    while (i < 60) {
        int v = swi10(i % 10);
        c0 = c0 + v;
        if (i % 2 == 0) {
            int w = swi4(i % 4);
            c1 = c1 + w;
        } else {
            c2 = c2 + 1;
        }
        i = i + 1;
    }
    return c0 + c1 + c2;
}
"""
