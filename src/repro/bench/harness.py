"""Experiment drivers: one function per paper table/figure.

Each driver returns plain dataclasses with the same rows/series the paper
reports, so that tests can assert on the *shape* of the results and the
benchmark modules can print them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.analysis import IntervalDomain, analyze_program
from repro.analysis.compare import compare_results
from repro.analysis.inter import (
    ContextPolicy,
    InsensitiveContext,
    InterAnalysis,
    analyze_program_twophase,
    sign_context,
)
from repro.bench.spec import PROGRAMS as SPEC_PROGRAMS
from repro.bench.wcet import PROGRAMS as WCET_PROGRAMS
from repro.lang import compile_program
from repro.solvers import WarrowCombine, WidenCombine
from repro.solvers.registry import get_solver


# --------------------------------------------------------------------- #
# Figure 7: precision of the combined operator vs two-phase solving.    #
# --------------------------------------------------------------------- #

@dataclass
class Fig7Row:
    """One bar of Figure 7."""

    name: str
    loc: int
    improved: int
    total: int
    worse: int
    #: Wall time for both analyses of this benchmark, seconds.
    seconds: float = 0.0

    @property
    def percent(self) -> float:
        return 100.0 * self.improved / self.total if self.total else 0.0


@dataclass
class Fig7Result:
    """The whole figure: per-benchmark bars plus the weighted average."""

    rows: List[Fig7Row]

    @property
    def weighted_average(self) -> float:
        improved = sum(r.improved for r in self.rows)
        total = sum(r.total for r in self.rows)
        return 100.0 * improved / total if total else 0.0

    @property
    def total_seconds(self) -> float:
        """Total analysis wall time (the paper: "about 14 seconds for all
        programs together" on their machine)."""
        return sum(r.seconds for r in self.rows)


def run_fig7(
    names: Optional[List[str]] = None, max_evals: int = 5_000_000
) -> Fig7Result:
    """Reproduce Figure 7 on the WCET suite.

    For every benchmark, run the combined-operator solver and the
    two-phase baseline, then count the program points where the combined
    operator is strictly more precise.
    """
    dom = IntervalDomain()
    programs = [
        p
        for p in sorted(WCET_PROGRAMS.values(), key=lambda p: (p.loc, p.name))
        if names is None or p.name in names
    ]
    rows = []
    for prog in programs:
        cfg = compile_program(prog.source)
        start = time.perf_counter()
        combined = analyze_program(cfg, dom, max_evals=max_evals)
        classical = analyze_program_twophase(cfg, dom, max_evals=max_evals)
        elapsed = time.perf_counter() - start
        cmp_ = compare_results(combined, classical)
        rows.append(
            Fig7Row(
                name=prog.name,
                loc=prog.loc,
                improved=cmp_.better,
                total=cmp_.total,
                worse=cmp_.worse,
                seconds=elapsed,
            )
        )
    return Fig7Result(rows)


# --------------------------------------------------------------------- #
# Table 1: run-time/unknown scaling on the SpecCPU-like suite.          #
# --------------------------------------------------------------------- #

@dataclass
class Table1Cell:
    """One (program, configuration) measurement."""

    seconds: float
    unknowns: int
    evaluations: int


@dataclass
class Table1Row:
    """One program row: four configurations, as in the paper."""

    name: str
    loc: int
    nocontext_widen: Table1Cell
    nocontext_warrow: Table1Cell
    context_widen: Table1Cell
    context_warrow: Table1Cell


def _solve_config(
    cfg, policy: ContextPolicy, use_warrow: bool, max_evals: int
) -> Table1Cell:
    dom = IntervalDomain()
    analysis = InterAnalysis(cfg, dom, policy)
    if use_warrow:
        op = WarrowCombine(analysis.lattice, delay=1)
    else:
        op = WidenCombine(analysis.lattice, delay=1)
    solve = get_solver("slr+", side_effecting=True)
    start = time.perf_counter()
    result = solve(
        analysis.system(), op, analysis.root(), max_evals=max_evals
    )
    elapsed = time.perf_counter() - start
    return Table1Cell(
        seconds=elapsed,
        unknowns=result.stats.unknowns,
        evaluations=result.stats.evaluations,
    )


# --------------------------------------------------------------------- #
# Memoization smoke check: same results, strictly less work.            #
# --------------------------------------------------------------------- #

@dataclass
class MemoSmokeRow:
    """One solver's plain-vs-memoized comparison on a random system."""

    solver: str
    evaluations_plain: int
    evaluations_memo: int
    memo_hits: int
    memo_misses: int
    #: Whether both runs produced the same mapping (they must).
    identical: bool

    @property
    def hit_rate(self) -> float:
        consultations = self.memo_hits + self.memo_misses
        return self.memo_hits / consultations if consultations else 0.0


def run_memo_smoke(
    size: int = 12,
    seed: int = 0,
    solvers=("sw", "slr"),
    max_evals: int = 1_000_000,
) -> List[MemoSmokeRow]:
    """Run memoizable solvers with the RHS cache off and on.

    On a random monotone interval system, each solver must produce an
    identical mapping in both modes while the memoized run performs at
    most as many right-hand-side evaluations -- the smoke check behind the
    ``benchmark_smoke`` test job.
    """
    from repro.bench.randsys import RandomSystemConfig, random_interval_system

    system = random_interval_system(RandomSystemConfig(size=size, seed=seed))
    lat = system.lattice
    rows = []
    for name in solvers:
        spec = get_solver(name, memoize=True)

        def run(memoize: bool):
            op = WarrowCombine(lat)
            if spec.scope == "local":
                return spec(
                    system, op, "x0", max_evals=max_evals, memoize=memoize
                )
            return spec(system, op, max_evals=max_evals, memoize=memoize)

        plain = run(False)
        memo = run(True)
        identical = set(plain.sigma) == set(memo.sigma) and all(
            lat.equal(plain.sigma[x], memo.sigma[x]) for x in plain.sigma
        )
        rows.append(
            MemoSmokeRow(
                solver=spec.name,
                evaluations_plain=plain.stats.evaluations,
                evaluations_memo=memo.stats.evaluations,
                memo_hits=memo.stats.memo_hits,
                memo_misses=memo.stats.memo_misses,
                identical=identical,
            )
        )
    return rows


def run_table1(
    names: Optional[List[str]] = None, max_evals: int = 10_000_000
) -> List[Table1Row]:
    """Reproduce Table 1 on the SpecCPU-like suite.

    Context-insensitive and context-sensitive interval analysis, each
    solved with plain widening and with the combined operator; the row
    reports solver time and the number of encountered unknowns, exactly
    the columns of the paper's table.  The context-sensitive variant uses
    the sign projection of the parameters (the analogue of the paper's
    "all non-interval values of locals").
    """
    dom = IntervalDomain()
    rows = []
    for prog in SPEC_PROGRAMS:
        if names is not None and prog.name not in names:
            continue
        source = prog.source
        cfg = compile_program(source)
        loc = sum(1 for line in source.splitlines() if line.strip())
        insensitive = InsensitiveContext()
        sensitive = sign_context(dom)
        rows.append(
            Table1Row(
                name=prog.name,
                loc=loc,
                nocontext_widen=_solve_config(cfg, insensitive, False, max_evals),
                nocontext_warrow=_solve_config(cfg, insensitive, True, max_evals),
                context_widen=_solve_config(cfg, sensitive, False, max_evals),
                context_warrow=_solve_config(cfg, sensitive, True, max_evals),
            )
        )
    return rows
