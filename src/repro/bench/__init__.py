"""Workloads and harnesses for the paper's experimental evaluation.

* :mod:`repro.bench.randsys` -- deterministic random equation systems over
  the shipped lattices (monotone by construction, with optional
  non-monotonicity injection) used for property tests and the
  Theorem 1/2 bound experiments;
* :mod:`repro.bench.wcet` -- the Malardalen-WCET-like mini-C suite behind
  the Figure 7 precision experiment;
* :mod:`repro.bench.spec` -- the synthetic SpecCPU-like program generator
  behind the Table 1 scalability experiment;
* :mod:`repro.bench.harness` -- functions that run one experiment and
  return the rows the paper reports;
* :mod:`repro.bench.reporting` -- plain-text table/series rendering.
"""

from repro.bench.randsys import (
    RandomSystemConfig,
    random_monotone_system,
    random_nonmonotone_system,
)

__all__ = [
    "RandomSystemConfig",
    "random_monotone_system",
    "random_nonmonotone_system",
]
