"""WCET-suite programs, part A (smaller benchmarks).

Hand-written mini-C renditions of the classic Malardalen WCET benchmark
flavours (binary search, recursion, sorting, counting).  Each program is
self-contained, terminating, and exercises the loop/branch/global patterns
the paper's Figure 7 experiment measures.
"""

FIBCALL = """
// fibcall: iterative Fibonacci (Malardalen fibcall.c flavour).
int fib_last = 0;

int fib(int n) {
    int a = 0;
    int b = 1;
    int i = 0;
    while (i < n) {
        int t = a + b;
        a = b;
        b = t;
        i = i + 1;
    }
    fib_last = a;
    return a;
}

int main() {
    int r = fib(30);
    return r;
}
"""

FAC = """
// fac: recursive factorial accumulated into a global.
int total = 0;

int fac(int n) {
    if (n == 0) {
        return 1;
    }
    int rest = fac(n - 1);
    return n * rest;
}

int main() {
    int s = 0;
    int i = 0;
    while (i <= 5) {
        int f = fac(i);
        s = s + f;
        i = i + 1;
    }
    total = s;
    return s;
}
"""

BS = """
// bs: binary search over a sorted table (Malardalen bs.c flavour).
int data[16];
int hits = 0;
int last_mid = 0;

void fill() {
    int i = 0;
    while (i < 16) {
        data[i] = i * 3;
        i = i + 1;
    }
}

int binary_search(int key) {
    int low = 0;
    int up = 15;
    int found = -1;
    while (low <= up) {
        int mid = (low + up) / 2;
        last_mid = mid;
        if (data[mid] == key) {
            found = mid;
            up = low - 1;
        } else {
            if (data[mid] > key) {
                up = mid - 1;
            } else {
                low = mid + 1;
            }
        }
    }
    return found;
}

int main() {
    fill();
    int q = 0;
    while (q < 8) {
        int r = binary_search(q * 5);
        if (r >= 0) {
            hits = hits + 1;
        }
        q = q + 1;
    }
    return hits;
}
"""

CNT = """
// cnt: count and sum non-negative values in a matrix
// (Malardalen cnt.c flavour: global counters).
int mat[100];
int postotal = 0;
int poscnt = 0;

void init() {
    int i = 0;
    int seed = 7;
    while (i < 100) {
        seed = (seed * 13 + 5) % 31;
        mat[i] = seed - 15;
        i = i + 1;
    }
}

void count() {
    int i = 0;
    while (i < 100) {
        int v = mat[i];
        if (v >= 0) {
            postotal = postotal + v;
            poscnt = poscnt + 1;
        }
        i = i + 1;
    }
}

int main() {
    init();
    count();
    return poscnt;
}
"""

INSERTSORT = """
// insertsort: insertion sort on a small array (Malardalen flavour).
int a[11];
int swaps = 0;

void setup() {
    int i = 0;
    while (i < 11) {
        a[i] = (37 - i * 3) % 17;
        i = i + 1;
    }
}

void sort() {
    int i = 1;
    while (i < 11) {
        int key = a[i];
        int j = i - 1;
        // mini-C evaluates both operands of &&, so the classic
        // `j >= 0 && a[j] > key` condition is split with a flag.
        int moving = 1;
        while (moving) {
            if (j < 0) {
                moving = 0;
            } else {
                if (a[j] > key) {
                    a[j + 1] = a[j];
                    j = j - 1;
                    swaps = swaps + 1;
                } else {
                    moving = 0;
                }
            }
        }
        a[j + 1] = key;
        i = i + 1;
    }
}

int main() {
    setup();
    sort();
    return a[0];
}
"""

BSORT = """
// bsort: bubble sort with early exit (Malardalen bsort100 flavour).
int arr[25];
int passes = 0;

void setup() {
    int i = 0;
    while (i < 25) {
        arr[i] = (25 - i) * 2;
        i = i + 1;
    }
}

int main() {
    setup();
    int sorted = 0;
    int limit = 24;
    while (!sorted && limit > 0) {
        sorted = 1;
        int i = 0;
        while (i < limit) {
            if (arr[i] > arr[i + 1]) {
                int t = arr[i];
                arr[i] = arr[i + 1];
                arr[i + 1] = t;
                sorted = 0;
            }
            i = i + 1;
        }
        passes = passes + 1;
        limit = limit - 1;
    }
    return passes;
}
"""

PRIME = """
// prime: trial-division primality counting (Malardalen prime.c flavour).
int found = 0;
int largest = 0;

int is_prime(int n) {
    if (n < 2) {
        return 0;
    }
    int d = 2;
    while (d * d <= n) {
        if (n % d == 0) {
            return 0;
        }
        d = d + 1;
    }
    return 1;
}

int main() {
    int n = 2;
    while (n < 80) {
        int p = is_prime(n);
        if (p) {
            found = found + 1;
            largest = n;
        }
        n = n + 1;
    }
    return found;
}
"""

EXPINT = """
// expint: exponential-integral style nested computation
// (Malardalen expint.c flavour: triangular nested loops).
int terms = 0;

int expint(int n, int x) {
    int acc = 1;
    int i = 1;
    while (i <= n) {
        int inner = 0;
        int j = 1;
        while (j <= i) {
            inner = inner + x * j;
            j = j + 1;
        }
        acc = acc + inner / (i * 2);
        terms = terms + 1;
        i = i + 1;
    }
    return acc;
}

int main() {
    int r = expint(12, 3);
    return r % 100;
}
"""

LCDNUM = """
// lcdnum: table-driven digit decoding (Malardalen lcdnum.c flavour:
// a big switch-like cascade).
int out = 0;

int seven_seg(int d) {
    if (d == 0) { return 63; }
    if (d == 1) { return 6; }
    if (d == 2) { return 91; }
    if (d == 3) { return 79; }
    if (d == 4) { return 102; }
    if (d == 5) { return 109; }
    if (d == 6) { return 125; }
    if (d == 7) { return 7; }
    if (d == 8) { return 127; }
    if (d == 9) { return 111; }
    return 0;
}

int main() {
    int n = 0;
    while (n < 10) {
        int seg = seven_seg(n);
        out = out + seg;
        n = n + 1;
    }
    return out % 256;
}
"""

JANNE_COMPLEX = """
// janne_complex: the classic irregular double loop whose inner bound
// depends on the outer variable in a non-obvious way.
int inner_total = 0;

int complex_loops(int a, int b) {
    while (a < 30) {
        while (b < a) {
            if (b > 5) {
                b = b * 3;
            } else {
                b = b + 2;
            }
            if (b >= 10 && b <= 12) {
                a = a + 10;
            } else {
                a = a + 1;
            }
            inner_total = inner_total + 1;
        }
        a = a + 2;
        b = b - 10;
    }
    return a;
}

int main() {
    int r = complex_loops(1, 1);
    return r;
}
"""

NS = """
// ns: search in a multi-dimensional array, flattened
// (Malardalen ns.c flavour: deep loop nest with early exit).
int keys[64];
int foundpos = -1;

void setup() {
    int i = 0;
    while (i < 64) {
        keys[i] = (i * 7) % 64;
        i = i + 1;
    }
}

int search(int target) {
    int i = 0;
    while (i < 4) {
        int j = 0;
        while (j < 4) {
            int k = 0;
            while (k < 4) {
                int pos = i * 16 + j * 4 + k;
                if (keys[pos] == target) {
                    foundpos = pos;
                    return pos;
                }
                k = k + 1;
            }
            j = j + 1;
        }
        i = i + 1;
    }
    return -1;
}

int main() {
    setup();
    int r = search(21);
    return r;
}
"""
