"""Deterministic random equation systems for tests and bound experiments.

Systems are built from a small expression language of *monotone* operators
over a lattice, so that the monotonicity pre-conditions of Theorems 1--3 are
satisfied by construction.  A separate constructor injects controlled
non-monotonicity (the situation created by widening inside right-hand sides
and by context-sensitive interprocedural analysis).

All generation is seeded: the same configuration always produces the same
system, which keeps benchmark results reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.eqs.system import DictSystem
from repro.lattices import INF, NatInf, PowersetLattice


@dataclass(frozen=True)
class RandomSystemConfig:
    """Shape parameters for a random system."""

    #: Number of unknowns.
    size: int = 8
    #: Maximum number of unknowns an equation reads.
    max_deps: int = 3
    #: RNG seed.
    seed: int = 0


# --------------------------------------------------------------------- #
# Monotone expression terms over N | {oo}.                              #
# --------------------------------------------------------------------- #

def _nat_term(
    rng: random.Random, unknowns: Sequence[str]
) -> Tuple[Callable, List[str]]:
    """One random monotone term: returns (rhs, deps)."""
    kind = rng.choice(["const", "var", "inc", "max", "min"])
    if kind == "const":
        c = rng.randrange(0, 8)
        return (lambda get, c=c: c), []
    if kind == "var":
        v = rng.choice(unknowns)
        return (lambda get, v=v: get(v)), [v]
    if kind == "inc":
        v = rng.choice(unknowns)
        k = rng.randrange(1, 4)
        return (lambda get, v=v, k=k: get(v) + k), [v]
    if kind == "max":
        v, w = rng.choice(unknowns), rng.choice(unknowns)
        return (lambda get, v=v, w=w: max(get(v), get(w))), [v, w]
    v, w = rng.choice(unknowns), rng.choice(unknowns)
    k = rng.randrange(0, 3)
    return (lambda get, v=v, w=w, k=k: min(get(v) + k, get(w) + k)), [v, w]


def random_monotone_system(config: RandomSystemConfig) -> DictSystem:
    """A random *monotone* system over ``N | {oo}``.

    Every right-hand side is composed of constants, variables, increments,
    binary max and binary min -- all monotone, so the termination theorems
    apply.
    """
    rng = random.Random(config.seed)
    unknowns = [f"x{i}" for i in range(config.size)]
    equations = {}
    for x in unknowns:
        terms = []
        deps: List[str] = []
        for _ in range(rng.randrange(1, config.max_deps + 1)):
            term, term_deps = _nat_term(rng, unknowns)
            terms.append(term)
            deps.extend(term_deps)

        def rhs(get, terms=tuple(terms)):
            return max(t(get) for t in terms)

        equations[x] = (rhs, sorted(set(deps)))
    return DictSystem(NatInf(), equations)


def random_nonmonotone_system(config: RandomSystemConfig) -> DictSystem:
    """A random system with injected *non-monotone* right-hand sides.

    Roughly every third equation passes one sub-term through a step
    function that maps oo back to a finite constant -- exactly the kind of
    "bigger input, smaller output" behaviour that widening inside
    right-hand sides produces.  Solvers instantiated with the plain
    combined operator may legitimately diverge on these; the k-bounded
    operator must not.
    """
    rng = random.Random(config.seed)
    base = random_monotone_system(config)
    equations = {}
    for i, x in enumerate(base.unknowns):
        rhs, deps = base._equations[x]  # noqa: SLF001 - test/bench helper
        if i % 3 == 1 and deps:
            v = deps[0]
            cap = rng.randrange(1, 6)

            def twisted(get, rhs=rhs, v=v, cap=cap):
                if get(v) == INF:
                    return cap
                return rhs(get)

            equations[x] = (twisted, deps)
        else:
            equations[x] = (rhs, deps)
    return DictSystem(NatInf(), equations)


def random_powerset_system(
    size: int, universe_size: int, seed: int = 0, max_deps: int = 3
) -> DictSystem:
    """A random monotone system over a finite powerset lattice.

    Used by the Theorem 1/2 bound experiments, which need a lattice of
    known height (``universe_size + 1``).
    """
    rng = random.Random(seed)
    universe = [f"u{i}" for i in range(universe_size)]
    lat = PowersetLattice(universe)
    unknowns = [f"x{i}" for i in range(size)]
    equations = {}
    for x in unknowns:
        deps = sorted(
            set(rng.choice(unknowns) for _ in range(rng.randrange(1, max_deps + 1)))
        )
        seeds = frozenset(
            rng.choice(universe) for _ in range(rng.randrange(0, 3))
        )

        def rhs(get, deps=tuple(deps), seeds=seeds):
            acc = seeds
            for d in deps:
                acc = acc | get(d)
            return acc

        equations[x] = (rhs, deps)
    return DictSystem(lat, equations)


def random_interval_system(config: RandomSystemConfig) -> DictSystem:
    """A random *monotone* system over the interval lattice.

    Right-hand sides are built from monotone interval combinators:
    constants, variables, shifted variables, joins, meets with constant
    caps (modelling loop guards), and additions.  These are the equation
    shapes intraprocedural interval analysis produces, so the systems
    exercise the widening/narrowing interplay realistically.
    """
    from repro.lattices.interval import Interval, IntervalLattice

    rng = random.Random(config.seed)
    iv = IntervalLattice()
    unknowns = [f"x{i}" for i in range(config.size)]

    def term(depth: int = 0):
        kind = rng.choice(["const", "var", "shift", "cap", "add"])
        if kind == "const" or depth >= 2:
            lo = rng.randrange(-8, 9)
            hi = lo + rng.randrange(0, 5)
            return (lambda get: Interval(lo, hi)), []
        if kind == "var":
            v = rng.choice(unknowns)
            return (lambda get: get(v)), [v]
        if kind == "shift":
            v = rng.choice(unknowns)
            k = rng.randrange(1, 4)
            return (
                lambda get: iv.add(get(v), Interval(k, k)),
                [v],
            )
        if kind == "cap":
            inner, deps = term(depth + 1)
            hi = rng.randrange(0, 30)
            cap = Interval(float("-inf"), hi)
            return (lambda get: iv.meet(inner(get), cap)), deps
        inner1, deps1 = term(depth + 1)
        inner2, deps2 = term(depth + 1)
        return (
            lambda get: iv.add(inner1(get), inner2(get)),
            deps1 + deps2,
        )

    equations = {}
    for x in unknowns:
        terms = []
        deps: List[str] = []
        for _ in range(rng.randrange(1, config.max_deps + 1)):
            t, t_deps = term()
            terms.append(t)
            deps.extend(t_deps)

        def rhs(get, terms=tuple(terms)):
            acc = None
            for t in terms:
                acc = iv.join(acc, t(get))
            return acc

        equations[x] = (rhs, sorted(set(deps)))
    return DictSystem(iv, equations)
