"""WCET-suite programs, part D (the large benchmarks).

The Malardalen collection tops out with generated, branch-dense code
(nsichneu: a simulated Petri net of ~4000 lines).  These renditions keep
the *structure* -- hundreds of guarded transition blocks over shared state,
triangular factorisation with pivoting, and fixed-point statistics -- at a
scale that keeps the Python test-suite fast.
"""

LUDCMP = """
// ludcmp: LU decomposition with forward/back substitution
// (Malardalen ludcmp.c flavour, scaled integer arithmetic).
int a[25];
int b[5];
int x[5];
int pivot_ops = 0;

void setup() {
    int i = 0;
    while (i < 5) {
        int j = 0;
        while (j < 5) {
            if (i == j) {
                a[i * 5 + j] = 1000 + (i * 37) % 50;
            } else {
                a[i * 5 + j] = (i * 13 + j * 7) % 90;
            }
            j = j + 1;
        }
        b[i] = (i * 29 + 11) % 100;
        i = i + 1;
    }
}

void decompose() {
    int k = 0;
    while (k < 4) {
        int i = k + 1;
        while (i < 5) {
            int factor = (a[i * 5 + k] * 1000) / a[k * 5 + k];
            a[i * 5 + k] = factor;
            int j = k + 1;
            while (j < 5) {
                a[i * 5 + j] = a[i * 5 + j]
                    - (factor * a[k * 5 + j]) / 1000;
                j = j + 1;
            }
            pivot_ops = pivot_ops + 1;
            i = i + 1;
        }
        k = k + 1;
    }
}

void substitute() {
    int i = 0;
    while (i < 5) {
        int sum = b[i];
        int j = 0;
        while (j < i) {
            sum = sum - (a[i * 5 + j] * x[j]) / 1000;
            j = j + 1;
        }
        x[i] = sum;
        i = i + 1;
    }
    i = 4;
    while (i >= 0) {
        int sum = x[i];
        int j = i + 1;
        while (j < 5) {
            sum = sum - (a[i * 5 + j] * x[j]) / 1000;
            j = j + 1;
        }
        x[i] = (sum * 1000) / a[i * 5 + i];
        i = i - 1;
    }
}

int main() {
    setup();
    decompose();
    substitute();
    int checksum = 0;
    int i = 0;
    while (i < 5) {
        checksum = checksum + x[i];
        i = i + 1;
    }
    return checksum % 9973;
}
"""

ST = """
// st: statistics kernel -- means, variances, covariance and correlation
// over two series, in scaled integer arithmetic (Malardalen st.c flavour).
int series_a[50];
int series_b[50];
int mean_a = 0;
int mean_b = 0;
int var_a = 0;
int var_b = 0;
int cov_ab = 0;

void fill() {
    int i = 0;
    int seed = 3;
    while (i < 50) {
        seed = (seed * 17 + 7) % 101;
        series_a[i] = seed - 50;
        series_b[i] = (seed * 3) % 61 - 30;
        i = i + 1;
    }
}

int mean(int which) {
    int sum = 0;
    int i = 0;
    while (i < 50) {
        if (which == 0) {
            sum = sum + series_a[i];
        } else {
            sum = sum + series_b[i];
        }
        i = i + 1;
    }
    return sum / 50;
}

int variance(int which, int mu) {
    int sum = 0;
    int i = 0;
    while (i < 50) {
        int v = 0;
        if (which == 0) {
            v = series_a[i] - mu;
        } else {
            v = series_b[i] - mu;
        }
        sum = sum + v * v;
        i = i + 1;
    }
    return sum / 50;
}

int covariance(int mu_a, int mu_b) {
    int sum = 0;
    int i = 0;
    while (i < 50) {
        sum = sum + (series_a[i] - mu_a) * (series_b[i] - mu_b);
        i = i + 1;
    }
    return sum / 50;
}

int main() {
    fill();
    mean_a = mean(0);
    mean_b = mean(1);
    var_a = variance(0, mean_a);
    var_b = variance(1, mean_b);
    cov_ab = covariance(mean_a, mean_b);
    // Scaled correlation estimate (avoid square roots).
    int denom = var_a + var_b + 1;
    int corr1000 = (cov_ab * 1000) / denom;
    return corr1000;
}
"""

NSICHNEU = """
// nsichneu: simulated Petri-net transitions (Malardalen nsichneu.c
// flavour).  The original is ~4000 lines of generated if-blocks over
// shared place markings; this rendition keeps the structure -- rounds of
// guarded transitions reading and writing global places -- at 1/10 scale.
int p1 = 1;
int p2 = 0;
int p3 = 0;
int p4 = 1;
int p5 = 0;
int p6 = 0;
int p7 = 0;
int p8 = 1;
int fired = 0;

void round_a() {
    if (p1 > 0 && p4 > 0) {
        p1 = p1 - 1;
        p4 = p4 - 1;
        p2 = p2 + 1;
        fired = fired + 1;
    }
    if (p2 > 0) {
        p2 = p2 - 1;
        p3 = p3 + 1;
        fired = fired + 1;
    }
    if (p3 > 0 && p8 > 0) {
        p3 = p3 - 1;
        p8 = p8 - 1;
        p5 = p5 + 1;
        fired = fired + 1;
    }
    if (p5 > 0) {
        p5 = p5 - 1;
        p6 = p6 + 1;
        p8 = p8 + 1;
        fired = fired + 1;
    }
}

void round_b() {
    if (p6 > 0) {
        p6 = p6 - 1;
        p7 = p7 + 1;
        fired = fired + 1;
    }
    if (p7 > 0 && p8 > 0) {
        p7 = p7 - 1;
        p1 = p1 + 1;
        p4 = p4 + 1;
        fired = fired + 1;
    }
    if (p2 > 1) {
        p2 = p2 - 2;
        p3 = p3 + 1;
        fired = fired + 1;
    }
    if (p3 > 2) {
        p3 = p3 - 3;
        p5 = p5 + 1;
        fired = fired + 1;
    }
}

void round_c() {
    if (p4 > 0 && p5 > 0) {
        p4 = p4 - 1;
        p5 = p5 - 1;
        p6 = p6 + 1;
        fired = fired + 1;
    }
    if (p1 > 1) {
        p1 = p1 - 1;
        p2 = p2 + 1;
        fired = fired + 1;
    }
    if (p8 > 1) {
        p8 = p8 - 1;
        p7 = p7 + 1;
        fired = fired + 1;
    }
    if (p6 > 0 && p7 > 0) {
        p6 = p6 - 1;
        p7 = p7 - 1;
        p8 = p8 + 1;
        fired = fired + 1;
    }
}

int main() {
    int cycle = 0;
    while (cycle < 25) {
        round_a();
        round_b();
        round_c();
        cycle = cycle + 1;
    }
    return fired + p1 + p2 + p3 + p4 + p5 + p6 + p7 + p8;
}
"""
