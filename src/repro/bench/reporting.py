"""Plain-text rendering of the regenerated tables and figures.

The renderers deliberately mimic the layout of the paper's artefacts: the
Figure 7 bar list sorted by program size, and the Table 1 grid with the
four configuration column groups.
"""

from __future__ import annotations

from typing import List

from repro.bench.harness import Fig7Result, Table1Row


def render_fig7(result: Fig7Result) -> str:
    """Render Figure 7 as a sorted text bar chart."""
    lines = [
        "Figure 7: percentage of program points improved by the",
        "combined-operator solver over two-phase widening/narrowing",
        "(benchmarks sorted by size, as in the paper)",
        "",
    ]
    for row in result.rows:
        bar = "#" * int(round(row.percent / 2))
        lines.append(
            f"{row.name:>14s} ({row.loc:4d} loc) "
            f"{row.percent:5.1f}% |{bar:<50s}| "
            f"{row.improved}/{row.total}"
        )
    lines.append("")
    lines.append(
        f"weighted average improvement: {result.weighted_average:.1f}% "
        f"(paper: 39%)"
    )
    lines.append(
        f"total analysis time: {result.total_seconds:.1f}s "
        f"(paper: ~14s for the whole suite on their machine)"
    )
    return "\n".join(lines)


def render_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 as a text grid."""
    header = (
        f"{'Program':>14s} {'loc':>5s} | "
        f"{'no-ctx widen':>18s} | {'no-ctx combined':>18s} | "
        f"{'ctx widen':>18s} | {'ctx combined':>18s}"
    )
    sub = (
        f"{'':>14s} {'':>5s} | "
        + " | ".join(f"{'time(s)':>8s} {'unkn':>9s}" for _ in range(4))
    )
    lines = [
        "Table 1: interval analysis of the SpecCPU-like suite",
        "(time and number of unknowns per solver configuration)",
        "",
        header,
        sub,
        "-" * len(header),
    ]
    for row in rows:
        cells = [
            row.nocontext_widen,
            row.nocontext_warrow,
            row.context_widen,
            row.context_warrow,
        ]
        cell_text = " | ".join(
            f"{c.seconds:8.2f} {c.unknowns:9d}" for c in cells
        )
        lines.append(f"{row.name:>14s} {row.loc:5d} | {cell_text}")
    return "\n".join(lines)
