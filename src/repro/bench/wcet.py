"""The WCET benchmark suite behind the Figure 7 experiment.

The paper evaluates precision on the Malardalen WCET benchmark collection
(Gustafsson et al., WCET 2010) -- small, loop-heavy C programs between
roughly 40 and 4000 lines.  The originals are plain C; this module carries
mini-C renditions of the same program *flavours* (see DESIGN.md for the
substitution rationale): searching, sorting, filters, CRC, matrix math,
state machines, irregular loops, and the famously analysis-resistant
qsort-exam.

Every program is checked by the test-suite to compile, terminate under the
concrete interpreter, and be covered by the interval analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench import wcet_sources_a as _a
from repro.bench import wcet_sources_b as _b
from repro.bench import wcet_sources_c as _c
from repro.bench import wcet_sources_d as _d


@dataclass(frozen=True)
class WcetProgram:
    """One benchmark: its name, source, and rough size (for sorting)."""

    name: str
    source: str
    #: Arguments for ``main`` when executing concretely (programs whose
    #: data comes from "input" take a seed parameter).
    args: tuple = ()

    @property
    def loc(self) -> int:
        """Non-empty source lines (the paper sorts Fig. 7 by size)."""
        return sum(
            1 for line in self.source.splitlines() if line.strip()
        )


#: Concrete-run arguments for benchmarks whose main takes input.
_ARGS = {"qsort-exam": (37,), "select": (23,)}

#: The suite, keyed by benchmark name.
PROGRAMS: Dict[str, WcetProgram] = {
    name: WcetProgram(name, source, _ARGS.get(name, ()))
    for name, source in [
        ("fibcall", _a.FIBCALL),
        ("fac", _a.FAC),
        ("bs", _a.BS),
        ("cnt", _a.CNT),
        ("insertsort", _a.INSERTSORT),
        ("bsort", _a.BSORT),
        ("prime", _a.PRIME),
        ("expint", _a.EXPINT),
        ("lcdnum", _a.LCDNUM),
        ("janne_complex", _a.JANNE_COMPLEX),
        ("ns", _a.NS),
        ("crc", _b.CRC),
        ("matmult", _b.MATMULT),
        ("fir", _b.FIR),
        ("fdct", _b.FDCT),
        ("ud", _b.UD),
        ("qsort-exam", _b.QSORT_EXAM),
        ("statemate", _b.STATEMATE),
        ("edn", _b.EDN),
        ("duff", _b.DUFF),
        ("ndes", _b.NDES),
        ("adpcm", _c.ADPCM),
        ("compress", _c.COMPRESS),
        ("fibsearch", _c.FIBSEARCH),
        ("isqrt", _c.ISQRT),
        ("select", _c.SELECT),
        ("minver", _c.MINVER),
        ("recursion", _c.RECURSION),
        ("cover", _c.COVER),
        ("ludcmp", _d.LUDCMP),
        ("st", _d.ST),
        ("nsichneu", _d.NSICHNEU),
    ]
}


def by_size() -> List[WcetProgram]:
    """The suite sorted by program size, as in the paper's Figure 7."""
    return sorted(PROGRAMS.values(), key=lambda p: (p.loc, p.name))
