"""A deterministic random mini-C program generator.

Two consumers:

* the soundness property tests -- every concrete run of a generated
  program must be covered by the abstract analysis results;
* the Table 1 scalability experiment -- scaled-up configurations stand in
  for the SpecCPU2006 programs (see DESIGN.md for the substitution
  rationale).

Generated programs are *safe and terminating by construction*: loops are
counting loops with literal bounds, divisors are non-zero literals, array
indices are reduced modulo the array size (with non-negative adjustment),
and the call graph is acyclic except for controlled bounded recursion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ProgramConfig:
    """Shape parameters for a generated program."""

    #: Number of helper functions besides main.
    functions: int = 3
    #: Target statements per function body.
    stmts_per_function: int = 8
    #: Maximum nesting depth of loops/conditionals.
    max_depth: int = 2
    #: Number of global scalars.
    globals: int = 2
    #: Number of global arrays.
    global_arrays: int = 0
    #: Inclusive range of loop trip counts.
    loop_bounds: tuple = (2, 8)
    #: Whether helpers may call earlier helpers.
    allow_calls: bool = True
    #: Probability weight of statements touching globals.
    global_weight: float = 0.2
    #: RNG seed.
    seed: int = 0


class _FnGen:
    def __init__(self, rng: random.Random, config: ProgramConfig, name: str,
                 params: List[str], callees: List[tuple], globals_: List[str],
                 global_arrays: List[str]) -> None:
        self.rng = rng
        self.config = config
        self.name = name
        self.params = params
        self.callees = callees
        self.globals = globals_
        self.global_arrays = global_arrays
        self.scalars: List[str] = list(params)
        #: Loop counters currently in scope: readable but never assigned,
        #: which keeps every generated loop terminating.
        self.protected: set = set()
        self.arrays: List[tuple] = []
        self.counter = 0
        self.lines: List[str] = []

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- expressions ---------------------------------------------------- #

    def atom(self) -> str:
        choices = []
        if self.scalars:
            choices.extend(self.scalars * 2)
        if self.globals and self.rng.random() < self.config.global_weight:
            choices.append(self.rng.choice(self.globals))
        if not choices or self.rng.random() < 0.3:
            return str(self.rng.randrange(-4, 17))
        return self.rng.choice(choices)

    def expr(self, depth: int = 0) -> str:
        if depth >= 2 or self.rng.random() < 0.4:
            return self.atom()
        op = self.rng.choice(["+", "-", "*", "+", "-"])
        if self.rng.random() < 0.12:
            # Safe division/modulo by a non-zero literal.
            divisor = self.rng.choice([2, 3, 4, 5, 7])
            op2 = self.rng.choice(["/", "%"])
            return f"({self.expr(depth + 1)} {op2} {divisor})"
        return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"

    def condition(self) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        simple = f"{self.atom()} {op} {self.atom()}"
        roll = self.rng.random()
        if roll < 0.15:
            op2 = self.rng.choice(["&&", "||"])
            other = f"{self.atom()} {self.rng.choice(['<', '>'])} {self.atom()}"
            return f"({simple}) {op2} ({other})"
        if roll < 0.25:
            return f"!({simple})"
        return simple

    # -- statements ----------------------------------------------------- #

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * (depth + 1) + text)

    def writable(self) -> List[str]:
        return [v for v in self.scalars if v not in self.protected]

    def gen_stmt(self, depth: int) -> None:
        roll = self.rng.random()
        if roll < 0.30 or not self.writable():
            name = self.fresh("v")
            self.emit(depth, f"int {name} = {self.expr()};")
            self.scalars.append(name)
        elif roll < 0.55:
            target = self.rng.choice(self.writable())
            self.emit(depth, f"{target} = {self.expr()};")
        elif roll < 0.62 and self.globals:
            g = self.rng.choice(self.globals)
            self.emit(depth, f"{g} = {self.expr()};")
        elif roll < 0.70 and depth < self.config.max_depth:
            self.gen_if(depth)
        elif roll < 0.82 and depth < self.config.max_depth:
            self.gen_loop(depth)
        elif roll < 0.88 and self.global_arrays and self.scalars:
            arr = self.rng.choice(self.global_arrays)
            idx = self.rng.choice(self.scalars)
            size = 8
            self.emit(
                depth,
                f"{arr}[(({idx} % {size}) + {size}) % {size}] = {self.expr()};",
            )
        elif roll < 0.95 and self.callees and self.config.allow_calls:
            callee, arity = self.rng.choice(self.callees)
            args = ", ".join(self.expr(1) for _ in range(arity))
            target = self.fresh("r")
            self.emit(depth, f"int {target} = {callee}({args});")
            self.scalars.append(target)
        else:
            target = self.rng.choice(self.writable())
            self.emit(depth, f"{target} = {target} + 1;")

    def gen_if(self, depth: int) -> None:
        self.emit(depth, f"if ({self.condition()}) {{")
        saved = list(self.scalars)
        for _ in range(self.rng.randrange(1, 3)):
            self.gen_stmt(depth + 1)
        self.scalars = list(saved)
        if self.rng.random() < 0.5:
            self.emit(depth, "} else {")
            for _ in range(self.rng.randrange(1, 3)):
                self.gen_stmt(depth + 1)
            self.scalars = list(saved)
        self.emit(depth, "}")

    def gen_loop(self, depth: int) -> None:
        i = self.fresh("i")
        lo, hi = self.config.loop_bounds
        bound = self.rng.randrange(lo, hi + 1)
        self.emit(depth, f"for (int {i} = 0; {i} < {bound}; {i} = {i} + 1) {{")
        saved = list(self.scalars)
        self.scalars.append(i)
        self.protected.add(i)
        for _ in range(self.rng.randrange(1, 3)):
            self.gen_stmt(depth + 1)
        self.scalars = list(saved)
        self.protected.discard(i)
        self.emit(depth, "}")

    def generate(self) -> str:
        for _ in range(self.config.stmts_per_function):
            self.gen_stmt(0)
        ret = self.rng.choice(self.scalars) if self.scalars else "0"
        self.emit(0, f"return {ret};")
        params = ", ".join(f"int {p}" for p in self.params)
        header = f"int {self.name}({params}) {{"
        return "\n".join([header] + self.lines + ["}"])


def generate_program(config: ProgramConfig) -> str:
    """Generate a deterministic random mini-C program.

    The program has ``config.functions`` helper functions (an acyclic call
    graph), the requested globals, and a ``main`` that exercises the
    helpers.  The same configuration always yields the same source.
    """
    rng = random.Random(config.seed)
    globals_ = [f"g{i}" for i in range(config.globals)]
    global_arrays = [f"buf{i}" for i in range(config.global_arrays)]
    parts: List[str] = []
    for g in globals_:
        parts.append(f"int {g} = {rng.randrange(0, 5)};")
    for arr in global_arrays:
        parts.append(f"int {arr}[8];")

    callees: List[tuple] = []
    for i in range(config.functions):
        name = f"f{i}"
        arity = rng.randrange(0, 3)
        params = [f"p{j}" for j in range(arity)]
        gen = _FnGen(
            rng, config, name, params, list(callees), globals_, global_arrays
        )
        parts.append(gen.generate())
        callees.append((name, arity))

    main_gen = _FnGen(rng, config, "main", [], callees, globals_, global_arrays)
    main_src = main_gen.generate()
    if config.allow_calls:
        # Turn main into a driver that deterministically exercises every
        # helper (real programs' main loops call into all their modules),
        # with argument signs varied so that context-sensitive analyses
        # see several calling contexts per function.
        driver_lines: List[str] = []
        for index, (name, arity) in enumerate(callees):
            for tag, sign in (("p", 1), ("n", -1)):
                args = ", ".join(
                    str(sign * ((index + j * 3) % 9 + 1)) for j in range(arity)
                )
                driver_lines.append(
                    f"    int d{tag}{index} = {name}({args});"
                )
        close = main_src.rfind("    return ")
        main_src = (
            main_src[:close]
            + "\n".join(driver_lines)
            + ("\n" if driver_lines else "")
            + main_src[close:]
        )
    parts.append(main_src)
    return "\n\n".join(parts) + "\n"
