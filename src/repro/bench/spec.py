"""The SpecCPU-style workload behind the Table 1 experiment.

The paper's Table 1 analyses the C programs of SpecCPU2006 (1--33 kloc)
with Goblint, reporting run-time and the number of solver unknowns for
four configurations: {context-insensitive, context-sensitive} x
{widening-only, combined operator}.  SpecCPU sources are proprietary; we
substitute deterministic synthetic programs of graded size produced by
:mod:`repro.bench.progen` (see DESIGN.md).  Program names are kept so the
regenerated table reads like the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bench.progen import ProgramConfig, generate_program


@dataclass(frozen=True)
class SpecProgram:
    """One synthetic stand-in for a SpecCPU2006 benchmark."""

    name: str
    config: ProgramConfig

    @property
    def source(self) -> str:
        return generate_program(self.config)


def _cfg(functions: int, stmts: int, seed: int, **kw) -> ProgramConfig:
    return ProgramConfig(
        functions=functions,
        stmts_per_function=stmts,
        max_depth=2,
        globals=4,
        global_arrays=1,
        seed=seed,
        **kw,
    )


#: The suite, graded in size like the paper's Table 1 rows (the paper's
#: row order is kept; sizes grow roughly like the original kloc counts).
PROGRAMS: List[SpecProgram] = [
    SpecProgram("470.lbm", _cfg(functions=4, stmts=8, seed=470)),
    SpecProgram("429.mcf", _cfg(functions=6, stmts=10, seed=429)),
    SpecProgram("401.bzip2", _cfg(functions=14, stmts=12, seed=401)),
    SpecProgram("433.milc", _cfg(functions=20, stmts=14, seed=433)),
    SpecProgram("482.sphinx", _cfg(functions=26, stmts=16, seed=482)),
    SpecProgram("456.hmmer", _cfg(functions=34, stmts=18, seed=456)),
    SpecProgram("458.sjeng", _cfg(functions=48, stmts=22, seed=458)),
]


def by_name() -> Dict[str, SpecProgram]:
    """The suite keyed by benchmark name."""
    return {p.name: p for p in PROGRAMS}
