"""Bug-finding diagnostics over the solver stack.

The checkers package is the repo's downstream *consumer* of precision:
it runs the interprocedural interval/sign analyses over mini-C programs
and turns the computed invariants into structured, deterministic
:class:`Diagnostic` records -- division by zero, out-of-bounds indexing,
dead code, assertion verdicts, uninitialised reads.  The same findings
are served through three transports (``repro check``, batch
``kind="check"`` jobs, the service's ``check`` requests), all of which
delegate to :func:`run_check` / :func:`apply_rules` here.

See ``docs/checkers.md`` for the architecture tour and the rule
catalogue, and ``examples/buggy/`` for the golden corpus.
"""

from repro.checkers.diagnostics import (
    DIAGNOSTICS_FORMAT,
    SEVERITIES,
    Diagnostic,
    diagnostics_document,
    render_diagnostics_json,
    render_diagnostics_text,
    sarif_lite,
    validate_diagnostics,
)
from repro.checkers.engine import (
    DEFAULT_CHECK_OP,
    CheckReport,
    apply_rules,
    run_check,
)
from repro.checkers.rules import (
    CheckContext,
    CheckerRule,
    UnknownRuleError,
    all_rules,
    canonical_rule_names,
    resolve_rules,
    rule_names,
)

__all__ = [
    "DEFAULT_CHECK_OP",
    "DIAGNOSTICS_FORMAT",
    "SEVERITIES",
    "CheckContext",
    "CheckReport",
    "CheckerRule",
    "Diagnostic",
    "UnknownRuleError",
    "all_rules",
    "apply_rules",
    "canonical_rule_names",
    "diagnostics_document",
    "render_diagnostics_json",
    "render_diagnostics_text",
    "resolve_rules",
    "rule_names",
    "run_check",
    "sarif_lite",
    "validate_diagnostics",
]
