"""The checker engine: solve, then interrogate the invariants.

:func:`run_check` is the one entry point behind every serving layer --
the ``repro check`` CLI, the batch farm's ``kind="check"`` jobs, and the
service daemon's ``check`` requests all funnel through
:func:`apply_rules` over an analysis produced with *exactly* the solver
construction of :func:`repro.batch.jobs.execute_job`, so the three
transports can never disagree about a program's diagnostics.

The operator spec is part of a check's identity: rules read the computed
abstract states, so a less precise operator (pure widening) produces
*more* findings -- false positives the combined ⌴ operator eliminates.
Phased strategies (``twophase``, ``decoupled``) are rejected: a check is
one demand-driven solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.checkers.diagnostics import Diagnostic, diagnostics_document
from repro.checkers.rules import CheckContext, CheckerRule, resolve_rules

#: The default operator for checks: the paper's combined operator with
#: the standard delay -- precise enough to keep the clean corpus free of
#: false positives (the golden tests pin this).
DEFAULT_CHECK_OP = "warrow:delay=1"


@dataclass(frozen=True)
class CheckReport:
    """The outcome of checking one program."""

    #: Display name of the program (the CLI uses the file's basename so
    #: golden documents are path-independent).
    program: str
    #: Canonical operator spec the analysis ran with.
    op: str
    domain: str
    context: str
    #: Names of the rules that ran, in registry order.
    rules: Tuple[str, ...]
    diagnostics: Tuple[Diagnostic, ...]
    #: Solver cost of the underlying analysis.
    evaluations: int = 0
    unknowns: int = 0

    @property
    def findings(self) -> int:
        return len(self.diagnostics)

    def exit_code(self) -> int:
        """CLI taxonomy: 0 clean, 1 findings (input/divergence/internal
        failures raise before a report exists)."""
        return 1 if self.diagnostics else 0

    def document(self) -> dict:
        """The ``repro-diagnostics/1`` document for this report."""
        return diagnostics_document(
            program=self.program,
            op=self.op,
            domain=self.domain,
            context=self.context,
            rules=self.rules,
            diagnostics=self.diagnostics,
        )


def apply_rules(
    cfg, result, rules: Tuple[CheckerRule, ...]
) -> Tuple[Diagnostic, ...]:
    """Run ``rules`` over an analysis result; the deduplicated,
    canonically sorted diagnostics.

    Deduplication is by sort key: a guard condition, say, appears on
    both the assume-true and assume-false edge of the same source node,
    and must not be reported twice.
    """
    ctx = CheckContext(cfg=cfg, result=result)
    seen = set()
    out = []
    for rule in rules:
        for diag in rule.run(ctx):
            key = diag.sort_key()
            if key in seen:
                continue
            seen.add(key)
            out.append(diag)
    return tuple(sorted(out, key=Diagnostic.sort_key))


def run_check(
    source: str,
    *,
    program: str = "<input>",
    rules=None,
    op: str = DEFAULT_CHECK_OP,
    domain: str = "interval",
    context: str = "insensitive",
    solver: str = "slr+",
    widen_delay: int = 1,
    thresholds: bool = False,
    max_evals: Optional[int] = 5_000_000,
    observers=(),
) -> CheckReport:
    """Check one mini-C program end to end.

    Raises exactly the exception classes the CLI taxonomy maps: parse or
    semantic errors, unknown rules/strategies/solvers/domains (exit 2),
    :class:`~repro.solvers.stats.DivergenceError` (exit 3).  Anything
    else is an internal fault (exit 4).
    """
    from repro.analysis import collect_thresholds
    from repro.analysis.inter import InterAnalysis, collect_analysis
    from repro.batch.jobs import build_domain, build_policy
    from repro.lang import compile_program
    from repro.solvers.registry import get_solver
    from repro.strategies import (
        BuildContext,
        SpecError,
        build_combine,
        format_spec,
        get_strategy,
        resolve_spec,
    )

    selected = resolve_rules(rules)
    resolved = resolve_spec(op, widen_delay=widen_delay)
    strategy = get_strategy(resolved.name)
    if strategy.kind != "combine":
        raise SpecError(
            f"check requires a solve-ready combine strategy; "
            f"{strategy.name!r} is {strategy.kind} "
            "(try e.g. 'warrow:delay=1' or 'widen')"
        )
    canonical = format_spec(resolved)
    cfg = compile_program(source)
    need_thresholds = thresholds or strategy.needs_thresholds
    collected = collect_thresholds(cfg) if need_thresholds else ()
    dom = build_domain(domain, collected)
    policy = build_policy(context, dom)
    analysis = InterAnalysis(cfg, dom, policy)
    solve = get_solver(solver, side_effecting=True, scope="local", takes_op=True)
    combine = build_combine(
        resolved,
        analysis.lattice,
        ctx=BuildContext(cfg=cfg, thresholds=tuple(collected)),
    )
    solver_result = solve(
        analysis.system(),
        combine,
        analysis.root(),
        max_evals=max_evals,
        observers=observers,
    )
    result = collect_analysis(analysis, solver_result)
    diagnostics = apply_rules(cfg, result, selected)
    return CheckReport(
        program=program,
        op=canonical,
        domain=domain,
        context=context,
        rules=tuple(rule.name for rule in selected),
        diagnostics=diagnostics,
        evaluations=solver_result.stats.evaluations,
        unknowns=solver_result.stats.unknowns,
    )
