"""Deterministic, schema-validated diagnostic records.

A :class:`Diagnostic` is the unit of checker output: rule id, severity,
source location, a one-line message, and a *witness* -- the abstract
values that justify the finding, rendered human-readably.  Everything is
plain data with a total order, so a set of diagnostics serialises to
byte-identical JSON regardless of rule evaluation order, worker count, or
process -- the property the golden-file tests and the service's
content-addressed cache both rely on.

The JSON document schema is versioned (``repro-diagnostics/1``) and kept
free of machine-varying fields (no timestamps, revisions, or wall times):
the committed goldens under ``examples/buggy/expected/`` must reproduce
byte-for-byte on every machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: Version marker of the diagnostics document schema.
DIAGNOSTICS_FORMAT = "repro-diagnostics/1"

#: Allowed severities, most severe first.
SEVERITIES = ("error", "warning", "info")

#: SARIF ``level`` per severity (SARIF has no "info" result level).
_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


@dataclass(frozen=True)
class Diagnostic:
    """One checker finding, anchored to a program point."""

    #: Rule identifier (registry name, e.g. ``div-zero``).
    rule: str
    #: One of :data:`SEVERITIES`.  ``error`` means the bug fires on
    #: every represented execution reaching the point; ``warning`` means
    #: some represented execution triggers it; ``info`` is advisory
    #: (e.g. a redundant assertion).
    severity: str
    #: Enclosing function name.
    fn: str
    #: 1-based source line of the offending construct.
    line: int
    #: CFG node index of the program point the witness state belongs to.
    node: int
    #: One-line human-readable description.
    message: str
    #: Abstract-value trace justifying the finding, one fact per line.
    witness: Tuple[str, ...] = ()

    def sort_key(self) -> tuple:
        """Total order: by location, then rule, then message."""
        return (self.fn, self.line, self.node, self.rule, self.message)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "fn": self.fn,
            "line": self.line,
            "node": self.node,
            "message": self.message,
            "witness": list(self.witness),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            fn=data["fn"],
            line=data["line"],
            node=data["node"],
            message=data["message"],
            witness=tuple(data.get("witness", ())),
        )


def diagnostics_document(
    *,
    program: str,
    op: str,
    domain: str,
    context: str,
    rules: Iterable[str],
    diagnostics: Iterable[Diagnostic],
) -> dict:
    """Package diagnostics as a ``repro-diagnostics/1`` document.

    The document echoes the full analysis configuration (operator spec,
    domain, context, rule set) because a diagnostic set detached from the
    precision settings that produced it is meaningless -- the same
    program yields different findings under ``widen`` and ``warrow``.
    """
    diags = sorted(diagnostics, key=Diagnostic.sort_key)
    summary: Dict[str, int] = {"total": len(diags)}
    for severity in SEVERITIES:
        summary[severity] = sum(1 for d in diags if d.severity == severity)
    return {
        "format": DIAGNOSTICS_FORMAT,
        "program": program,
        "op": op,
        "domain": domain,
        "context": context,
        "rules": list(rules),
        "diagnostics": [d.to_json() for d in diags],
        "summary": summary,
    }


_DIAG_FIELDS = {
    "rule": str,
    "severity": str,
    "fn": str,
    "line": int,
    "node": int,
    "message": str,
    "witness": list,
}

_DOC_FIELDS = {
    "format": str,
    "program": str,
    "op": str,
    "domain": str,
    "context": str,
    "rules": list,
    "diagnostics": list,
    "summary": dict,
}


def validate_diagnostics(doc) -> List[str]:
    """Schema-check a diagnostics document; a list of problems (empty
    when valid).  Checks structure, types, severity vocabulary, rule
    attribution, canonical sort order, and summary consistency."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("format") != DIAGNOSTICS_FORMAT:
        problems.append(
            f"format is {doc.get('format')!r}, expected {DIAGNOSTICS_FORMAT!r}"
        )
    for field, typ in _DOC_FIELDS.items():
        if field not in doc:
            problems.append(f"missing field {field!r}")
        elif not isinstance(doc[field], typ):
            problems.append(f"field {field!r} is not a {typ.__name__}")
    if problems:
        return problems
    rules = doc["rules"]
    if any(not isinstance(r, str) for r in rules):
        problems.append("rules must be strings")
    diags = doc["diagnostics"]
    parsed: List[Diagnostic] = []
    for i, entry in enumerate(diags):
        if not isinstance(entry, dict):
            problems.append(f"diagnostics[{i}] is not an object")
            continue
        ok = True
        for field, typ in _DIAG_FIELDS.items():
            if field not in entry:
                problems.append(f"diagnostics[{i}] missing field {field!r}")
                ok = False
            elif not isinstance(entry[field], typ) or (
                typ is int and isinstance(entry[field], bool)
            ):
                problems.append(
                    f"diagnostics[{i}].{field} is not a {typ.__name__}"
                )
                ok = False
        if not ok:
            continue
        if entry["severity"] not in SEVERITIES:
            problems.append(
                f"diagnostics[{i}].severity {entry['severity']!r} not in "
                f"{SEVERITIES}"
            )
        if entry["rule"] not in rules:
            problems.append(
                f"diagnostics[{i}].rule {entry['rule']!r} is not in the "
                "document's rule set"
            )
        if any(not isinstance(w, str) for w in entry["witness"]):
            problems.append(f"diagnostics[{i}].witness must be strings")
        parsed.append(Diagnostic.from_json(entry))
    keys = [d.sort_key() for d in parsed]
    if keys != sorted(keys):
        problems.append("diagnostics are not in canonical sort order")
    summary = doc["summary"]
    expected = {"total": len(parsed)}
    for severity in SEVERITIES:
        expected[severity] = sum(1 for d in parsed if d.severity == severity)
    if not problems and summary != expected:
        problems.append(f"summary {summary} does not match counts {expected}")
    return problems


def render_diagnostics_json(doc: dict) -> str:
    """The canonical byte encoding of a diagnostics document."""
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def render_diagnostics_text(doc: dict) -> str:
    """Human-readable rendering (the CLI's default output)."""
    lines: List[str] = []
    summary = doc["summary"]
    lines.append(
        f"{doc['program']}: {summary['total']} finding(s) "
        f"({summary['error']} error, {summary['warning']} warning, "
        f"{summary['info']} info) under op {doc['op']}, "
        f"domain {doc['domain']}"
    )
    for entry in doc["diagnostics"]:
        lines.append(
            f"{doc['program']}:{entry['line']}: {entry['severity']}: "
            f"{entry['message']} [{entry['rule']}] (in {entry['fn']})"
        )
        for fact in entry["witness"]:
            lines.append(f"    {fact}")
    return "\n".join(lines) + "\n"


def sarif_lite(doc: dict) -> dict:
    """A minimal SARIF 2.1.0 projection of a diagnostics document.

    "Lite": one run, one artifact, logical locations only -- enough for
    SARIF-consuming viewers to list and jump to findings, without the
    full physical-artifact plumbing.
    """
    results = []
    for entry in doc["diagnostics"]:
        results.append(
            {
                "ruleId": entry["rule"],
                "level": _SARIF_LEVEL[entry["severity"]],
                "message": {"text": entry["message"]},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": doc["program"]},
                            "region": {"startLine": max(entry["line"], 1)},
                        },
                        "logicalLocations": [
                            {"name": entry["fn"], "kind": "function"}
                        ],
                    }
                ],
            }
        )
    return {
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": [{"id": name} for name in doc["rules"]],
                        "properties": {
                            "op": doc["op"],
                            "domain": doc["domain"],
                            "context": doc["context"],
                        },
                    }
                },
                "results": results,
            }
        ],
    }
