"""The checker rules: from abstract invariants to diagnostics.

Every rule is a pure function from a :class:`CheckContext` (CFG plus the
joined per-point abstract states of an interprocedural analysis run) to a
stream of :class:`~repro.checkers.diagnostics.Diagnostic` records.  Five
of the six rules read the analysis results -- their findings therefore
depend directly on the precision of the update operator, which is the
point: the combined ⌴ operator of the paper strictly reduces the false
positives of pure widening on the golden corpus (``examples/buggy/``).
The sixth (``uninit-read``) is deliberately syntactic, because mini-C
defines uninitialised storage to be zero -- the abstract semantics cannot
distinguish ``int x;`` from ``int x = 0;``, but the programmer's intent
can.

Severity vocabulary:

* ``error``   -- fires on *every* represented execution reaching the
  point (division by an interval that *is* ``[0,0]``, an assertion that
  always fails, an index provably outside the array);
* ``warning`` -- fires on *some* represented execution (possibly-zero
  divisor, possibly out-of-bounds index, dead code, uninitialised read);
* ``info``    -- advisory (a provably-true, hence redundant, assertion).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.inter import AnalysisResult
from repro.analysis.transfer import (
    GlobalsAccess,
    TransferContext,
    eval_expr,
    refine,
)
from repro.checkers.diagnostics import Diagnostic
from repro.lang import astnodes as ast
from repro.lang.cfg import (
    AssertInstr,
    CallInstr,
    ControlFlowGraph,
    Edge,
    FunctionCFG,
    Guard,
    SetLocal,
    StoreArray,
)
from repro.lang.pretty import pretty_expr
from repro.lattices.lifted import LiftedBottom


class UnknownRuleError(LookupError):
    """Raised when a requested rule name is not registered."""


# --------------------------------------------------------------------- #
# The context rules run in.                                             #
# --------------------------------------------------------------------- #

@dataclass
class CheckContext:
    """Everything a rule needs: the CFG, the analysis result, and cached
    per-function transfer contexts for re-evaluating expressions over
    the computed abstract states."""

    cfg: ControlFlowGraph
    result: AnalysisResult
    _tcs: Dict[str, TransferContext] = field(default_factory=dict)

    @property
    def domain(self):
        return self.result.domain

    @property
    def program(self) -> ast.Program:
        return self.cfg.program

    def tc(self, fn_name: str) -> TransferContext:
        """The transfer context of ``fn_name`` (globals read from the
        final flow-insensitive values, writes discarded)."""
        tc = self._tcs.get(fn_name)
        if tc is None:
            fn = self.cfg.functions[fn_name]
            dom = self.result.domain
            tc = TransferContext(
                domain=dom,
                scalars=frozenset(fn.locals),
                arrays=frozenset(fn.arrays),
                globals=GlobalsAccess(
                    read=lambda name: self.result.globals.get(
                        name, dom.bottom
                    ),
                    write=lambda name, value: None,
                ),
            )
            self._tcs[fn_name] = tc
        return tc

    def env(self, fn_name: str, node):
        """Joined abstract state at ``node`` (``LiftedBottom`` when the
        analysis proves the point unreachable)."""
        return self.result.env_at(fn_name, node)

    def array_size(self, fn: FunctionCFG, name: str) -> Optional[int]:
        """Declared size of array ``name`` seen from ``fn`` (local first,
        then global), or ``None`` for undeclared names."""
        if name in fn.arrays:
            return fn.arrays[name]
        return self.cfg.global_arrays.get(name)


# --------------------------------------------------------------------- #
# Shared helpers.                                                       #
# --------------------------------------------------------------------- #

#: The CFG builder suffixes shadowed locals with ``$<n>``; strip that for
#: user-facing text (diagnostics talk about source names).
_RENAME_SUFFIX = re.compile(r"\$\d+")


def display_name(name: str) -> str:
    """Source-level spelling of a (possibly renamed) local."""
    return name.split("$", 1)[0]


def display_expr(expr: ast.Expr) -> str:
    """Source-level rendering of a (possibly renamed) expression."""
    return _RENAME_SUFFIX.sub("", pretty_expr(expr))


def _subexprs(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, ast.ArrayRef):
        yield from _subexprs(expr.index)
    elif isinstance(expr, ast.Unary):
        yield from _subexprs(expr.operand)
    elif isinstance(expr, ast.Binary):
        yield from _subexprs(expr.left)
        yield from _subexprs(expr.right)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            yield from _subexprs(arg)


def _edge_exprs(edge: Edge) -> Iterator[ast.Expr]:
    """The call-free expressions evaluated along an edge."""
    instr = edge.instr
    if isinstance(instr, SetLocal):
        yield instr.expr
    elif isinstance(instr, StoreArray):
        yield instr.index
        yield instr.value
    elif isinstance(instr, (Guard, AssertInstr)):
        yield instr.cond
    elif isinstance(instr, CallInstr):
        yield from instr.args


def _expr_vars(expr: ast.Expr) -> List[str]:
    """All variable (and array) names read by an expression."""
    names = []
    for sub in _subexprs(expr):
        if isinstance(sub, (ast.Var, ast.ArrayRef)):
            names.append(sub.name)
    return names


def _env_facts(tc: TransferContext, env, expr: ast.Expr) -> List[str]:
    """Witness lines: the abstract value of every variable ``expr``
    reads, in sorted order."""
    dom = tc.domain
    facts = []
    for name in sorted(set(_expr_vars(expr))):
        if name in tc.scalars or name in tc.arrays:
            value = env[name]
        else:
            value = tc.globals.read(name)
        facts.append(f"{display_name(name)} = {dom.format(value)}")
    return facts


def _expr_line(expr: ast.Expr, edge: Edge) -> int:
    return getattr(expr, "line", 0) or edge.src.line


def _reachable_edges(
    ctx: CheckContext,
) -> Iterator[Tuple[str, FunctionCFG, Edge, object]]:
    """Every edge whose source the analysis reaches, with its state."""
    for fn_name, fn in ctx.cfg.functions.items():
        for edge in fn.edges:
            env = ctx.env(fn_name, edge.src)
            if env is LiftedBottom:
                continue
            yield fn_name, fn, edge, env


# --------------------------------------------------------------------- #
# Rule: division / modulo by (possibly) zero.                           #
# --------------------------------------------------------------------- #

def _run_div_zero(ctx: CheckContext) -> Iterator[Diagnostic]:
    dom = ctx.domain
    zero = dom.from_const(0)
    for fn_name, fn, edge, env in _reachable_edges(ctx):
        tc = ctx.tc(fn_name)
        for top in _edge_exprs(edge):
            for expr in _subexprs(top):
                if not (
                    isinstance(expr, ast.Binary) and expr.op in ("/", "%")
                ):
                    continue
                divisor = eval_expr(tc, env, expr.right)
                if dom.is_bottom(divisor) or not dom.contains(divisor, 0):
                    continue
                nonzero, _ = dom.refine_cmp("!=", divisor, zero, True)
                definite = dom.is_bottom(nonzero)
                what = "division" if expr.op == "/" else "modulo"
                verb = "is always" if definite else "may be"
                witness = _env_facts(tc, env, expr.right)
                witness.append(
                    f"divisor {display_expr(expr.right)} = "
                    f"{dom.format(divisor)}"
                )
                yield Diagnostic(
                    rule="div-zero",
                    severity="error" if definite else "warning",
                    fn=fn_name,
                    line=_expr_line(expr, edge),
                    node=edge.src.index,
                    message=(
                        f"{what} by zero: divisor "
                        f"`{display_expr(expr.right)}` {verb} 0"
                    ),
                    witness=tuple(witness),
                )


# --------------------------------------------------------------------- #
# Rule: array index out of declared bounds.                             #
# --------------------------------------------------------------------- #

def _run_array_bounds(ctx: CheckContext) -> Iterator[Diagnostic]:
    dom = ctx.domain
    zero = dom.from_const(0)
    for fn_name, fn, edge, env in _reachable_edges(ctx):
        tc = ctx.tc(fn_name)
        accesses: List[Tuple[str, ast.Expr, int]] = []
        if isinstance(edge.instr, StoreArray):
            accesses.append(
                (
                    edge.instr.name,
                    edge.instr.index,
                    _expr_line(edge.instr.index, edge),
                )
            )
        for top in _edge_exprs(edge):
            for expr in _subexprs(top):
                if isinstance(expr, ast.ArrayRef):
                    accesses.append(
                        (expr.name, expr.index, _expr_line(expr, edge))
                    )
        for name, index_expr, line in accesses:
            size = ctx.array_size(fn, name)
            if size is None:
                continue
            index = eval_expr(tc, env, index_expr)
            if dom.is_bottom(index):
                continue
            may_low, _ = dom.truthiness(dom.binop("<", index, zero))
            may_high, _ = dom.truthiness(
                dom.binop(">=", index, dom.from_const(size))
            )
            if not (may_low or may_high):
                continue
            in_low, _ = dom.refine_cmp(">=", index, zero, True)
            if dom.is_bottom(in_low):
                definite = True
            else:
                in_both, _ = dom.refine_cmp(
                    "<=", in_low, dom.from_const(size - 1), True
                )
                definite = dom.is_bottom(in_both)
            verb = "is always" if definite else "may be"
            witness = _env_facts(tc, env, index_expr)
            witness.append(
                f"index {display_expr(index_expr)} = {dom.format(index)}"
            )
            witness.append(f"declared bounds: [0, {size - 1}]")
            yield Diagnostic(
                rule="array-bounds",
                severity="error" if definite else "warning",
                fn=fn_name,
                line=line,
                node=edge.src.index,
                message=(
                    f"array index {verb} out of bounds: "
                    f"`{display_name(name)}[{display_expr(index_expr)}]` "
                    f"with size {size}"
                ),
                witness=tuple(witness),
            )


# --------------------------------------------------------------------- #
# Rule: dead branches and unreachable code.                             #
# --------------------------------------------------------------------- #

def _run_dead_code(ctx: CheckContext) -> Iterator[Diagnostic]:
    dom = ctx.domain
    # Part 1: branch conditions with a statically impossible outcome.
    for fn_name, fn, edge, env in _reachable_edges(ctx):
        if not isinstance(edge.instr, Guard):
            continue
        tc = ctx.tc(fn_name)
        if refine(tc, env, edge.instr.cond, edge.instr.assume) is LiftedBottom:
            which = "true" if edge.instr.assume else "false"
            cond = display_expr(edge.instr.cond)
            witness = _env_facts(tc, env, edge.instr.cond)
            value = eval_expr(tc, env, edge.instr.cond)
            witness.append(f"condition {cond} = {dom.format(value)}")
            yield Diagnostic(
                rule="dead-code",
                severity="warning",
                fn=fn_name,
                line=_expr_line(edge.instr.cond, edge),
                node=edge.src.index,
                message=f"dead branch: condition `{cond}` is never {which}",
                witness=tuple(witness),
            )
    # Part 2: program points the analysis proves unreachable although an
    # immediate predecessor is reached over a non-branching edge (the
    # transfer itself produced bottom, e.g. a definite division by zero).
    # Points downstream of a dead guard are *not* re-reported: their
    # predecessors are unreachable too, so the guard finding covers them.
    for fn_name, fn in ctx.cfg.functions.items():
        for node in fn.nodes:
            if node == fn.entry:
                continue
            in_edges = fn.in_edges(node)
            if not in_edges:
                continue  # dangling by construction (code after return)
            if ctx.env(fn_name, node) is not LiftedBottom:
                continue
            culprits = [
                e
                for e in in_edges
                if not isinstance(e.instr, (Guard, AssertInstr))
                and ctx.env(fn_name, e.src) is not LiftedBottom
            ]
            if not culprits:
                continue
            yield Diagnostic(
                rule="dead-code",
                severity="warning",
                fn=fn_name,
                line=node.line,
                node=node.index,
                message=(
                    "unreachable code: no represented execution reaches "
                    "this point"
                ),
                witness=(
                    "the incoming transfer maps every reaching state "
                    "to bottom",
                ),
            )


# --------------------------------------------------------------------- #
# Rules: assertion verdicts.                                            #
# --------------------------------------------------------------------- #

def _assert_verdicts(
    ctx: CheckContext,
) -> Iterator[Tuple[str, Edge, object, bool, bool]]:
    for fn_name, fn, edge, env in _reachable_edges(ctx):
        if not isinstance(edge.instr, AssertInstr):
            continue
        tc = ctx.tc(fn_name)
        value = eval_expr(tc, env, edge.instr.cond)
        may_true, may_false = ctx.domain.truthiness(value)
        yield fn_name, edge, env, may_true, may_false


def _run_assert_violated(ctx: CheckContext) -> Iterator[Diagnostic]:
    for fn_name, edge, env, may_true, may_false in _assert_verdicts(ctx):
        if may_true or not may_false:
            continue
        tc = ctx.tc(fn_name)
        cond = display_expr(edge.instr.cond)
        yield Diagnostic(
            rule="assert-violated",
            severity="error",
            fn=fn_name,
            line=edge.instr.line,
            node=edge.src.index,
            message=f"assertion `{cond}` always fails when reached",
            witness=tuple(_env_facts(tc, env, edge.instr.cond)),
        )


def _run_assert_redundant(ctx: CheckContext) -> Iterator[Diagnostic]:
    for fn_name, edge, env, may_true, may_false in _assert_verdicts(ctx):
        if may_false or not may_true:
            continue
        tc = ctx.tc(fn_name)
        cond = display_expr(edge.instr.cond)
        yield Diagnostic(
            rule="assert-redundant",
            severity="info",
            fn=fn_name,
            line=edge.instr.line,
            node=edge.src.index,
            message=f"redundant assertion: `{cond}` is provably true",
            witness=tuple(_env_facts(tc, env, edge.instr.cond)),
        )


# --------------------------------------------------------------------- #
# Rule: possibly-uninitialised variable use (syntactic).                #
# --------------------------------------------------------------------- #

_ABSENT = object()


class _UninitWalker:
    """Forward def-use walk over one function's AST.

    Tracks the set of scalar locals declared without an initialiser that
    are not definitely assigned yet.  Branches merge by union (a read is
    flagged when *some* path leaves the variable unwritten); loop bodies
    are checked against the pre-loop state (the body may run zero
    times).  This is deliberately AST-level: mini-C zero-initialises
    storage, so the abstract semantics cannot express "uninitialised".
    """

    def __init__(self, fn: ast.FuncDecl) -> None:
        self.fn = fn
        #: (name, read line) -> declaration line.
        self.findings: Dict[Tuple[str, int], int] = {}

    def run(self) -> Iterator[Diagnostic]:
        maybe: Dict[str, int] = {}
        self._block(self.fn.body, maybe)
        for (name, line), decl_line in sorted(self.findings.items()):
            yield Diagnostic(
                rule="uninit-read",
                severity="warning",
                fn=self.fn.name,
                line=line,
                node=-1,  # syntactic rule: no CFG program point
                message=f"variable `{name}` may be used uninitialised",
                witness=(
                    f"`{name}` declared without initialiser at line "
                    f"{decl_line}",
                    "no assignment dominates this read "
                    "(syntactic def-use check)",
                ),
            )

    # -- state threading ---------------------------------------------- #

    def _block(self, block: ast.Block, maybe: Dict[str, int]) -> None:
        saved: Dict[str, object] = {}
        for stmt in block.stmts:
            self._stmt(stmt, maybe, saved)
        # Names declared in this block go out of scope: restore the
        # status the (shadowed) outer binding had at its declaration.
        for name, old in saved.items():
            if old is _ABSENT:
                maybe.pop(name, None)
            else:
                maybe[name] = old

    def _stmt(
        self, stmt: ast.Stmt, maybe: Dict[str, int], saved: Dict[str, object]
    ) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._reads(stmt.init, maybe)
            if stmt.name not in saved:
                saved[stmt.name] = maybe.get(stmt.name, _ABSENT)
            if stmt.array_size is None and stmt.init is None:
                maybe[stmt.name] = stmt.line
            else:
                maybe.pop(stmt.name, None)
        elif isinstance(stmt, ast.Assign):
            self._reads(stmt.value, maybe)
            maybe.pop(stmt.name, None)
        elif isinstance(stmt, ast.ArrayAssign):
            self._reads(stmt.index, maybe)
            self._reads(stmt.value, maybe)
        elif isinstance(stmt, ast.If):
            self._reads(stmt.cond, maybe)
            then_m = dict(maybe)
            self._block(stmt.then_body, then_m)
            else_m = dict(maybe)
            if stmt.else_body is not None:
                self._block(stmt.else_body, else_m)
            maybe.clear()
            maybe.update(else_m)
            maybe.update(then_m)
        elif isinstance(stmt, ast.While):
            self._reads(stmt.cond, maybe)
            body_m = dict(maybe)
            self._block(stmt.body, body_m)
            # Zero-iteration soundness: the post-loop state is the
            # pre-loop state (body assignments may never happen).
        elif isinstance(stmt, ast.For):
            header_saved: Dict[str, object] = {}
            if stmt.init is not None:
                self._stmt(stmt.init, maybe, header_saved)
            if stmt.cond is not None:
                self._reads(stmt.cond, maybe)
            body_m = dict(maybe)
            self._block(stmt.body, body_m)
            if stmt.step is not None:
                self._stmt(stmt.step, body_m, {})
            for name, old in header_saved.items():
                if old is _ABSENT:
                    maybe.pop(name, None)
                else:
                    maybe[name] = old
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._reads(stmt.value, maybe)
        elif isinstance(stmt, ast.Assert):
            self._reads(stmt.cond, maybe)
        elif isinstance(stmt, ast.ExprStmt):
            self._reads(stmt.expr, maybe)
        elif isinstance(stmt, ast.Block):
            self._block(stmt, maybe)
        # Break/Continue: no reads; the union-merge of the enclosing
        # constructs already over-approximates the control transfer.

    def _reads(self, expr: ast.Expr, maybe: Dict[str, int]) -> None:
        for sub in _subexprs(expr):
            if isinstance(sub, ast.Var) and sub.name in maybe:
                self.findings.setdefault(
                    (sub.name, sub.line), maybe[sub.name]
                )


def _run_uninit_read(ctx: CheckContext) -> Iterator[Diagnostic]:
    for fn in ctx.program.functions:
        yield from _UninitWalker(fn).run()


# --------------------------------------------------------------------- #
# The registry.                                                         #
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class CheckerRule:
    """One registered rule: stable name, worst-case severity, summary."""

    name: str
    severity: str
    summary: str
    run: Callable[[CheckContext], Iterable[Diagnostic]]


_RULES: Tuple[CheckerRule, ...] = (
    CheckerRule(
        "div-zero",
        "error",
        "division or modulo by a (possibly) zero divisor",
        _run_div_zero,
    ),
    CheckerRule(
        "array-bounds",
        "error",
        "array index (possibly) outside the declared bounds",
        _run_array_bounds,
    ),
    CheckerRule(
        "dead-code",
        "warning",
        "dead branches and unreachable program points",
        _run_dead_code,
    ),
    CheckerRule(
        "assert-violated",
        "error",
        "assertions that always fail when reached",
        _run_assert_violated,
    ),
    CheckerRule(
        "assert-redundant",
        "info",
        "assertions that are provably true (redundant)",
        _run_assert_redundant,
    ),
    CheckerRule(
        "uninit-read",
        "warning",
        "reads of scalars declared without an initialiser (syntactic)",
        _run_uninit_read,
    ),
)

_BY_NAME = {rule.name: rule for rule in _RULES}


def all_rules() -> Tuple[CheckerRule, ...]:
    """Every registered rule, in registry (reporting) order."""
    return _RULES


def rule_names() -> Tuple[str, ...]:
    """The registered rule names, in registry order."""
    return tuple(rule.name for rule in _RULES)


def canonical_rule_names(names) -> Tuple[str, ...]:
    """Normalise a rule selection: deduplicate and order by registry.

    An empty selection (``None``, ``()``, ``[]``) canonicalises to the
    empty tuple, which downstream layers read as "all rules".  Two
    selections naming the same set are therefore byte-identical in cache
    keys -- the fingerprint honesty the service tests assert.

    :raises UnknownRuleError: for names not in the registry.
    """
    if not names:
        return ()
    wanted = set(names)
    unknown = sorted(wanted - set(_BY_NAME))
    if unknown:
        known = ", ".join(rule_names())
        raise UnknownRuleError(
            f"unknown rule(s) {', '.join(unknown)}; known rules: {known}"
        )
    return tuple(name for name in rule_names() if name in wanted)


def resolve_rules(names=None) -> Tuple[CheckerRule, ...]:
    """The rule objects a selection denotes (empty selection: all).

    :raises UnknownRuleError: for names not in the registry.
    """
    canonical = canonical_rule_names(names)
    if not canonical:
        return _RULES
    return tuple(_BY_NAME[name] for name in canonical)
