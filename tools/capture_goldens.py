"""Capture golden solver behaviour (eval counts, updates, sigma) on fixed
systems.  Run at the pre-refactor seed to pin ground truth; the engine
refactor must reproduce these numbers bit-for-bit (memoization off).

Usage: PYTHONPATH=src python tools/capture_goldens.py
"""

from __future__ import annotations

import json

from repro.bench.randsys import (
    RandomSystemConfig,
    random_interval_system,
    random_monotone_system,
)
from repro.solvers import (
    WarrowCombine,
    solve_kleene,
    solve_rld,
    solve_rr,
    solve_rr_local,
    solve_slr,
    solve_srr,
    solve_sw,
    solve_td,
    solve_twophase,
    solve_wl,
)


def fingerprint(result):
    return {
        "evaluations": result.stats.evaluations,
        "updates": result.stats.updates,
        "unknowns": result.stats.unknowns,
        "sigma": repr(sorted(result.sigma.items())),
    }


def main() -> None:
    goldens = {}
    for seed in (0, 1, 2):
        nat_sys = random_monotone_system(RandomSystemConfig(size=10, seed=seed))
        iv_sys = random_interval_system(RandomSystemConfig(size=10, seed=seed))
        for label, system in (("nat", nat_sys), ("iv", iv_sys)):
            lat = system.lattice
            x0 = "x0"
            cases = {
                "rr": lambda: solve_rr(system, WarrowCombine(lat), max_evals=500_000),
                "wl": lambda: solve_wl(system, WarrowCombine(lat), max_evals=500_000),
                "srr": lambda: solve_srr(system, WarrowCombine(lat), max_evals=500_000),
                "sw": lambda: solve_sw(system, WarrowCombine(lat), max_evals=500_000),
                "slr": lambda: solve_slr(system, WarrowCombine(lat), x0, max_evals=500_000),
                "rld": lambda: solve_rld(system, WarrowCombine(lat), x0, max_evals=500_000),
                "td": lambda: solve_td(system, WarrowCombine(lat), x0, max_evals=500_000),
                "rr_local": lambda: solve_rr_local(system, WarrowCombine(lat), x0, max_evals=500_000),
                "kleene": lambda: solve_kleene(system, max_evals=500_000),
                "twophase": lambda: solve_twophase(system, max_evals=500_000),
            }
            for name, run in cases.items():
                if name == "kleene" and label == "iv":
                    # Plain Kleene iteration needs no acceleration only on
                    # finite-height chains; skip the interval systems.
                    continue
                try:
                    goldens[f"{name}/{label}/{seed}"] = fingerprint(run())
                except Exception as err:  # noqa: BLE001 - capture tool
                    goldens[f"{name}/{label}/{seed}"] = {"error": type(err).__name__}
    print(json.dumps(goldens, indent=1, sort_keys=True))


if __name__ == "__main__":
    main()
