"""Drive the whole buggy corpus through `repro check` (the `checkers`
CI job) and bundle the diagnostics as one artifact document.

For every program in ``examples/buggy/*.c``:

1. run the checker pipeline in-process (the exact ``repro check``
   construction) under the default operator ``warrow:delay=1``;
2. render its canonical ``repro-diagnostics/1`` JSON and compare it
   **byte for byte** against the committed golden in
   ``examples/buggy/expected/<name>.json``;
3. require that seeded-bug programs report at least one finding and
   that every ``*_clean`` twin reports none.

Exits non-zero (with a message on stderr) on the first violated check.
The merged per-program documents are written to the path given as
``argv[1]`` (default ``check-corpus.json``) so CI can upload them as a
build artifact.

Usage: PYTHONPATH=src python tools/check_corpus.py [artifact.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.checkers import render_diagnostics_json, run_check, validate_diagnostics

ROOT = Path(__file__).resolve().parent.parent
BUGGY = ROOT / "examples" / "buggy"


def fail(message: str) -> None:
    print(f"check-corpus: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    artifact = Path(sys.argv[1] if len(sys.argv) > 1 else "check-corpus.json")
    programs = sorted(BUGGY.glob("*.c"))
    if len(programs) < 20:
        fail(f"expected >= 20 corpus programs, found {len(programs)}")

    documents = []
    findings_total = 0
    for path in programs:
        name = path.stem
        report = run_check(
            path.read_text(encoding="utf-8"), program=path.name
        )
        doc = report.document()
        problems = validate_diagnostics(doc)
        if problems:
            fail(f"{name}: invalid diagnostics document: {problems[0]}")

        golden_path = BUGGY / "expected" / f"{name}.json"
        if not golden_path.exists():
            fail(f"{name}: no committed golden at {golden_path}")
        rendered = render_diagnostics_json(doc)
        golden = golden_path.read_text(encoding="utf-8")
        if rendered != golden:
            fail(
                f"{name}: diagnostics differ from the committed golden "
                f"(regenerate via 'repro check examples/buggy/{name}.c "
                f"--json' if the change is intended)"
            )

        if name.endswith("_clean"):
            if report.findings:
                fail(
                    f"{name}: clean twin reported {report.findings} "
                    f"finding(s) -- a false positive"
                )
        else:
            if not report.findings:
                fail(f"{name}: seeded bug reported no findings")
        findings_total += report.findings
        documents.append(doc)
        print(f"check-corpus: ok {name} ({report.findings} finding(s))")

    artifact.write_text(
        json.dumps(
            {"programs": len(documents), "documents": documents},
            indent=1,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(
        f"check-corpus: PASS ({len(documents)} programs, "
        f"{findings_total} findings, artifact: {artifact})"
    )


if __name__ == "__main__":
    main()
